//! Hierarchical nets and the §8 reduction: estimating the MST weight
//! from net cardinalities alone.
//!
//! Builds `(α·2^i, 2^i)`-nets for every scale, prints the hierarchy,
//! and verifies the Theorem-7 sandwich `L ≤ Ψ ≤ O(α log n)·L` — the
//! reduction behind the `Ω̃(√n + D)` net lower bound.
//!
//! ```text
//! cargo run --example nets_demo
//! ```

use congest::tree::build_bfs_tree;
use congest::Simulator;
use lightgraph::{generators, mst};
use lightnet::estimate_mst_weight;

fn main() {
    let g = generators::grid(12, 12, 9, 21);
    let l = mst::kruskal(&g).weight;
    println!(
        "grid graph: n = {}, m = {}, MST weight L = {l}",
        g.n(),
        g.m()
    );

    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let est = estimate_mst_weight(&mut sim, &tau, 5);

    println!("\nscale 2^i | net size n_i | contribution n_i*α*2^(i+1)");
    for &(scale, ni) in &est.scales {
        let contribution = (ni as f64 * est.alpha * (2 * scale) as f64).ceil();
        println!("{scale:>9} | {ni:>12} | {contribution:>10}");
    }
    println!(
        "\nΨ = {}   (sandwich: L = {l} ≤ Ψ ≤ O(α·log n)·L = {:.0})",
        est.psi,
        est.alpha * 16.0 * (g.n() as f64).log2() * l as f64
    );
    println!(
        "total: {} rounds, {} messages",
        est.stats.rounds, est.stats.messages
    );
    assert!(est.psi >= l, "lower side of the sandwich violated");
}
