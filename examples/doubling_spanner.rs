//! Light spanners on doubling (geometric) graphs — §7, with the TSP
//! motivation of §1.3: a `(1+ε)`-spanner of constant lightness is the
//! standard substrate for approximation schemes on doubling metrics.
//!
//! Sweeps ε on a random geometric graph (doubling dimension ≈ 2) and
//! prints stretch / lightness / size next to the estimated doubling
//! dimension of the instance.
//!
//! ```text
//! cargo run --example doubling_spanner
//! ```

use congest::tree::build_bfs_tree;
use congest::Simulator;
use lightgraph::{doubling as ddim, generators, metrics};
use lightnet::doubling_spanner;

fn main() {
    let g = generators::random_geometric(128, 0.18, 3);
    let d = ddim::estimate_doubling_dimension(&g, 12, 5);
    println!(
        "geometric graph: n = {}, m = {}, estimated ddim ≈ {:.1}",
        g.n(),
        g.m(),
        d
    );
    println!(
        "{:<8} {:>9} {:>10} {:>8} {:>9} {:>9}",
        "eps", "stretch", "lightness", "edges", "scales", "rounds"
    );
    for &eps in &[1.0, 0.5, 0.25] {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = doubling_spanner(&mut sim, &tau, 0, eps, 17);
        let h = g.edge_subgraph_dedup(r.edges.iter().copied());
        let q = metrics::spanner_quality(&g, &h);
        println!(
            "{:<8} {:>9.3} {:>10.2} {:>8} {:>9} {:>9}",
            eps, q.stretch, q.lightness, q.edges, r.scales, r.stats.rounds
        );
    }
    println!("\n(lightness should grow as ε shrinks but stay independent of n — Theorem 5)");
}
