//! Quickstart: build every object from Table 1 on one random graph and
//! print the measured quality next to the paper's guarantee.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use congest::tree::build_bfs_tree;
use congest::Simulator;
use lightgraph::{generators, metrics};
use lightnet::{doubling_spanner, light_spanner, net, net_quality, shallow_light_tree};

fn main() {
    let n = 128;
    let g = generators::erdos_renyi(n, 0.06, 60, 42);
    println!(
        "graph: n = {}, m = {}, hop diameter = {}",
        g.n(),
        g.m(),
        g.hop_diameter()
    );

    // --- light spanner (Table 1 row 1) -------------------------------
    let (k, eps) = (2, 0.25);
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let sp = light_spanner(&mut sim, &tau, 0, k, eps, 1);
    let h = g.edge_subgraph_dedup(sp.edges.iter().copied());
    let q = metrics::spanner_quality(&g, &h);
    println!(
        "\nlight spanner (k={k}, eps={eps}): stretch {:.2} (bound {}), \
         {} edges, lightness {:.2}, {} rounds",
        q.stretch,
        (2 * k - 1) as f64 * (1.0 + eps),
        q.edges,
        q.lightness,
        sp.stats.rounds
    );

    // --- shallow-light tree (Table 1 row 2) --------------------------
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let slt = shallow_light_tree(&mut sim, &tau, 0, 0.5, 2);
    let t = g.edge_subgraph_dedup(slt.edges.iter().copied());
    println!(
        "SLT (eps=0.5): root stretch {:.2}, lightness {:.2}, {} break points, {} rounds",
        metrics::root_stretch(&g, &t, 0),
        metrics::lightness(&g, &t),
        slt.breakpoints,
        slt.stats.rounds
    );

    // --- net (Table 1 row 3) -----------------------------------------
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let delta = 30;
    let r = net(&mut sim, &tau, delta, 0.5, 3);
    let (cover, sep) = net_quality(&g, &r.points);
    println!(
        "net (∆={delta}, δ=0.5): {} points, covering {cover} (≤ {}), \
         separation {sep} (> {}), {} iterations, {} rounds",
        r.points.len(),
        (delta as f64 * 1.5).ceil(),
        (delta as f64 / 1.5).floor(),
        r.iterations,
        r.stats.rounds
    );

    // --- doubling spanner (Table 1 row 4) ----------------------------
    let geo = generators::random_geometric(96, 0.2, 7);
    let mut sim = Simulator::new(&geo);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let ds = doubling_spanner(&mut sim, &tau, 0, 0.5, 4);
    let hd = geo.edge_subgraph_dedup(ds.edges.iter().copied());
    let qd = metrics::spanner_quality(&geo, &hd);
    println!(
        "doubling spanner (geometric n={}, eps=0.5): stretch {:.3}, \
         lightness {:.2}, {} scales, {} rounds",
        geo.n(),
        qd.stretch,
        qd.lightness,
        ds.scales,
        ds.stats.rounds
    );
}
