//! The parallel engine as a drop-in executor, plus its congestion
//! instrumentation.
//!
//! ```text
//! cargo run --release --example parallel_engine
//! ```

use congest::tree::build_bfs_tree;
use congest::{Executor, Simulator};
use engine::Engine;
use lightgraph::generators;
use lightnet::shallow_light_tree;

fn main() {
    let n = 20_000;
    let g = generators::gnp_sparse(n, 8.0 / n as f64, 100, 42);
    println!("graph: n={} m={}", g.n(), g.m());

    // Same program, two engines, bit-identical accounting.
    let mut sim = Simulator::new(&g);
    let (tree_seq, stats_seq) = build_bfs_tree(&mut sim, 0);

    let mut eng = Engine::new(&g);
    eng.set_record_metrics(true);
    let (tree_par, stats_par) = build_bfs_tree(&mut eng, 0);

    assert_eq!(tree_seq.parent, tree_par.parent);
    assert_eq!(stats_seq, stats_par);
    println!(
        "bfs: rounds={} messages={} height={} (identical on both engines)",
        stats_par.rounds,
        stats_par.messages,
        tree_par.height()
    );

    let report = eng.last_report().expect("metrics recorded");
    println!(
        "engine instrumentation: threads={} peak-round-messages={} peak-queue-depth={}",
        report.threads,
        report.peak_round_messages(),
        report.peak_queue_depth()
    );
    if let Some(&(e, count)) = report.hot_edges.first() {
        let edge = g.edge(e);
        println!(
            "hottest edge: ({}, {}) carried {} messages",
            edge.u, edge.v, count
        );
    }

    // Composite paper algorithms run unchanged on the engine.
    let small = generators::erdos_renyi(256, 0.05, 50, 7);
    let mut eng_small = Engine::new(&small);
    let (tau, _) = build_bfs_tree(&mut eng_small, 0);
    let slt = shallow_light_tree(&mut eng_small, &tau, 0, 0.5, 7);
    println!(
        "slt on engine: {} edges, {} breakpoints, {} total rounds",
        slt.edges.len(),
        slt.breakpoints,
        Executor::total(&eng_small).rounds
    );
}
