//! Efficient broadcast with shallow-light trees — the motivating
//! application of [ABP92] and §1.2.
//!
//! Broadcasting from a source over the MST minimizes total *link cost*
//! but can take detours (high latency to each vertex); over the SPT it
//! minimizes latency but can be heavy. The SLT interpolates: lightness
//! `1 + O(1/ε)` at root stretch `1 + O(ε)`. This example sweeps ε and
//! prints the (cost, latency) frontier against both extremes and the
//! sequential KRY95 optimum.
//!
//! ```text
//! cargo run --example broadcast_slt
//! ```

use congest::tree::build_bfs_tree;
use congest::Simulator;
use lightgraph::{dijkstra, generators, metrics};
use lightnet::{kry_slt, shallow_light_tree};

fn main() {
    // the comb: a cheap spine plus direct root shortcuts, where the MST
    // broadcast is slow (latency ~8x) and the SPT broadcast is heavy
    let g = generators::comb(160, 8);
    let rt = 0;
    println!("broadcast network: n = {}, m = {}", g.n(), g.m());

    let mst = lightgraph::mst::kruskal(&g);
    let mst_tree = g.edge_subgraph(mst.edges.iter().copied());
    let spt = dijkstra::shortest_paths(&g, rt);
    let spt_tree = g.edge_subgraph((0..g.n()).filter_map(|v| spt.parent[v].map(|(_, e)| e)));

    let report = |name: &str, tree: &lightgraph::Graph, rounds: Option<u64>| {
        let cost = metrics::lightness(&g, tree);
        let latency = metrics::root_stretch(&g, tree, rt);
        match rounds {
            Some(r) => println!(
                "{name:<22} cost {cost:>6.2}x MST   worst latency {latency:>6.2}x   ({r} rounds)"
            ),
            None => println!("{name:<22} cost {cost:>6.2}x MST   worst latency {latency:>6.2}x"),
        }
    };

    report("MST broadcast", &mst_tree, None);
    report("SPT broadcast", &spt_tree, None);
    println!("--- distributed SLT sweep ---");
    for &eps in &[0.25, 0.5, 1.0] {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);
        let slt = shallow_light_tree(&mut sim, &tau, rt, eps, 11);
        let tree = g.edge_subgraph_dedup(slt.edges.iter().copied());
        report(&format!("SLT eps={eps}"), &tree, Some(slt.stats.rounds));
    }
    println!("--- sequential KRY95 optimum (baseline) ---");
    for &eps in &[0.25, 0.5, 1.0] {
        let edges = kry_slt(&g, rt, eps);
        let tree = g.edge_subgraph_dedup(edges.iter().copied());
        report(&format!("KRY eps={eps}"), &tree, None);
    }
}
