//! Writing your own CONGEST algorithm on the simulator: a weighted
//! eccentricity estimate by flooding, in ~40 lines.
//!
//! ```text
//! cargo run --example congest_playground
//! ```

use congest::{Ctx, Message, Program, Simulator};
use lightgraph::generators;

/// Every vertex learns its weighted distance from vertex 0 by
/// Bellman–Ford flooding, then we read off the eccentricity.
struct DistanceFlood {
    dist: u64,
    is_source: bool,
}

impl Program for DistanceFlood {
    type Output = u64;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_source {
            self.dist = 0;
            ctx.send_all(Message::words(&[0]));
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(usize, Message)]) {
        let mut improved = false;
        for (from, msg) in inbox {
            let w = ctx
                .neighbors()
                .iter()
                .find(|&&(u, _, _)| u == *from)
                .map(|&(_, w, _)| w)
                .unwrap();
            let candidate = msg.word(0) + w;
            if candidate < self.dist {
                self.dist = candidate;
                improved = true;
            }
        }
        if improved {
            ctx.send_all(Message::words(&[self.dist]));
        }
    }

    fn finish(self) -> u64 {
        self.dist
    }
}

fn main() {
    let g = generators::random_geometric(64, 0.25, 9);
    let mut sim = Simulator::new(&g);
    let (dists, stats) = sim.run(|v, _| DistanceFlood {
        dist: u64::MAX,
        is_source: v == 0,
    });
    let ecc = dists.iter().max().unwrap();
    println!(
        "eccentricity of vertex 0: {ecc}  ({} rounds, {} messages on n={}, m={})",
        stats.rounds,
        stats.messages,
        g.n(),
        g.m()
    );
    // cross-check against the sequential oracle
    let oracle = lightgraph::dijkstra::shortest_paths(&g, 0);
    assert_eq!(dists, oracle.dist);
    println!("matches sequential Dijkstra ✓");
}
