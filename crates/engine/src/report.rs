//! Per-run instrumentation.
//!
//! The report type moved to [`congest::obs`] (as
//! [`congest::RunReport`]) so the sequential simulator can emit the
//! same per-round series as the parallel engine — which is what lets
//! `engine = "both"` scenario sweeps cross-check the series, not just
//! the totals. This module re-exports it under its historical engine
//! name.

pub use congest::obs::{RunReport as EngineReport, HOT_EDGE_TOP_K};
