//! Per-run instrumentation.

use lightgraph::EdgeId;

/// Number of hot edges retained in [`EngineReport::hot_edges`].
pub const HOT_EDGE_TOP_K: usize = 16;

/// Congestion instrumentation for one engine run, collected when
/// [`Engine::set_record_metrics`](crate::Engine::set_record_metrics) is
/// enabled.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Rounds executed (same value as the run's `RunStats::rounds`).
    pub rounds: u64,
    /// Logical messages sent (same value as the run's
    /// `RunStats::messages`).
    pub total_messages: u64,
    /// Messages physically delivered to inboxes; equals
    /// `total_messages` unless a per-edge combiner merged some away
    /// (contract clause 7).
    pub messages_delivered: u64,
    /// Messages absorbed by per-edge combining (same value as the run's
    /// `RunStats::messages_combined`).
    pub messages_combined: u64,
    /// Messages delivered in each round — the per-round message
    /// histogram; index 0 is round 1. Sums to `messages_delivered`.
    pub messages_per_round: Vec<u64>,
    /// Largest backlog across all directed-edge queues *after* each
    /// round's sends; a proxy for congestion pressure.
    pub max_queue_depth_per_round: Vec<u64>,
    /// Active nodes (nodes whose `Program::round` ran) in each round —
    /// the frontier-size histogram; index 0 is round 1. Sums to the
    /// run's `FrontierStats::invocations`.
    pub active_per_round: Vec<u64>,
    /// The `HOT_EDGE_TOP_K` undirected edges carrying the most traffic,
    /// as `(edge id, delivered messages)`, heaviest first.
    pub hot_edges: Vec<(EdgeId, u64)>,
    /// Worker threads the run used.
    pub threads: usize,
}

impl EngineReport {
    /// Peak per-round message volume.
    pub fn peak_round_messages(&self) -> u64 {
        self.messages_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Peak queue depth over the whole run.
    pub fn peak_queue_depth(&self) -> u64 {
        self.max_queue_depth_per_round
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Peak per-round active-node count (frontier width).
    pub fn peak_active(&self) -> u64 {
        self.active_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Builds the top-K hot-edge list from per-directed-edge delivery
    /// counts.
    pub(crate) fn rank_hot_edges(per_directed: &[u64]) -> Vec<(EdgeId, u64)> {
        let m = per_directed.len() / 2;
        let mut per_edge: Vec<(EdgeId, u64)> = (0..m)
            .map(|e| (e, per_directed[2 * e] + per_directed[2 * e + 1]))
            .filter(|&(_, c)| c > 0)
            .collect();
        per_edge.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        per_edge.truncate(HOT_EDGE_TOP_K);
        per_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_edges_rank_by_combined_directions() {
        let per_directed = vec![3, 1, 0, 0, 2, 9];
        let hot = EngineReport::rank_hot_edges(&per_directed);
        assert_eq!(hot, vec![(2, 11), (0, 4)]);
    }

    #[test]
    fn peaks_of_empty_report_are_zero() {
        let r = EngineReport::default();
        assert_eq!(r.peak_round_messages(), 0);
        assert_eq!(r.peak_queue_depth(), 0);
    }
}
