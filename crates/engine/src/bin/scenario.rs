//! Scenario runner: sweep graph family × size × algorithm on the
//! parallel engine (or the sequential simulator) and emit JSON rows.
//!
//! ```text
//! scenario                       # run the built-in default sweep
//! scenario path/to/config.toml   # run a config (see scenarios/)
//! scenario --print-default       # dump the built-in config and exit
//! ```
//!
//! Each completed (family, n, algorithm, engine, seed) cell prints one
//! JSON object per line (JSONL) to stdout, or to the `output` file from
//! the config. Round/message counts are engine-independent — the
//! parallel engine is bit-identical to the simulator — so `engine =
//! "both"` doubles as a production determinism check: the runner
//! verifies the two engines' stats match and fails loudly otherwise.

use congest::tree::build_bfs_tree;
use congest::{Executor, RunStats, Simulator};
use dist_mst::boruvka::distributed_mst;
use engine::config::{self, Table};
use engine::Engine;
use lightgraph::{generators, Graph, Weight};
use lightnet::{light_spanner, shallow_light_tree};
use std::io::Write;
use std::time::Instant;

const DEFAULT_CONFIG: &str = r#"# Built-in default sweep (see crates/engine/scenarios/ for more).
seed = 1
threads = 0          # 0 = use every core
engine = "parallel"  # "parallel" | "sim" | "both"
cap = 1
record_metrics = true

[[run]]
family = "erdos-renyi"
sizes = [1000, 10000]
algorithms = ["bfs", "mst"]

[[run]]
family = "grid"
sizes = [2500]
algorithms = ["bfs", "slt"]
eps = 0.5
"#;

/// One result cell.
struct Row {
    family: String,
    n: usize,
    m: usize,
    algorithm: String,
    engine: String,
    threads: usize,
    seed: u64,
    stats: RunStats,
    wall_ms: f64,
    /// Algorithm-specific headline number, e.g. BFS height, MST weight.
    metric_name: &'static str,
    metric: u64,
    /// Engine instrumentation, when recorded.
    peak_round_messages: Option<u64>,
    peak_queue_depth: Option<u64>,
}

impl Row {
    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"family\":\"{}\",\"n\":{},\"m\":{},\"algorithm\":\"{}\",\"engine\":\"{}\",\
             \"threads\":{},\"seed\":{},\"rounds\":{},\"messages\":{},\"wall_ms\":{:.3},\
             \"{}\":{}",
            self.family,
            self.n,
            self.m,
            self.algorithm,
            self.engine,
            self.threads,
            self.seed,
            self.stats.rounds,
            self.stats.messages,
            self.wall_ms,
            self.metric_name,
            self.metric,
        );
        if let Some(p) = self.peak_round_messages {
            s.push_str(&format!(",\"peak_round_messages\":{p}"));
        }
        if let Some(d) = self.peak_queue_depth {
            s.push_str(&format!(",\"peak_queue_depth\":{d}"));
        }
        s.push('}');
        s
    }
}

fn build_graph(family: &str, n: usize, max_w: Weight, seed: u64) -> Result<Graph, String> {
    match family {
        "erdos-renyi" => {
            let p = (8.0 / n.max(2) as f64).min(1.0);
            Ok(generators::gnp_sparse(n, p, max_w, seed))
        }
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            Ok(generators::grid(side.max(1), side.max(1), max_w, seed))
        }
        "tree-chords" => Ok(generators::tree_plus_chords(n, n / 2, max_w, seed)),
        "geometric" => {
            if n > 30_000 {
                return Err(format!(
                    "family `geometric` is O(n^2) to generate; n={n} is too large (limit 30000)"
                ));
            }
            let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
            Ok(generators::random_geometric(n, r, seed))
        }
        other => Err(format!(
            "unknown family `{other}` (expected erdos-renyi, grid, tree-chords, geometric)"
        )),
    }
}

/// Runs one algorithm on one executor; returns stats plus a headline
/// metric.
fn drive<E: Executor>(
    exec: &mut E,
    algorithm: &str,
    eps: f64,
    k: usize,
    seed: u64,
) -> Result<(RunStats, &'static str, u64), String> {
    match algorithm {
        "bfs" => {
            let (tree, _) = build_bfs_tree(exec, 0);
            Ok((exec.total(), "height", tree.height()))
        }
        "mst" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let m = distributed_mst(exec, &tau, 0, seed);
            Ok((exec.total(), "weight", m.weight))
        }
        "slt" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let slt = shallow_light_tree(exec, &tau, 0, eps, seed);
            Ok((exec.total(), "breakpoints", slt.breakpoints as u64))
        }
        "spanner" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let sp = light_spanner(exec, &tau, 0, k, eps, seed);
            Ok((exec.total(), "edges", sp.edges.len() as u64))
        }
        other => Err(format!(
            "unknown algorithm `{other}` (expected bfs, mst, slt, spanner)"
        )),
    }
}

struct Globals {
    threads: usize,
    cap: usize,
    record: bool,
    engines: Vec<&'static str>,
    base_seed: u64,
}

struct Cell<'a> {
    family: &'a str,
    algorithm: &'a str,
    eps: f64,
    k: usize,
    seed: u64,
}

fn run_cell(globals: &Globals, g: &Graph, which: &str, cell: &Cell<'_>) -> Result<Row, String> {
    let start = Instant::now();
    let (stats, metric_name, metric, peaks) = match which {
        "sim" => {
            let mut sim = Simulator::new(g);
            Executor::set_cap(&mut sim, globals.cap);
            let (stats, name, metric) =
                drive(&mut sim, cell.algorithm, cell.eps, cell.k, cell.seed)?;
            (stats, name, metric, None)
        }
        "parallel" => {
            let mut eng = Engine::with_threads(g, globals.threads);
            Executor::set_cap(&mut eng, globals.cap);
            eng.set_record_metrics(globals.record);
            let (stats, name, metric) =
                drive(&mut eng, cell.algorithm, cell.eps, cell.k, cell.seed)?;
            let peaks = eng
                .last_report()
                .map(|r| (r.peak_round_messages(), r.peak_queue_depth()));
            (stats, name, metric, peaks)
        }
        other => return Err(format!("unknown engine `{other}`")),
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(Row {
        family: cell.family.to_owned(),
        n: g.n(),
        m: g.m(),
        algorithm: cell.algorithm.to_owned(),
        engine: which.to_owned(),
        threads: if which == "sim" { 1 } else { globals.threads },
        seed: cell.seed,
        stats,
        wall_ms,
        metric_name,
        metric,
        peak_round_messages: peaks.map(|p| p.0),
        peak_queue_depth: peaks.map(|p| p.1),
    })
}

fn run_sweep(doc: &config::Document, out: &mut dyn Write) -> Result<(), String> {
    let root = &doc.root;
    let threads = match root.int_or("threads", 0) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        t if t > 0 => t as usize,
        t => return Err(format!("threads must be >= 0, got {t}")),
    };
    let engines: Vec<&'static str> = match root.str_or("engine", "parallel") {
        "parallel" => vec!["parallel"],
        "sim" => vec!["sim"],
        "both" => vec!["sim", "parallel"],
        other => return Err(format!("engine must be parallel|sim|both, got `{other}`")),
    };
    let globals = Globals {
        threads,
        cap: root.int_or("cap", 1).max(1) as usize,
        record: root.bool_or("record_metrics", false),
        engines,
        base_seed: root.int_or("seed", 1) as u64,
    };

    let runs = doc.table_arrays.get("run").cloned().unwrap_or_default();
    if runs.is_empty() {
        return Err("config has no [[run]] sections".to_owned());
    }
    for (ri, run) in runs.iter().enumerate() {
        sweep_run(&globals, ri, run, out)?;
    }
    Ok(())
}

fn sweep_run(globals: &Globals, ri: usize, run: &Table, out: &mut dyn Write) -> Result<(), String> {
    let family = run.str_or("family", "erdos-renyi").to_owned();
    let sizes = run.ints("sizes");
    if sizes.is_empty() {
        return Err(format!("[[run]] #{ri}: `sizes` is required"));
    }
    let algorithms = {
        let a = run.strs("algorithms");
        if a.is_empty() {
            vec!["bfs".to_owned()]
        } else {
            a
        }
    };
    let seeds = {
        let s = run.ints("seeds");
        if s.is_empty() {
            vec![globals.base_seed]
        } else {
            s.into_iter().map(|x| x as u64).collect()
        }
    };
    let eps = run.f64_or("eps", 0.5);
    let k = run.int_or("k", 2).max(1) as usize;
    let max_w = run.int_or("max_w", 100).max(1) as u64;

    for &size in &sizes {
        let n = size.max(1) as usize;
        for &seed in &seeds {
            let g = build_graph(&family, n, max_w, seed)?;
            for algorithm in &algorithms {
                let cell = Cell {
                    family: &family,
                    algorithm,
                    eps,
                    k,
                    seed,
                };
                let mut seen: Option<RunStats> = None;
                for which in &globals.engines {
                    let row = run_cell(globals, &g, which, &cell)?;
                    let stats = row.stats;
                    writeln!(out, "{}", row.to_json()).map_err(|e| e.to_string())?;
                    if let Some(prev) = seen {
                        if prev != stats {
                            return Err(format!(
                                "DETERMINISM VIOLATION: {family} n={n} {algorithm} seed={seed}: \
                                 sim {prev:?} != parallel {stats:?}"
                            ));
                        }
                    }
                    seen = Some(stats);
                }
            }
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: scenario [CONFIG.toml] [--print-default]");
        return;
    }
    if args.iter().any(|a| a == "--print-default") {
        print!("{DEFAULT_CONFIG}");
        return;
    }
    let (text, source) = match args.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => (t, path.clone()),
            Err(e) => {
                eprintln!("scenario: cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        None => (DEFAULT_CONFIG.to_owned(), "<built-in>".to_owned()),
    };
    let doc = match config::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("scenario: {source}: {e}");
            std::process::exit(2);
        }
    };

    let output = doc.root.str_or("output", "").to_owned();
    let result = if output.is_empty() {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        run_sweep(&doc, &mut lock)
    } else {
        match std::fs::File::create(&output) {
            Ok(mut f) => {
                let r = run_sweep(&doc, &mut f);
                if r.is_ok() {
                    eprintln!("scenario: results written to {output}");
                }
                r
            }
            Err(e) => Err(format!("cannot create {output}: {e}")),
        }
    };
    if let Err(e) = result {
        eprintln!("scenario: {e}");
        std::process::exit(1);
    }
}
