//! Scenario runner CLI: sweep graph family × size × algorithm on the
//! parallel engine (or the sequential simulator) and emit JSONL or CSV
//! rows. All the logic lives in [`engine::scenario`] so tests can run
//! sweeps in-process; this binary only parses arguments and wires up
//! the output stream.
//!
//! ```text
//! scenario                       # run the built-in default sweep
//! scenario path/to/config.toml   # run a config (see scenarios/)
//! scenario --print-default       # dump the built-in config and exit
//! ```

use engine::config;
use engine::scenario::{run_sweep, DEFAULT_CONFIG};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: scenario [CONFIG.toml] [--print-default]");
        return;
    }
    if args.iter().any(|a| a == "--print-default") {
        print!("{DEFAULT_CONFIG}");
        return;
    }
    let (text, source) = match args.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => (t, path.clone()),
            Err(e) => {
                eprintln!("scenario: cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        None => (DEFAULT_CONFIG.to_owned(), "<built-in>".to_owned()),
    };
    let doc = match config::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("scenario: {source}: {e}");
            std::process::exit(2);
        }
    };

    let output = doc.root.str_or("output", "").to_owned();
    let result = if output.is_empty() {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        run_sweep(&doc, &mut lock)
    } else {
        match std::fs::File::create(&output) {
            Ok(mut f) => {
                let r = run_sweep(&doc, &mut f);
                if r.is_ok() {
                    eprintln!("scenario: results written to {output}");
                }
                r
            }
            Err(e) => Err(format!("cannot create {output}: {e}")),
        }
    };
    if let Err(e) = result {
        eprintln!("scenario: {e}");
        std::process::exit(1);
    }
}
