//! Perf-trajectory bench: runs a fixed pinned workload set on the
//! parallel engine and writes machine-readable `BENCH_engine.json`, so
//! before/after numbers for engine changes (e.g. frontier scheduling,
//! per-edge combining) land in the repository instead of a PR
//! description.
//!
//! ```text
//! bench                          # run the pinned set, write BENCH_engine.json
//! bench --out path.json         # alternate output path
//! bench --threads 4             # worker threads (default 1: the
//!                               #   trajectory tracks one-core numbers)
//! bench --quick                 # the CI-gate subset (100k BFS + 1k/2k/8k SLT)
//! bench --check BASELINE.json   # re-run and diff the deterministic
//!                               #   columns against a committed baseline;
//!                               #   exit 1 on any drift (no file written),
//!                               #   after a per-column delta table
//! bench --profile trace.jsonl   # per-round profiling records to the
//!                               #   JSONL sink + a span tree per
//!                               #   workload on stderr
//! ```
//!
//! `--check` is the CI **bench-regression gate**: the deterministic
//! columns (`rounds`, `messages`, `messages_combined`,
//! `messages_delivered`, `invocations`, `active_peak`, `metric`, the
//! per-node load summary (`msg_max_node`, `msg_max`, `msg_p50`,
//! `msg_p99`) and the instance shape `m`) are contract-pinned and
//! engine-identical,
//! so any diff against `BENCH_engine.json` is a real behavior change —
//! a silent message-volume or invocation regression fails the PR.
//! Wall-clock columns (`wall_ms`, `setup_ms`, `rounds_per_sec`,
//! `msgs_per_sec`, `speedup_vs_1`) are machine-dependent and never
//! compared. `setup_ms` is the cumulative executor setup wall (plan +
//! arena acquisition, program construction) summed across every run
//! and sub-run of the workload — the floor the run-session layer
//! amortizes — so its trajectory is visible next to `wall_ms`. After
//! an *intentional* change, regenerate the baseline by running `bench`
//! without flags.
//!
//! Under `--quick`, each row additionally prints a one-line
//! setup/deliver/compute/barrier wall breakdown (phase-wall sampling
//! only — a few clock reads per round, observer-neutral by contract
//! clause 8), so a regression in the session layer is attributable
//! without a `--profile` trace.
//!
//! **Scaling section.** Every run additionally sweeps one pinned
//! workload (SLT@64k, or SLT@8k under `--quick`) over
//! `threads ∈ {1, 2, 4}` and emits a `"scaling"` array pinning the
//! speedup curve. The deterministic columns of every scaling row are
//! verified *at runtime* against the `threads = 1` row — a cross-thread
//! determinism violation aborts the bench with exit 1 before any file
//! is written — and `--check` additionally diffs them against the
//! committed baseline (scaling rows resolve to the same
//! family/algorithm/n baseline line as the main workload row, which is
//! exactly the cross-thread bit-identity the contract promises).
//!
//! The workload set is pinned — same families, sizes and seeds every
//! run — so successive JSON snapshots are comparable:
//!
//! * geometric BFS at 100k, 500k and 1M nodes (round-bound; the
//!   frontier-scheduling showcase), and
//! * geometric SLT at 1k, 2k, 4k, 8k and 64k nodes — the formerly
//!   message-bound workload. Per-edge combining (contract clause 7)
//!   collapsed the multi-source relaxation churn (made 4k feasible);
//!   the keyed-relaxation subsystem's adaptive landmark cutoff plus
//!   the combiner-aware gather removed the landmark phases outright on
//!   these shallow instances (made 8k a quick-gate workload); the
//!   batched-contraction Euler tour plus the pipelined Borůvka merge
//!   broke the remaining MST/tour message wall (made 64k pinnable).
//!
//! Each entry reports throughput (`rounds_per_sec`, `msgs_per_sec`,
//! `wall_ms`), the message-volume split (`messages` sent vs
//! `messages_delivered` after combining), and the frontier-scheduling
//! counters: `invocations` (`Program::round` calls actually executed)
//! against `invocations_dense` (`rounds * n`, what a dense every-node
//! scheduler would have executed).

use congest::obs;
use congest::{Executor, TraceSink};
use engine::scenario::{build_graph, drive, AlgoParams};
use engine::Engine;
use std::io::Write;
use std::time::Instant;

/// One pinned workload: (family, algorithm, n). All use seed 1 and the
/// scenario runner's default parameters. SLT@64k joined after the
/// batched-contraction Euler tour and the pipelined Borůvka merge
/// broke the MST/tour message wall (~44 s on one core; see DESIGN.md).
const WORKLOADS: [(&str, &str, usize); 8] = [
    ("geometric", "bfs", 100_000),
    ("geometric", "bfs", 500_000),
    ("geometric", "bfs", 1_000_000),
    ("geometric", "slt", 1_000),
    ("geometric", "slt", 2_000),
    ("geometric", "slt", 4_000),
    ("geometric", "slt", 8_000),
    ("geometric", "slt", 64_000),
];

/// The `--quick` subset, used by the CI bench-regression gate: one
/// frontier-bound workload (100k BFS) and the SLT sizes small enough
/// for a PR-latency run — including 8k, which the keyed-relaxation
/// subsystem and the adaptive landmark cutoff brought under that bar.
/// SLT@64k (~44 s alone) stays out of the PR gate; the nightly
/// `--include-ignored` smoke (`crates/engine/tests/large_smoke.rs`)
/// covers it instead.
const QUICK: [(&str, &str, usize); 4] = [
    ("geometric", "bfs", 100_000),
    ("geometric", "slt", 1_000),
    ("geometric", "slt", 2_000),
    ("geometric", "slt", 8_000),
];

const SEED: u64 = 1;

/// Thread counts the scaling sweep pins (the workload is SLT@64k, or
/// SLT@8k under `--quick`). The `threads = 1` row doubles as the
/// determinism reference the other rows are diffed against at runtime.
const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// Deterministic result columns of one workload run — everything the
/// `--check` gate compares.
#[derive(Clone)]
struct Entry {
    family: &'static str,
    algorithm: &'static str,
    n: usize,
    m: usize,
    rounds: u64,
    messages: u64,
    messages_combined: u64,
    messages_delivered: u64,
    invocations: u64,
    invocations_dense: u64,
    active_peak: u64,
    active_mean: f64,
    metric: u64,
    msg_max_node: u64,
    msg_max: u64,
    msg_p50: u64,
    msg_p99: u64,
    wall: f64,
    /// Cumulative executor setup wall (plan + arena acquisition and
    /// program construction) across every run and sub-run of the
    /// workload, in seconds — the per-run-setup floor the session layer
    /// amortizes. Machine-dependent; scrubbed by `--check` like `wall`.
    setup: f64,
}

impl Entry {
    fn to_json(&self, threads: usize) -> String {
        format!(
            "    {{\"family\":\"{family}\",\"algorithm\":\"{algorithm}\",\"n\":{n},\"m\":{m},\
             \"seed\":{SEED},\"threads\":{threads},\"rounds\":{rounds},\"messages\":{messages},\
             \"messages_combined\":{combined},\"messages_delivered\":{delivered},\
             \"wall_ms\":{wall_ms:.1},\"setup_ms\":{setup_ms:.1},\
             \"rounds_per_sec\":{rps:.1},\"msgs_per_sec\":{mps:.1},\
             \"invocations\":{inv},\"invocations_dense\":{dense},\
             \"active_peak\":{peak},\"active_mean\":{mean:.3},\
             \"msg_max_node\":{mmn},\"msg_max\":{mm},\"msg_p50\":{p50},\"msg_p99\":{p99},\
             \"metric\":{metric}}}",
            family = self.family,
            algorithm = self.algorithm,
            n = self.n,
            m = self.m,
            rounds = self.rounds,
            messages = self.messages,
            combined = self.messages_combined,
            delivered = self.messages_delivered,
            wall_ms = self.wall * 1e3,
            setup_ms = self.setup * 1e3,
            rps = self.rounds as f64 / self.wall.max(1e-9),
            mps = self.messages_delivered as f64 / self.wall.max(1e-9),
            inv = self.invocations,
            dense = self.invocations_dense,
            peak = self.active_peak,
            mean = self.active_mean,
            mmn = self.msg_max_node,
            mm = self.msg_max,
            p50 = self.msg_p50,
            p99 = self.msg_p99,
            metric = self.metric,
        )
    }

    /// The contract-pinned columns the `--check` gate (and the runtime
    /// cross-thread identity check) compares. Wall-derived columns are
    /// deliberately absent.
    fn det_columns(&self) -> [(&'static str, u64); 12] {
        [
            ("m", self.m as u64),
            ("rounds", self.rounds),
            ("messages", self.messages),
            ("messages_combined", self.messages_combined),
            ("messages_delivered", self.messages_delivered),
            ("invocations", self.invocations),
            ("active_peak", self.active_peak),
            ("msg_max_node", self.msg_max_node),
            ("msg_max", self.msg_max),
            ("msg_p50", self.msg_p50),
            ("msg_p99", self.msg_p99),
            ("metric", self.metric),
        ]
    }
}

/// Extracts `"key":<integer>` from a baseline JSON line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// One column drift against the baseline (`want` absent when the
/// baseline predates the column).
struct Drift {
    workload: String,
    column: &'static str,
    want: Option<u64>,
    got: u64,
}

/// Diffs the deterministic columns of `entries` against the committed
/// baseline; returns missing-workload errors plus per-column drifts.
fn check_against_baseline(entries: &[Entry], baseline: &str) -> (Vec<String>, Vec<Drift>) {
    let mut missing = Vec::new();
    let mut drifts = Vec::new();
    for e in entries {
        let workload = format!("{} {} n={}", e.family, e.algorithm, e.n);
        let tag = format!(
            "\"family\":\"{}\",\"algorithm\":\"{}\",\"n\":{},",
            e.family, e.algorithm, e.n
        );
        let Some(line) = baseline.lines().find(|l| l.contains(&tag)) else {
            missing.push(format!(
                "{workload}: no baseline entry — regenerate BENCH_engine.json"
            ));
            continue;
        };
        for (key, got) in e.det_columns() {
            match json_u64(line, key) {
                Some(want) if want == got => {}
                want => drifts.push(Drift {
                    workload: workload.clone(),
                    column: key,
                    want,
                    got,
                }),
            }
        }
    }
    (missing, drifts)
}

/// Renders the drift list as an aligned old→new delta table.
fn drift_table(drifts: &[Drift]) -> String {
    let mut rows: Vec<[String; 5]> = vec![[
        "workload".to_owned(),
        "column".to_owned(),
        "baseline".to_owned(),
        "current".to_owned(),
        "delta".to_owned(),
    ]];
    for d in drifts {
        let (want, delta) = match d.want {
            Some(w) => (w.to_string(), format!("{:+}", d.got as i128 - w as i128)),
            None => ("(absent)".to_owned(), "-".to_owned()),
        };
        rows.push([
            d.workload.clone(),
            d.column.to_owned(),
            want,
            d.got.to_string(),
            delta,
        ]);
    }
    let mut width = [0usize; 5];
    for row in &rows {
        for (w, cell) in width.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    rows.iter()
        .map(|row| {
            let cells: Vec<String> = row
                .iter()
                .zip(width)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            format!("bench:   {}", cells.join("  ").trim_end())
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: bench [--out PATH] [--threads N] [--quick] [--check BASELINE] \
             [--profile TRACE.jsonl]"
        );
        return;
    }
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_engine.json".to_owned());
    let threads: usize = flag_value("--threads")
        .map(|t| t.parse().expect("--threads takes a number"))
        .unwrap_or(1);
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = flag_value("--check");
    let trace = flag_value("--profile").map(|p| {
        let f = std::fs::File::create(&p)
            .unwrap_or_else(|e| panic!("cannot create trace file {p}: {e}"));
        TraceSink::shared(Box::new(f))
    });

    let workloads: Vec<(&str, &str, usize)> = if quick {
        QUICK.to_vec()
    } else {
        WORKLOADS.to_vec()
    };

    let params = AlgoParams::default();

    let run_one = |family: &'static str, algorithm: &'static str, n: usize, nthreads: usize| {
        eprintln!("bench: {family} {algorithm} n={n} threads={nthreads} ...");
        let g = build_graph(family, n, 100, SEED).expect("pinned family");
        let mut eng = Engine::with_threads(&g, nthreads);
        eng.set_record_node_stats(true);
        eng.set_trace(trace.clone());
        // `--quick` is the diagnosable gate: phase-wall sampling (the
        // cheap slice of metrics recording — clock reads only, no
        // `O(m)` scans) feeds the breakdown line below. Observer-
        // neutral (contract clause 8).
        eng.set_time_phases(quick);
        // Setup/phase walls accumulate process-wide across every
        // sub-executor the algorithm spawns; the per-workload numbers
        // are deltas around the drive.
        let setup0 = congest::plan::setup_wall_ns();
        let phase0 = congest::plan::phase_wall_ns();
        let start = Instant::now();
        let (stats, _, metric) = match &trace {
            Some(sink) => {
                let (res, tree) = obs::collect_spans(|| drive(&mut eng, algorithm, &params, SEED));
                let scope = format!("{family}/{algorithm}/n{n}");
                sink.lock().expect("trace sink").push_spans(&scope, &tree);
                eprint!("{}", tree.render());
                res
            }
            None => drive(&mut eng, algorithm, &params, SEED),
        }
        .expect("pinned algorithm");
        let wall = start.elapsed().as_secs_f64();
        let setup = (congest::plan::setup_wall_ns() - setup0) as f64 / 1e9;
        if quick {
            let (d1, c1, b1) = congest::plan::phase_wall_ns();
            let (d0, c0, b0) = phase0;
            eprintln!(
                "bench: {family} {algorithm} n={n} breakdown: setup {:.1}ms, \
                 deliver {:.1}ms, compute {:.1}ms, barrier {:.1}ms (wall {:.1}ms)",
                setup * 1e3,
                (d1 - d0) as f64 / 1e6,
                (c1 - c0) as f64 / 1e6,
                (b1 - b0) as f64 / 1e6,
                wall * 1e3,
            );
        }
        let frontier = Executor::frontier_total(&eng);
        let summary = Executor::node_stats(&eng)
            .expect("node stats recorded")
            .summary();
        // Executed rounds (FrontierStats::rounds), not total accounted
        // rounds: analytical charge()s must not inflate the dense
        // baseline (identical for the pinned set, which charges none).
        let dense = frontier.rounds * n as u64;
        eprintln!(
            "bench: {family} {algorithm} n={n}: {:.1}s, {} rounds, {} delivered of {} sent \
             ({} combined), {} invocations ({:.1}x fewer than dense)",
            wall,
            stats.rounds,
            stats.messages_delivered(),
            stats.messages,
            stats.messages_combined,
            frontier.invocations,
            dense as f64 / frontier.invocations.max(1) as f64,
        );
        Entry {
            family,
            algorithm,
            n,
            m: g.m(),
            rounds: stats.rounds,
            messages: stats.messages,
            messages_combined: stats.messages_combined,
            messages_delivered: stats.messages_delivered(),
            invocations: frontier.invocations,
            invocations_dense: dense,
            active_peak: frontier.peak_active,
            active_mean: frontier.mean_active(),
            metric,
            msg_max_node: summary.msg_max_node as u64,
            msg_max: summary.msg_max,
            msg_p50: summary.msg_p50,
            msg_p99: summary.msg_p99,
            wall,
            setup,
        }
    };

    let mut entries: Vec<Entry> = Vec::new();
    for (family, algorithm, n) in workloads {
        entries.push(run_one(family, algorithm, n, threads));
    }

    // Scaling sweep: one pinned workload over SCALING_THREADS. The main
    // run at the matching thread count is reused rather than re-run.
    let (sf, sa, sn): (&'static str, &'static str, usize) = if quick {
        ("geometric", "slt", 8_000)
    } else {
        ("geometric", "slt", 64_000)
    };
    let mut scaling: Vec<(usize, Entry)> = Vec::new();
    for &t in &SCALING_THREADS {
        let reused = (t == threads)
            .then(|| {
                entries
                    .iter()
                    .find(|e| (e.family, e.algorithm, e.n) == (sf, sa, sn))
            })
            .flatten()
            .cloned();
        scaling.push((t, reused.unwrap_or_else(|| run_one(sf, sa, sn, t))));
    }

    // Cross-thread bit-identity: every deterministic column of every
    // scaling row must equal the threads=1 row. This is the contract's
    // acceptance check, enforced on every bench run (including --check),
    // before any output file is written.
    let (t0, base) = (&scaling[0].0, scaling[0].1.clone());
    let mut violated = false;
    for (t, e) in scaling.iter().skip(1) {
        for ((key, want), (_, got)) in base.det_columns().iter().zip(e.det_columns()) {
            if *want != got {
                eprintln!(
                    "bench: DETERMINISM VIOLATION — {sf} {sa} n={sn}: column {key} is {want} \
                     at threads={t0} but {got} at threads={t}"
                );
                violated = true;
            }
        }
    }
    if violated {
        eprintln!("bench: cross-thread determinism violated; refusing to write results");
        std::process::exit(1);
    }
    let base_wall = base.wall;
    for (t, e) in &scaling {
        eprintln!(
            "bench: scaling {sf} {sa} n={sn} threads={t}: {:.1}s ({:.2}x vs 1 thread)",
            e.wall,
            base_wall / e.wall.max(1e-9),
        );
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        // Scaling rows share the baseline line of the matching main
        // workload (first match by family/algorithm/n — the "workloads"
        // array precedes "scaling" in the file), so each multi-thread
        // run is gated against the single-thread committed numbers.
        let mut gated = entries.clone();
        gated.extend(scaling.iter().map(|(_, e)| e.clone()));
        let (missing, drifts) = check_against_baseline(&gated, &baseline);
        if missing.is_empty() && drifts.is_empty() {
            eprintln!(
                "bench: OK — {} workloads (+{} scaling rows) match the deterministic \
                 columns of {path}",
                entries.len(),
                scaling.len(),
            );
            return;
        }
        eprintln!("bench: REGRESSION — deterministic columns drifted from {path}:");
        for e in &missing {
            eprintln!("bench:   {e}");
        }
        if !drifts.is_empty() {
            eprintln!("{}", drift_table(&drifts));
        }
        eprintln!("bench: if this change is intentional, regenerate the baseline with");
        eprintln!("bench:   cargo run --release -p engine --bin bench");
        eprintln!(
            "bench: column meanings and the regeneration workflow are documented in \
             README.md under \"Performance guide\""
        );
        std::process::exit(1);
    }

    // "scaling" must stay AFTER "workloads": the --check tag lookup is
    // first-match, and scaling rows are gated against the main rows.
    let scaling_json = scaling
        .iter()
        .map(|(t, e)| {
            let row = e.to_json(*t);
            let speedup = base_wall / e.wall.max(1e-9);
            format!("{},\"speedup_vs_1\":{speedup:.2}}}", &row[..row.len() - 1])
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"schema\": 5,\n  \"engine\": \"parallel\",\n  \"note\": \"pinned workload set; \
         invocations_dense = rounds * n is the pre-frontier-scheduling cost; \
         messages_delivered = messages - messages_combined is the post-combining volume; \
         scaling sweeps one workload over thread counts (wall columns are machine-dependent, \
         deterministic columns are bit-identical across threads by contract)\",\n  \
         \"workloads\": [\n{}\n  ],\n  \"scaling\": [\n{}\n  ]\n}}\n",
        entries
            .iter()
            .map(|e| e.to_json(threads))
            .collect::<Vec<_>>()
            .join(",\n"),
        scaling_json,
    );
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write bench output");
    eprintln!("bench: results written to {out_path}");
}
