//! Perf-trajectory bench: runs a fixed pinned workload set on the
//! parallel engine and writes machine-readable `BENCH_engine.json`, so
//! before/after numbers for engine changes (e.g. frontier scheduling)
//! land in the repository instead of a PR description.
//!
//! ```text
//! bench                          # run the pinned set, write BENCH_engine.json
//! bench --out path.json         # alternate output path
//! bench --threads 4             # worker threads (default 1: the
//!                               #   trajectory tracks one-core numbers)
//! bench --quick                 # drop the slowest workloads (dev loop)
//! ```
//!
//! The workload set is pinned — same families, sizes and seeds every
//! run — so successive JSON snapshots are comparable:
//!
//! * geometric BFS at 100k, 500k and 1M nodes (round-bound; the
//!   frontier-scheduling showcase), and
//! * geometric SLT at 1k and 2k nodes. SLT is message-bound (~10⁸
//!   messages at n=2k, see the scenario taper in
//!   `scenarios/geometric_1m.toml`), so it rides at message-feasible
//!   sizes until the multi-source table churn is profiled (ROADMAP).
//!
//! Each entry reports throughput (`rounds_per_sec`, `msgs_per_sec`,
//! `wall_ms`) and the frontier-scheduling counters: `invocations`
//! (`Program::round` calls actually executed) against
//! `invocations_dense` (`rounds * n`, what a dense every-node
//! scheduler would have executed) — the ratio is the scheduling win.

use congest::Executor;
use engine::scenario::{build_graph, drive, AlgoParams};
use engine::Engine;
use std::io::Write;
use std::time::Instant;

/// One pinned workload: (family, algorithm, n). All use seed 1 and the
/// scenario runner's default parameters.
const WORKLOADS: [(&str, &str, usize); 5] = [
    ("geometric", "bfs", 100_000),
    ("geometric", "bfs", 500_000),
    ("geometric", "bfs", 1_000_000),
    ("geometric", "slt", 1_000),
    ("geometric", "slt", 2_000),
];

/// Workloads kept under `--quick` (everything that finishes in a few
/// seconds on one core).
const QUICK: [(&str, &str, usize); 2] =
    [("geometric", "bfs", 100_000), ("geometric", "slt", 1_000)];

const SEED: u64 = 1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench [--out PATH] [--threads N] [--quick]");
        return;
    }
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_engine.json".to_owned());
    let threads: usize = flag_value("--threads")
        .map(|t| t.parse().expect("--threads takes a number"))
        .unwrap_or(1);
    let quick = args.iter().any(|a| a == "--quick");

    let workloads: Vec<(&str, &str, usize)> = if quick {
        QUICK.to_vec()
    } else {
        WORKLOADS.to_vec()
    };

    let params = AlgoParams {
        eps: 0.5,
        k: 2,
        net_delta: 0,
        net_slack: 0.5,
    };

    let mut entries: Vec<String> = Vec::new();
    for (family, algorithm, n) in workloads {
        eprintln!("bench: {family} {algorithm} n={n} ...");
        let g = build_graph(family, n, 100, SEED).expect("pinned family");
        let mut eng = Engine::with_threads(&g, threads);
        let start = Instant::now();
        let (stats, _, metric) =
            drive(&mut eng, algorithm, &params, SEED).expect("pinned algorithm");
        let wall = start.elapsed().as_secs_f64();
        let frontier = Executor::frontier_total(&eng);
        // Executed rounds (FrontierStats::rounds), not total accounted
        // rounds: analytical charge()s must not inflate the dense
        // baseline (identical for the pinned set, which charges none).
        let dense = frontier.rounds * n as u64;
        let entry = format!(
            "    {{\"family\":\"{family}\",\"algorithm\":\"{algorithm}\",\"n\":{n},\"m\":{m},\
             \"seed\":{SEED},\"threads\":{threads},\"rounds\":{rounds},\"messages\":{messages},\
             \"wall_ms\":{wall_ms:.1},\"rounds_per_sec\":{rps:.1},\"msgs_per_sec\":{mps:.1},\
             \"invocations\":{inv},\"invocations_dense\":{dense},\
             \"active_peak\":{peak},\"active_mean\":{mean:.3},\"metric\":{metric}}}",
            m = g.m(),
            rounds = stats.rounds,
            messages = stats.messages,
            wall_ms = wall * 1e3,
            rps = stats.rounds as f64 / wall.max(1e-9),
            mps = stats.messages as f64 / wall.max(1e-9),
            inv = frontier.invocations,
            peak = frontier.peak_active,
            mean = frontier.mean_active(),
        );
        eprintln!(
            "bench: {family} {algorithm} n={n}: {:.1}s, {} rounds, {} invocations \
             ({:.1}x fewer than dense)",
            wall,
            stats.rounds,
            frontier.invocations,
            dense as f64 / frontier.invocations.max(1) as f64,
        );
        entries.push(entry);
    }

    let json = format!(
        "{{\n  \"schema\": 1,\n  \"engine\": \"parallel\",\n  \"note\": \"pinned workload set; \
         invocations_dense = rounds * n is the pre-frontier-scheduling cost\",\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write bench output");
    eprintln!("bench: results written to {out_path}");
}
