//! Scenario sweeps as a library: graph family × size × algorithm on
//! the parallel engine and/or the sequential simulator.
//!
//! The `scenario` binary (`src/bin/scenario.rs`) is a thin CLI over
//! this module; tests drive the same code in-process (see
//! `tests/golden.rs`), which is what pins the output schema.
//!
//! Every algorithm the repository implements is reachable from a
//! config: `bfs`, `mst`, `slt`, `spanner`, `euler`, `nets`,
//! `doubling`, `bellman`, `landmark`. Each completed
//! `(family, n, algorithm, engine, seed)` cell emits one row, either as
//! a JSON object per line (JSONL, the default) or as a CSV row behind a
//! fixed header (`format = "csv"`). Round/message counts are
//! engine-independent — the parallel engine is bit-identical to the
//! simulator — so `engine = "both"` doubles as a production determinism
//! check: the runner verifies the two engines' stats match and fails
//! loudly otherwise.
//!
//! A root-level `trace = "path.jsonl"` key attaches a buffered
//! [`TraceSink`] to every run: per-round profiling records plus one
//! span tree per cell (scoped `family/n<n>/algorithm/engine/s<seed>`).
//! Tracing never perturbs the deterministic columns (contract
//! clause 8).

use crate::config::{self, Table};
use crate::Engine;
use congest::obs;
use congest::tree::build_bfs_tree;
use congest::{Executor, RunReport, RunStats, SharedTraceSink, Simulator, TraceSink};
use dist_mst::boruvka::distributed_mst;
use dist_mst::euler::distributed_euler_tour;
use dist_sssp::bellman::bellman_ford;
use dist_sssp::landmark::{approx_spt, SptConfig};
use lightgraph::{generators, Graph, Weight};
use lightnet::nets::net;
use lightnet::{doubling_spanner, light_spanner, shallow_light_tree_with};
use std::io::Write;
use std::time::Instant;

/// Upper bound on the `threads` TOML key — loud validation instead of
/// silently over-subscribing the machine (mirrors the
/// `landmarks`/`hop_bound` pattern). Omitting the key uses every core.
pub const MAX_THREADS: usize = 512;

/// The built-in default sweep (`scenario` with no arguments).
pub const DEFAULT_CONFIG: &str = r#"# Built-in default sweep (see crates/engine/scenarios/ for more).
seed = 1
# threads = 4        # worker threads, 1..=512; omit to use every core
engine = "parallel"  # "parallel" | "sim" | "both"
format = "jsonl"     # "jsonl" | "csv"
cap = 1
record_metrics = true

[[run]]
family = "erdos-renyi"
sizes = [1000, 10000]
algorithms = ["bfs", "mst"]

[[run]]
family = "grid"
sizes = [2500]
algorithms = ["bfs", "slt"]
eps = 0.5
"#;

/// Every algorithm name accepted in a `[[run]]` `algorithms` list.
pub const ALGORITHMS: [&str; 9] = [
    "bfs", "mst", "slt", "spanner", "euler", "nets", "doubling", "bellman", "landmark",
];

/// Output serialization of the result rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// One JSON object per line (the default).
    Jsonl,
    /// One CSV row per cell behind [`Row::CSV_HEADER`].
    Csv,
}

/// One result cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Graph family name.
    pub family: String,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Algorithm name (see [`ALGORITHMS`]).
    pub algorithm: String,
    /// Engine that produced the row (`sim` or `parallel`).
    pub engine: String,
    /// Worker threads (1 for `sim`).
    pub threads: usize,
    /// Instance seed.
    pub seed: u64,
    /// Rounds/messages of the run.
    pub stats: RunStats,
    /// Peak active-node count in any round (frontier width; see the
    /// activation contract in `congest::exec`). Engine-independent.
    pub active_peak: u64,
    /// Mean active-node count per *executed* round
    /// (`invocations / FrontierStats::rounds` — analytically charged
    /// rounds are excluded from the denominator).
    pub active_mean: f64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Algorithm-specific headline number, e.g. BFS height, MST weight.
    pub metric_name: &'static str,
    /// Value of the headline metric.
    pub metric: u64,
    /// Engine instrumentation, when recorded.
    pub peak_round_messages: Option<u64>,
    /// Engine instrumentation, when recorded.
    pub peak_queue_depth: Option<u64>,
    /// Wall time of the deliver phase (machine-dependent; scrubbed
    /// wherever pinned, like `wall_ms`).
    pub deliver_ms: Option<f64>,
    /// Wall time of the compute phase (machine-dependent).
    pub compute_ms: Option<f64>,
    /// Wall time at phase barriers (machine-dependent; 0 for `sim`).
    pub barrier_ms: Option<f64>,
    /// Node with the largest message load (deterministic, pinned).
    pub msg_max_node: Option<u64>,
    /// Largest per-node message load `sent + delivered`.
    pub msg_max: Option<u64>,
    /// Median per-node message load (nearest-rank).
    pub msg_p50: Option<u64>,
    /// 99th-percentile per-node message load (nearest-rank).
    pub msg_p99: Option<u64>,
}

impl Row {
    /// The fixed CSV column order; every row serializes exactly these
    /// fields (empty cells where instrumentation was not recorded).
    pub const CSV_HEADER: &'static str = "family,n,m,algorithm,engine,threads,seed,rounds,\
                                          messages,messages_combined,messages_delivered,\
                                          active_peak,active_mean,wall_ms,\
                                          metric_name,metric,\
                                          peak_round_messages,peak_queue_depth,\
                                          deliver_ms,compute_ms,barrier_ms,\
                                          msg_max_node,msg_max,msg_p50,msg_p99";

    /// JSONL serialization. Field order is stable; the headline metric
    /// appears under its algorithm-specific name (e.g. `"height"`).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"family\":\"{}\",\"n\":{},\"m\":{},\"algorithm\":\"{}\",\"engine\":\"{}\",\
             \"threads\":{},\"seed\":{},\"rounds\":{},\"messages\":{},\
             \"messages_combined\":{},\"messages_delivered\":{},\"active_peak\":{},\
             \"active_mean\":{:.3},\"wall_ms\":{:.3},\"{}\":{}",
            self.family,
            self.n,
            self.m,
            self.algorithm,
            self.engine,
            self.threads,
            self.seed,
            self.stats.rounds,
            self.stats.messages,
            self.stats.messages_combined,
            self.stats.messages_delivered(),
            self.active_peak,
            self.active_mean,
            self.wall_ms,
            self.metric_name,
            self.metric,
        );
        if let Some(p) = self.peak_round_messages {
            s.push_str(&format!(",\"peak_round_messages\":{p}"));
        }
        if let Some(d) = self.peak_queue_depth {
            s.push_str(&format!(",\"peak_queue_depth\":{d}"));
        }
        if let Some(d) = self.deliver_ms {
            s.push_str(&format!(",\"deliver_ms\":{d:.3}"));
        }
        if let Some(c) = self.compute_ms {
            s.push_str(&format!(",\"compute_ms\":{c:.3}"));
        }
        if let Some(b) = self.barrier_ms {
            s.push_str(&format!(",\"barrier_ms\":{b:.3}"));
        }
        if let Some(v) = self.msg_max_node {
            s.push_str(&format!(",\"msg_max_node\":{v}"));
        }
        if let Some(v) = self.msg_max {
            s.push_str(&format!(",\"msg_max\":{v}"));
        }
        if let Some(v) = self.msg_p50 {
            s.push_str(&format!(",\"msg_p50\":{v}"));
        }
        if let Some(v) = self.msg_p99 {
            s.push_str(&format!(",\"msg_p99\":{v}"));
        }
        s.push('}');
        s
    }

    /// CSV serialization in [`Row::CSV_HEADER`] order.
    pub fn to_csv(&self) -> String {
        let opt_u = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        let opt_f = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{},{},{},{},{},{},{},{},{},{},{}",
            self.family,
            self.n,
            self.m,
            self.algorithm,
            self.engine,
            self.threads,
            self.seed,
            self.stats.rounds,
            self.stats.messages,
            self.stats.messages_combined,
            self.stats.messages_delivered(),
            self.active_peak,
            self.active_mean,
            self.wall_ms,
            self.metric_name,
            self.metric,
            opt_u(self.peak_round_messages),
            opt_u(self.peak_queue_depth),
            opt_f(self.deliver_ms),
            opt_f(self.compute_ms),
            opt_f(self.barrier_ms),
            opt_u(self.msg_max_node),
            opt_u(self.msg_max),
            opt_u(self.msg_p50),
            opt_u(self.msg_p99),
        )
    }
}

/// Instantiates a family at size `n`. The geometric family uses the
/// grid-bucketed `O(n log n)` generator, so sizes are uncapped —
/// million-node instances are fine (see `scenarios/geometric_1m.toml`).
pub fn build_graph(family: &str, n: usize, max_w: Weight, seed: u64) -> Result<Graph, String> {
    match family {
        "erdos-renyi" => {
            let p = (8.0 / n.max(2) as f64).min(1.0);
            Ok(generators::gnp_sparse(n, p, max_w, seed))
        }
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            Ok(generators::grid(side.max(1), side.max(1), max_w, seed))
        }
        "tree-chords" => Ok(generators::tree_plus_chords(n, n / 2, max_w, seed)),
        "geometric" => {
            let r = (8.0 / (std::f64::consts::PI * n.max(1) as f64)).sqrt();
            Ok(generators::random_geometric(n, r, seed))
        }
        other => Err(format!(
            "unknown family `{other}` (expected erdos-renyi, grid, tree-chords, geometric)"
        )),
    }
}

/// Per-cell algorithm parameters, parsed from a `[[run]]` table.
#[derive(Debug, Clone, Copy)]
pub struct AlgoParams {
    /// `eps` — SLT/spanner/doubling approximation parameter.
    pub eps: f64,
    /// `k` — spanner stretch parameter.
    pub k: usize,
    /// `net_delta` — the net scale ∆; 0 selects `max_weight / 4`.
    pub net_delta: Weight,
    /// `net_slack` — the net's δ slack.
    pub net_slack: f64,
    /// `landmarks` — forces the landmark SPT's full scheme with exactly
    /// this many landmarks (`slt` and `landmark` cells). Absent =
    /// adaptive (root-probe cutoff; see `dist_sssp::landmark`).
    pub landmarks: Option<usize>,
    /// `hop_bound` — hop budget of the landmark SPT's bounded
    /// explorations. Absent = the `2⌈√n⌉` default.
    pub hop_bound: Option<u64>,
}

impl Default for AlgoParams {
    /// The scenario defaults: every knob at its documented default.
    fn default() -> Self {
        AlgoParams {
            eps: 0.5,
            k: 2,
            net_delta: 0,
            net_slack: 0.5,
            landmarks: None,
            hop_bound: None,
        }
    }
}

/// Runs one algorithm on one executor; returns stats plus a headline
/// metric. All nine [`ALGORITHMS`] dispatch through here, on either
/// engine — the algorithms themselves are written once against
/// `congest::Executor`.
pub fn drive<E: Executor>(
    exec: &mut E,
    algorithm: &str,
    p: &AlgoParams,
    seed: u64,
) -> Result<(RunStats, &'static str, u64), String> {
    // Resolve to the static name so the whole run sits under one root
    // phase span (a no-op unless a span collector is installed).
    let Some(name) = ALGORITHMS.into_iter().find(|&a| a == algorithm) else {
        return Err(format!(
            "unknown algorithm `{algorithm}` (expected one of {})",
            ALGORITHMS.join(", ")
        ));
    };
    Ok(obs::span(exec, name, |exec| match name {
        "bfs" => {
            let (tree, _) = build_bfs_tree(exec, 0);
            (exec.total(), "height", tree.height())
        }
        "mst" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let m = distributed_mst(exec, &tau, 0, seed);
            (exec.total(), "weight", m.weight)
        }
        "slt" => {
            // Named sub-span: after the tour/Borůvka message-wall fix
            // the BFS-tree build is no longer rounding error next to
            // the other phases, and the pinned span tree accounts for
            // every major phase by name.
            let (tau, _) = obs::span(exec, "tau", |exec| build_bfs_tree(exec, 0));
            let slt = shallow_light_tree_with(exec, &tau, 0, p.eps, seed, p.landmarks, p.hop_bound);
            (exec.total(), "breakpoints", slt.breakpoints as u64)
        }
        "spanner" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let sp = light_spanner(exec, &tau, 0, p.k, p.eps, seed);
            (exec.total(), "edges", sp.edges.len() as u64)
        }
        "euler" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let m = distributed_mst(exec, &tau, 0, seed);
            let tour = distributed_euler_tour(exec, &tau, &m, 0);
            (exec.total(), "tour_length", tour.total_length)
        }
        "nets" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let big_delta = if p.net_delta > 0 {
                p.net_delta
            } else {
                (exec.graph().max_weight() / 4).max(1)
            };
            let r = net(exec, &tau, big_delta, p.net_slack, seed);
            (exec.total(), "points", r.points.len() as u64)
        }
        "doubling" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let sp = doubling_spanner(exec, &tau, 0, p.eps, seed);
            (exec.total(), "edges", sp.edges.len() as u64)
        }
        "bellman" => {
            let r = bellman_ford(exec, 0);
            (exec.total(), "max_dist", r.max_finite_dist())
        }
        "landmark" => {
            let (tau, _) = build_bfs_tree(exec, 0);
            let cfg = SptConfig {
                landmarks: p.landmarks,
                hop_bound: p.hop_bound,
                ..SptConfig::new(seed)
            };
            let spt = approx_spt(exec, &tau, 0, &cfg);
            (exec.total(), "max_dist", spt.max_finite_dist())
        }
        _ => unreachable!("resolved above"),
    }))
}

struct Globals {
    threads: usize,
    cap: usize,
    record: bool,
    engines: Vec<&'static str>,
    base_seed: u64,
    format: OutputFormat,
    trace: Option<SharedTraceSink>,
}

struct Cell<'a> {
    family: &'a str,
    algorithm: &'a str,
    params: AlgoParams,
    seed: u64,
}

/// The per-cell determinism probe compared across engines: `RunStats`,
/// frontier accounting, and the per-node message summary columns.
type Probe = (
    RunStats,
    u64,
    u64,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    Option<u64>,
);

/// Runs [`drive`] with a span collector installed when the sweep has a
/// trace sink; the harvested span tree is appended to the trace under
/// the cell's scope string.
fn drive_cell<E: Executor>(
    exec: &mut E,
    globals: &Globals,
    cell: &Cell<'_>,
    scope: &str,
) -> Result<(RunStats, &'static str, u64), String> {
    match &globals.trace {
        Some(sink) => {
            let (res, tree) =
                obs::collect_spans(|| drive(exec, cell.algorithm, &cell.params, cell.seed));
            sink.lock().expect("trace sink").push_spans(scope, &tree);
            res
        }
        None => drive(exec, cell.algorithm, &cell.params, cell.seed),
    }
}

fn run_cell(
    globals: &Globals,
    g: &Graph,
    which: &str,
    cell: &Cell<'_>,
) -> Result<(Row, Option<RunReport>), String> {
    let start = Instant::now();
    let scope = format!(
        "{}/n{}/{}/{}/s{}",
        cell.family,
        g.n(),
        cell.algorithm,
        which,
        cell.seed
    );
    let (stats, frontier, metric_name, metric, report, summary, wall) = match which {
        "sim" => {
            let mut sim = Simulator::new(g);
            Executor::set_cap(&mut sim, globals.cap);
            sim.set_record_metrics(globals.record);
            sim.set_record_node_stats(globals.record);
            sim.set_trace(globals.trace.clone());
            let (stats, name, metric) = drive_cell(&mut sim, globals, cell, &scope)?;
            let report = sim.last_report().cloned();
            let summary = Executor::node_stats(&sim).map(|ns| ns.summary());
            let wall = globals.record.then(|| sim.wall_total());
            (
                stats,
                sim.frontier_total(),
                name,
                metric,
                report,
                summary,
                wall,
            )
        }
        "parallel" => {
            let mut eng = Engine::with_threads(g, globals.threads);
            Executor::set_cap(&mut eng, globals.cap);
            eng.set_record_metrics(globals.record);
            eng.set_record_node_stats(globals.record);
            eng.set_trace(globals.trace.clone());
            let (stats, name, metric) = drive_cell(&mut eng, globals, cell, &scope)?;
            let report = eng.last_report().cloned();
            let summary = Executor::node_stats(&eng).map(|ns| ns.summary());
            let wall = globals.record.then(|| eng.wall_total());
            (
                stats,
                Executor::frontier_total(&eng),
                name,
                metric,
                report,
                summary,
                wall,
            )
        }
        other => return Err(format!("unknown engine `{other}`")),
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let row = Row {
        family: cell.family.to_owned(),
        n: g.n(),
        m: g.m(),
        algorithm: cell.algorithm.to_owned(),
        engine: which.to_owned(),
        threads: if which == "sim" { 1 } else { globals.threads },
        seed: cell.seed,
        stats,
        active_peak: frontier.peak_active,
        active_mean: frontier.mean_active(),
        wall_ms,
        metric_name,
        metric,
        peak_round_messages: report.as_ref().map(|r| r.peak_round_messages()),
        peak_queue_depth: report.as_ref().map(|r| r.peak_queue_depth()),
        deliver_ms: wall.map(|w| w.deliver_ns as f64 / 1e6),
        compute_ms: wall.map(|w| w.compute_ns as f64 / 1e6),
        barrier_ms: wall.map(|w| w.barrier_ns as f64 / 1e6),
        msg_max_node: summary.map(|s| s.msg_max_node as u64),
        msg_max: summary.map(|s| s.msg_max),
        msg_p50: summary.map(|s| s.msg_p50),
        msg_p99: summary.map(|s| s.msg_p99),
    };
    Ok((row, report))
}

/// Runs every `[[run]]` sweep of a parsed config, writing rows to
/// `out` in the config's `format`.
///
/// # Errors
/// Returns a message on unknown families/algorithms/engines, missing
/// required keys, I/O failures, or a sim/parallel determinism mismatch.
pub fn run_sweep(doc: &config::Document, out: &mut dyn Write) -> Result<(), String> {
    let root = &doc.root;
    let threads = match root.get("threads") {
        None => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        Some(v) => match v.as_int() {
            Some(t) if (1..=MAX_THREADS as i64).contains(&t) => t as usize,
            Some(0) => {
                return Err("threads must be >= 1 (omit the key to use every core)".to_owned())
            }
            Some(t) => return Err(format!("threads must be in 1..={MAX_THREADS}, got {t}")),
            None => return Err("`threads` must be an integer".to_owned()),
        },
    };
    let engines: Vec<&'static str> = match root.str_or("engine", "parallel") {
        "parallel" => vec!["parallel"],
        "sim" => vec!["sim"],
        "both" => vec!["sim", "parallel"],
        other => return Err(format!("engine must be parallel|sim|both, got `{other}`")),
    };
    let format = match root.str_or("format", "jsonl") {
        "jsonl" => OutputFormat::Jsonl,
        "csv" => OutputFormat::Csv,
        other => return Err(format!("format must be jsonl|csv, got `{other}`")),
    };
    let trace = match root.get("trace") {
        None => None,
        Some(v) => {
            let path = v
                .as_str()
                .ok_or_else(|| "`trace` must be a path string".to_owned())?;
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
            Some(TraceSink::shared(Box::new(file)))
        }
    };
    let globals = Globals {
        threads,
        cap: root.int_or("cap", 1).max(1) as usize,
        record: root.bool_or("record_metrics", false),
        engines,
        base_seed: root.int_or("seed", 1) as u64,
        format,
        trace,
    };
    if format == OutputFormat::Csv {
        writeln!(out, "{}", Row::CSV_HEADER).map_err(|e| e.to_string())?;
    }

    let runs = doc.table_arrays.get("run").cloned().unwrap_or_default();
    if runs.is_empty() {
        return Err("config has no [[run]] sections".to_owned());
    }
    for (ri, run) in runs.iter().enumerate() {
        sweep_run(&globals, ri, run, out)?;
    }
    Ok(())
}

/// Parses and validates the per-cell algorithm knobs of one `[[run]]`
/// table. Zero or absurd values are configuration mistakes (a zero hop
/// bound kills every exploration, zero landmarks silently degenerates
/// the scheme, a non-positive slack violates Theorem 3's premise), so
/// they fail the sweep loudly instead of producing misleading rows.
fn parse_algo_params(ri: usize, run: &Table) -> Result<AlgoParams, String> {
    let eps = run.f64_or("eps", 0.5);
    if !eps.is_finite() || eps <= 0.0 || eps > 64.0 {
        return Err(format!(
            "[[run]] #{ri}: `eps` must be in (0, 64], got {eps}"
        ));
    }
    let k = run.int_or("k", 2);
    if k < 1 {
        return Err(format!("[[run]] #{ri}: `k` must be >= 1, got {k}"));
    }
    let net_delta = run.int_or("net_delta", 0);
    if net_delta < 0 {
        return Err(format!(
            "[[run]] #{ri}: `net_delta` must be >= 0 (0 = auto), got {net_delta}"
        ));
    }
    let net_slack = run.f64_or("net_slack", 0.5);
    if !net_slack.is_finite() || net_slack <= 0.0 || net_slack > 64.0 {
        return Err(format!(
            "[[run]] #{ri}: `net_slack` must be in (0, 64], got {net_slack}"
        ));
    }
    let landmarks = match run.get("landmarks") {
        None => None,
        Some(v) => match v.as_int() {
            Some(l) if (1..=1i64 << 32).contains(&l) => Some(l as usize),
            Some(l) => {
                return Err(format!(
                    "[[run]] #{ri}: `landmarks` must be in [1, 2^32] \
                     (omit the key for the adaptive default), got {l}"
                ))
            }
            None => return Err(format!("[[run]] #{ri}: `landmarks` must be an integer")),
        },
    };
    let hop_bound = match run.get("hop_bound") {
        None => None,
        Some(v) => match v.as_int() {
            Some(h) if h >= 1 => Some(h as u64),
            Some(h) => {
                return Err(format!(
                    "[[run]] #{ri}: `hop_bound` must be >= 1 \
                     (omit the key for the 2⌈√n⌉ default), got {h}"
                ))
            }
            None => return Err(format!("[[run]] #{ri}: `hop_bound` must be an integer")),
        },
    };
    Ok(AlgoParams {
        eps,
        k: k as usize,
        net_delta: net_delta as Weight,
        net_slack,
        landmarks,
        hop_bound,
    })
}

fn sweep_run(globals: &Globals, ri: usize, run: &Table, out: &mut dyn Write) -> Result<(), String> {
    let family = run.str_or("family", "erdos-renyi").to_owned();
    let sizes = run.ints("sizes");
    if sizes.is_empty() {
        return Err(format!("[[run]] #{ri}: `sizes` is required"));
    }
    let algorithms = {
        let a = run.strs("algorithms");
        if a.is_empty() {
            vec!["bfs".to_owned()]
        } else {
            a
        }
    };
    let seeds = {
        let s = run.ints("seeds");
        if s.is_empty() {
            vec![globals.base_seed]
        } else {
            s.into_iter().map(|x| x as u64).collect()
        }
    };
    let params = parse_algo_params(ri, run)?;
    let max_w = run.int_or("max_w", 100).max(1) as u64;

    for &size in &sizes {
        let n = size.max(1) as usize;
        for &seed in &seeds {
            let g = build_graph(&family, n, max_w, seed)?;
            for algorithm in &algorithms {
                let cell = Cell {
                    family: &family,
                    algorithm,
                    params,
                    seed,
                };
                // RunStats, frontier accounting *and* the per-node
                // message summary must match across engines (the
                // active set is contract-determined, clause 8 extends
                // that to the observers).
                let mut seen: Option<Probe> = None;
                let mut seen_report: Option<RunReport> = None;
                for which in &globals.engines {
                    let (row, report) = run_cell(globals, &g, which, &cell)?;
                    let probe = (
                        row.stats,
                        row.active_peak,
                        row.active_mean.to_bits(),
                        row.msg_max_node,
                        row.msg_max,
                        row.msg_p50,
                        row.msg_p99,
                    );
                    let line = match globals.format {
                        OutputFormat::Jsonl => row.to_json(),
                        OutputFormat::Csv => row.to_csv(),
                    };
                    writeln!(out, "{line}").map_err(|e| e.to_string())?;
                    if let Some(prev) = seen {
                        if prev != probe {
                            return Err(format!(
                                "DETERMINISM VIOLATION: {family} n={n} {algorithm} seed={seed}: \
                                 sim {prev:?} != parallel {probe:?}"
                            ));
                        }
                    }
                    // With metrics recorded, the whole per-round series
                    // must agree, not just the totals.
                    if let (Some(prev), Some(cur)) = (seen_report.as_ref(), report.as_ref()) {
                        if prev.messages_per_round != cur.messages_per_round
                            || prev.active_per_round != cur.active_per_round
                            || prev.max_queue_depth_per_round != cur.max_queue_depth_per_round
                            || prev.hot_edges != cur.hot_edges
                        {
                            return Err(format!(
                                "DETERMINISM VIOLATION: {family} n={n} {algorithm} seed={seed}: \
                                 per-round series differ between sim and parallel"
                            ));
                        }
                    }
                    seen = Some(probe);
                    if report.is_some() {
                        seen_report = report;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_err(body: &str) -> String {
        let doc = config::parse(body).expect("config parses");
        let mut out = Vec::new();
        run_sweep(&doc, &mut out).expect_err("sweep must be rejected")
    }

    #[test]
    fn zero_and_absurd_knobs_are_rejected_loudly() {
        let cell = |extra: &str| {
            format!(
                "engine = \"sim\"\n[[run]]\nfamily = \"grid\"\nsizes = [16]\n\
                 algorithms = [\"bfs\"]\n{extra}\n"
            )
        };
        assert!(sweep_err(&cell("hop_bound = 0")).contains("hop_bound"));
        assert!(sweep_err(&cell("hop_bound = -3")).contains("hop_bound"));
        assert!(sweep_err(&cell("landmarks = 0")).contains("landmarks"));
        assert!(sweep_err(&cell("landmarks = -1")).contains("landmarks"));
        assert!(sweep_err(&cell("eps = 0.0")).contains("eps"));
        assert!(sweep_err(&cell("eps = -1.0")).contains("eps"));
        assert!(sweep_err(&cell("eps = 1000.0")).contains("eps"));
        assert!(sweep_err(&cell("k = 0")).contains("`k`"));
        assert!(sweep_err(&cell("net_delta = -5")).contains("net_delta"));
        assert!(sweep_err(&cell("net_slack = 0.0")).contains("net_slack"));
    }

    #[test]
    fn threads_key_is_validated_loudly() {
        let with_threads = |t: &str| {
            format!(
                "engine = \"sim\"\nthreads = {t}\n[[run]]\nfamily = \"grid\"\n\
                 sizes = [16]\nalgorithms = [\"bfs\"]\n"
            )
        };
        let zero = sweep_err(&with_threads("0"));
        assert!(zero.contains("threads"), "{zero}");
        assert!(zero.contains("omit the key"), "hint the fix: {zero}");
        assert!(sweep_err(&with_threads("-2")).contains("threads"));
        let absurd = sweep_err(&with_threads("100000"));
        assert!(absurd.contains("1..=512"), "{absurd}");
        assert!(sweep_err(&with_threads("\"many\"")).contains("integer"));
        // In-range values run; `threads` lands in the emitted rows.
        let body = with_threads("2").replace("engine = \"sim\"", "engine = \"parallel\"");
        let doc = config::parse(&body).expect("config parses");
        let mut out = Vec::new();
        run_sweep(&doc, &mut out).expect("sweep runs");
        assert!(String::from_utf8(out).unwrap().contains("\"threads\":2"));
    }

    #[test]
    fn valid_knobs_reach_the_algorithms() {
        let body = "engine = \"sim\"\n[[run]]\nfamily = \"geometric\"\nsizes = [48]\n\
                    algorithms = [\"landmark\"]\nlandmarks = 6\nhop_bound = 4\n";
        let doc = config::parse(body).expect("config parses");
        let mut out = Vec::new();
        run_sweep(&doc, &mut out).expect("sweep runs");
        let rows = String::from_utf8(out).unwrap();
        assert!(rows.contains("\"algorithm\":\"landmark\""));
    }
}
