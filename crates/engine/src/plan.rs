//! The engine's side of the run-session layer (see `congest::plan`).
//!
//! Everything the engine derives from the input **topology alone** —
//! the CSR index, the per-directed-edge sender/receiver maps, and the
//! per-configuration shard plans (bounds, claim orders, boundary
//! distances) — lives here, behind `Arc`s shared by a root engine and
//! every sub-executor it spawns. Reuse is semantics-invisible by the
//! determinism contract (`congest::exec`, "plan reuse" note): a cached
//! plan is byte-for-byte the plan a cold build would produce.
//!
//! Shard plans additionally depend on the worker-thread count and the
//! stress seed, so they are cached *per topology* keyed by that pair —
//! a stressed run participates in the cache through its seed (same
//! seed, same plan) rather than bypassing it.

use crate::csr::{Csr, ShardLocality};
use lightgraph::{Graph, NodeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Bound on retained per-configuration shard plans per topology. Env
/// stress draws a fresh seed every run, so the map would otherwise grow
/// one entry per stressed run; on overflow it is cleared (a miss just
/// rebuilds).
const PLAN_CAP: usize = 64;

/// One shard configuration: bounds, per-worker claim orders, and the
/// shard-locality metadata (owner shard + hops-to-boundary, the
/// fusion-eligibility metric of contract clause 9).
pub(crate) struct PlanData {
    pub shards: Vec<(usize, usize)>,
    pub orders: Vec<Vec<usize>>,
    pub loc: ShardLocality,
}

/// Topology-derived engine structure, cached in the shared
/// `congest::plan::TopoCache` and reused across runs, sub-runs, and
/// sub-executors on the same topology.
pub(crate) struct EngineTopo {
    pub csr: Csr,
    pub senders: Vec<NodeId>,
    pub receivers: Vec<NodeId>,
    plans: Mutex<HashMap<(usize, Option<u64>), Arc<PlanData>>>,
}

impl EngineTopo {
    pub fn build(graph: &Graph) -> Self {
        let csr = Csr::new(graph);
        let senders = (0..csr.directed_len())
            .map(|d| Csr::sender(graph, d))
            .collect();
        let receivers = (0..csr.directed_len())
            .map(|d| Csr::receiver(graph, d))
            .collect();
        EngineTopo {
            csr,
            senders,
            receivers,
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// The shard plan for `(threads, stress)`, built via `build` on a
    /// miss. Returns `(plan, built)` — `built` feeds the engine's
    /// `plan_builds` diagnostic counter. A poisoned lock degrades to an
    /// uncached build.
    pub fn plan_for(
        &self,
        threads: usize,
        stress: Option<u64>,
        build: impl FnOnce() -> PlanData,
    ) -> (Arc<PlanData>, bool) {
        let Ok(mut map) = self.plans.lock() else {
            return (Arc::new(build()), true);
        };
        if let Some(p) = map.get(&(threads, stress)) {
            return (p.clone(), false);
        }
        if map.len() >= PLAN_CAP {
            map.clear();
        }
        let p = Arc::new(build());
        map.insert((threads, stress), p.clone());
        (p, true)
    }
}
