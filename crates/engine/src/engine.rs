//! The parallel deterministic engine.
//!
//! # Execution model
//!
//! Nodes are split into `threads` contiguous shards. Every round runs
//! two phases separated by barriers:
//!
//! * **deliver** — each worker pops up to `cap` messages from every
//!   incoming directed-edge queue of its *own* nodes into a
//!   worker-local inbox arena. A directed edge has exactly one
//!   receiver, so queue access is disjoint across workers.
//! * **compute** — each worker runs `Program::round` for its own nodes
//!   and pushes staged sends onto the outgoing directed-edge queues of
//!   its nodes. A directed edge has exactly one sender, so access is
//!   again disjoint.
//!
//! # Why this is deterministic
//!
//! The sequential simulator's only ordering guarantees are (a) per
//! directed edge FIFO and (b) inboxes ordered by directed edge id.
//! Both survive parallelization for free: every directed-edge queue has
//! a *unique* sender (so FIFO order equals that sender's staged order,
//! regardless of node interleaving), and each worker assembles its
//! nodes' inboxes by walking incoming edges in ascending directed id
//! order — the sequential delivery order. No message ever races: the
//! deliver and compute phases are barrier-separated, and within a phase
//! every queue is touched by exactly one worker. The result is
//! bit-identical outputs and [`RunStats`] versus
//! [`congest::Simulator`], verified by property tests.

use crate::csr::Csr;
use crate::report::EngineReport;
use congest::{Ctx, Executor, Message, Program, RunStats, Word, WORDS_PER_MESSAGE};
use lightgraph::{Graph, NodeId};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A message stored inline in an edge queue (no per-message heap
/// allocation while queued; the `Message` is materialized at delivery).
#[derive(Debug, Clone, Copy)]
struct InlineMsg {
    len: u8,
    words: [Word; WORDS_PER_MESSAGE],
}

impl InlineMsg {
    fn pack(msg: &Message) -> Self {
        let src = msg.as_words();
        let mut words = [0; WORDS_PER_MESSAGE];
        words[..src.len()].copy_from_slice(src);
        InlineMsg {
            len: src.len() as u8,
            words,
        }
    }

    fn unpack(&self) -> Message {
        Message::words(&self.words[..self.len as usize])
    }
}

/// A slice shared across workers with externally-guaranteed disjoint
/// index access.
///
/// # Safety invariant
/// Callers of [`SharedSlice::get_mut`] must guarantee that no index is
/// accessed by two workers within the same barrier-delimited phase.
/// The engine upholds this structurally: program and inbox indices are
/// sharded by node, and directed-edge queues are owned by their unique
/// receiver during deliver phases and their unique sender during
/// compute phases.
struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}
unsafe impl<'a, T: Send> Sync for SharedSlice<'a, T> {}

impl<'a, T> SharedSlice<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// `i < len`, and no concurrent access to index `i` (see the type
    /// docs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Contiguous node ranges, one per worker.
fn shard_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    (0..threads)
        .map(|t| (n * t / threads, n * (t + 1) / threads))
        .collect()
}

/// Worker-wide control decision taken (identically) by every worker at
/// the top of each round.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Decision {
    Continue,
    Quiescent,
    Livelocked,
    Aborted,
}

/// The parallel deterministic CONGEST engine.
///
/// Drop-in [`Executor`] replacement for [`congest::Simulator`]: same
/// [`Program`] interface, bit-identical outputs and [`RunStats`], but
/// rounds execute over node shards on worker threads and messages move
/// through CSR-indexed flat queue arrays instead of per-edge hash-map
/// lookups. See the module docs for the phase/barrier structure.
pub struct Engine<'g> {
    graph: &'g Graph,
    csr: Csr,
    senders: Vec<NodeId>,
    cap: usize,
    max_rounds: u64,
    threads: usize,
    record_metrics: bool,
    total: RunStats,
    last_report: Option<EngineReport>,
}

impl<'g> std::fmt::Debug for Engine<'g> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("cap", &self.cap)
            .field("threads", &self.threads)
            .field("total", &self.total)
            .finish()
    }
}

impl<'g> Engine<'g> {
    /// Creates an engine over `graph` with bandwidth cap 1 and as many
    /// worker threads as the machine reports.
    pub fn new(graph: &'g Graph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Engine::with_threads(graph, threads)
    }

    /// Creates an engine with an explicit worker-thread count
    /// (`threads >= 1`; clamped to the node count at run time).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(graph: &'g Graph, threads: usize) -> Self {
        assert!(threads >= 1, "engine needs at least one worker thread");
        let csr = Csr::new(graph);
        let senders = (0..csr.directed_len())
            .map(|d| Csr::sender(graph, d))
            .collect();
        Engine {
            graph,
            csr,
            senders,
            cap: 1,
            max_rounds: 50_000_000,
            threads,
            record_metrics: false,
            total: RunStats::default(),
            last_report: None,
        }
    }

    /// Worker threads used per run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables or disables congestion instrumentation (per-round
    /// message histogram, queue depths, hot edges). Off by default:
    /// recording costs an `O(m)` scan per round.
    pub fn set_record_metrics(&mut self, record: bool) {
        self.record_metrics = record;
    }

    /// Instrumentation from the most recent run, if
    /// [`Engine::set_record_metrics`] was enabled.
    pub fn last_report(&self) -> Option<&EngineReport> {
        self.last_report.as_ref()
    }

    /// The underlying graph (with the graph's own lifetime).
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Runs one program per node until global quiescence. Same contract
    /// and same observable behavior as [`congest::Simulator::run`]; see
    /// the module docs.
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard, or if
    /// a program callback panics (the panic is forwarded).
    pub fn run<P, F>(&mut self, mut make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = self.graph.n();
        let graph = self.graph;
        let csr = &self.csr;
        let senders = &self.senders;
        let cap = self.cap;
        let max_rounds = self.max_rounds;
        let record = self.record_metrics;
        let threads = self.threads.clamp(1, n.max(1));
        let shards = shard_bounds(n, threads);

        // `make` runs on the calling thread, in node order (contract).
        let mut programs: Vec<P> = (0..n).map(|v| make(v, graph)).collect();
        let mut queues: Vec<VecDeque<InlineMsg>> =
            (0..csr.directed_len()).map(|_| VecDeque::new()).collect();
        let mut per_directed: Vec<u64> = if record {
            vec![0; csr.directed_len()]
        } else {
            Vec::new()
        };

        let mut stats = RunStats::default();
        let livelocked;
        let histograms;

        {
            let programs_sh = SharedSlice::new(&mut programs);
            let queues_sh = SharedSlice::new(&mut queues);
            let per_directed_sh = SharedSlice::new(&mut per_directed);
            let pending = AtomicI64::new(0);
            let any_active = AtomicBool::new(false);
            let delivered_cum = AtomicU64::new(0);
            let round_max_depth = AtomicU64::new(0);
            let abort = AtomicBool::new(false);
            let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
            let barrier = Barrier::new(threads);

            // One worker body, run by `threads` threads in lockstep;
            // returns (rounds, messages, histograms) — meaningful for
            // worker 0 only.
            let worker = |wid: usize| -> (u64, u64, Option<(Vec<u64>, Vec<u64>)>) {
                let (lo, hi) = shards[wid];
                let mut staged: Vec<(NodeId, Message)> = Vec::new();
                let mut arena: Vec<(NodeId, Message)> = Vec::new();
                let mut ranges: Vec<(usize, usize)> = vec![(0, 0); hi - lo];
                let mut round: u64 = 0;
                let mut messages: u64 = 0;
                let mut delivered_seen: u64 = 0;
                let mut hist_msgs: Vec<u64> = Vec::new();
                let mut hist_depth: Vec<u64> = Vec::new();

                let guard = |f: &mut dyn FnMut()| {
                    if abort.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                        *panic_payload.lock().unwrap() = Some(payload);
                        abort.store(true, Ordering::SeqCst);
                    }
                };

                // ---- init phase (round 0): one send burst per node.
                guard(&mut || {
                    let mut delta: i64 = 0;
                    for v in lo..hi {
                        let p = unsafe { programs_sh.get_mut(v) };
                        let mut ctx = Ctx::new(v, n, 0, graph.neighbors(v), &mut staged);
                        p.init(&mut ctx);
                        for (to, msg) in staged.drain(..) {
                            let d = csr.out_id(v, to);
                            unsafe { queues_sh.get_mut(d) }.push_back(InlineMsg::pack(&msg));
                            delta += 1;
                        }
                    }
                    pending.fetch_add(delta, Ordering::SeqCst);
                });
                barrier.wait();

                loop {
                    // ---- phase A: quiescence contribution (guarded:
                    // a panicking is_quiescent must abort, not strand
                    // the other workers at the barrier).
                    guard(&mut || {
                        let quiescent =
                            (lo..hi).all(|v| unsafe { programs_sh.get_mut(v) }.is_quiescent());
                        if !quiescent {
                            any_active.store(true, Ordering::SeqCst);
                        }
                    });
                    barrier.wait(); // #1: all contributions visible

                    // ---- decide (identically on every worker).
                    let decision = if abort.load(Ordering::SeqCst) {
                        Decision::Aborted
                    } else if pending.load(Ordering::SeqCst) == 0
                        && !any_active.load(Ordering::SeqCst)
                    {
                        Decision::Quiescent
                    } else if round + 1 > max_rounds {
                        Decision::Livelocked
                    } else {
                        Decision::Continue
                    };
                    // Worker 0 accounts the *previous* round's deliveries
                    // (all adds completed before barrier #1).
                    if wid == 0 {
                        let cum = delivered_cum.load(Ordering::SeqCst);
                        let this_round = cum - delivered_seen;
                        delivered_seen = cum;
                        messages = cum;
                        if record && round > 0 {
                            hist_msgs.push(this_round);
                            hist_depth.push(round_max_depth.load(Ordering::SeqCst));
                        }
                    }
                    barrier.wait(); // #2: decision epoch closed

                    match decision {
                        Decision::Continue => {}
                        _ => {
                            return (
                                round,
                                messages,
                                (wid == 0 && record).then_some((hist_msgs, hist_depth)),
                            );
                        }
                    }
                    round += 1;
                    if wid == 0 {
                        // Next phase-A writes happen after barrier #4,
                        // next depth writes after barrier #3: both
                        // resets are race-free here.
                        any_active.store(false, Ordering::SeqCst);
                        round_max_depth.store(0, Ordering::SeqCst);
                    }

                    // ---- deliver: pop own nodes' incoming queues.
                    guard(&mut || {
                        arena.clear();
                        let mut delta: i64 = 0;
                        for v in lo..hi {
                            let start = arena.len();
                            for &d in csr.incoming(v) {
                                let q = unsafe { queues_sh.get_mut(d) };
                                let mut popped = 0u64;
                                while popped < cap as u64 {
                                    match q.pop_front() {
                                        Some(im) => {
                                            arena.push((senders[d], im.unpack()));
                                            popped += 1;
                                        }
                                        None => break,
                                    }
                                }
                                delta -= popped as i64;
                                if record && popped > 0 {
                                    *unsafe { per_directed_sh.get_mut(d) } += popped;
                                }
                            }
                            ranges[v - lo] = (start, arena.len());
                        }
                        pending.fetch_add(delta, Ordering::SeqCst);
                        delivered_cum.fetch_add((-delta) as u64, Ordering::SeqCst);
                    });
                    barrier.wait(); // #3: all inboxes assembled

                    // ---- compute: run own programs, push own sends.
                    guard(&mut || {
                        let mut delta: i64 = 0;
                        for v in lo..hi {
                            let (start, end) = ranges[v - lo];
                            let p = unsafe { programs_sh.get_mut(v) };
                            let mut ctx = Ctx::new(v, n, round, graph.neighbors(v), &mut staged);
                            p.round(&mut ctx, &arena[start..end]);
                            for (to, msg) in staged.drain(..) {
                                let d = csr.out_id(v, to);
                                unsafe { queues_sh.get_mut(d) }.push_back(InlineMsg::pack(&msg));
                                delta += 1;
                            }
                        }
                        pending.fetch_add(delta, Ordering::SeqCst);
                        if record {
                            let mut depth = 0u64;
                            for v in lo..hi {
                                for &(_, d) in csr.out(v) {
                                    depth = depth.max(unsafe { queues_sh.get_mut(d) }.len() as u64);
                                }
                            }
                            round_max_depth.fetch_max(depth, Ordering::SeqCst);
                        }
                    });
                    barrier.wait(); // #4: all sends queued
                }
            };

            let (rounds, messages, hists) = std::thread::scope(|s| {
                for wid in 1..threads {
                    let w = &worker;
                    s.spawn(move || w(wid));
                }
                worker(0)
            });

            if let Some(payload) = panic_payload.lock().unwrap().take() {
                resume_unwind(payload);
            }
            stats.rounds = rounds;
            stats.messages = messages;
            livelocked = rounds >= max_rounds
                && (pending.load(Ordering::SeqCst) != 0 || any_active.load(Ordering::SeqCst));
            histograms = hists;
        }

        if livelocked {
            panic!("CONGEST run exceeded {max_rounds} rounds — livelocked program?");
        }

        if record {
            let (messages_per_round, max_queue_depth_per_round) = histograms.unwrap_or_default();
            self.last_report = Some(EngineReport {
                rounds: stats.rounds,
                total_messages: stats.messages,
                messages_per_round,
                max_queue_depth_per_round,
                hot_edges: EngineReport::rank_hot_edges(&per_directed),
                threads,
            });
        }

        self.total.absorb(stats);
        (programs.into_iter().map(Program::finish).collect(), stats)
    }
}

impl<'g> Executor for Engine<'g> {
    type Sub<'h> = Engine<'h>;

    fn sub<'h>(&self, graph: &'h Graph) -> Engine<'h> {
        let mut sub = Engine::with_threads(graph, self.threads);
        sub.cap = self.cap;
        sub.max_rounds = self.max_rounds;
        sub.record_metrics = self.record_metrics;
        sub
    }

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn cap(&self) -> usize {
        self.cap
    }

    fn set_cap(&mut self, cap: usize) {
        assert!(cap >= 1, "bandwidth cap must be at least 1");
        self.cap = cap;
    }

    fn set_max_rounds(&mut self, max_rounds: u64) {
        self.max_rounds = max_rounds;
    }

    fn total(&self) -> RunStats {
        self.total
    }

    fn reset_total(&mut self) {
        self.total = RunStats::default();
    }

    fn charge(&mut self, stats: RunStats) {
        self.total.absorb(stats);
    }

    fn run<P, F>(&mut self, make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        Engine::run(self, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::Simulator;
    use lightgraph::generators;

    struct Flood {
        have: bool,
    }

    impl Program for Flood {
        type Output = (bool, u64);
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                self.have = true;
                ctx.send_all(Message::words(&[7]));
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            if !self.have && !inbox.is_empty() {
                self.have = true;
                ctx.send_all(Message::words(&[7]));
            }
        }
        fn finish(self) -> (bool, u64) {
            (self.have, 0)
        }
    }

    #[test]
    fn matches_simulator_on_flood() {
        for seed in 0..5 {
            let g = generators::erdos_renyi(64, 0.08, 10, seed);
            let mut sim = Simulator::new(&g);
            let (a, sa) = sim.run(|_, _| Flood { have: false });
            for threads in [1, 2, 5] {
                let mut eng = Engine::with_threads(&g, threads);
                let (b, sb) = eng.run(|_, _| Flood { have: false });
                assert_eq!(a, b, "outputs differ (threads={threads}, seed={seed})");
                assert_eq!(sa, sb, "stats differ (threads={threads}, seed={seed})");
            }
        }
    }

    struct Burst {
        k: usize,
        received: usize,
    }

    impl Program for Burst {
        type Output = usize;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[i as u64]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            self.received += inbox.len();
        }
        fn finish(self) -> usize {
            self.received
        }
    }

    #[test]
    fn bandwidth_cap_pipelines_like_simulator() {
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        let (out, stats) = eng.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats.rounds, 10);
        assert_eq!(out[1], 10);

        let mut eng5 = Engine::with_threads(&g, 2);
        Executor::set_cap(&mut eng5, 5);
        let (_, s5) = eng5.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(s5.rounds, 2);
    }

    #[test]
    fn per_edge_fifo_order_is_preserved() {
        // node 0 sends 0..6 to node 1; they must arrive in order.
        struct Seq {
            k: u64,
            got: Vec<u64>,
        }
        impl Program for Seq {
            type Output = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.node() == 0 {
                    for i in 0..self.k {
                        ctx.send(1, Message::words(&[i]));
                    }
                }
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                for (_, m) in inbox {
                    self.got.push(m.word(0));
                }
            }
            fn finish(self) -> Vec<u64> {
                self.got
            }
        }
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        let (out, _) = eng.run(|_, _| Seq {
            k: 6,
            got: Vec::new(),
        });
        assert_eq!(out[1], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn livelock_guard_fires() {
        struct Chatter;
        impl Program for Chatter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[0]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                let senders: Vec<NodeId> = inbox.iter().map(|&(from, _)| from).collect();
                for from in senders {
                    ctx.send(from, Message::words(&[0]));
                }
            }
            fn finish(self) {}
        }
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        Executor::set_max_rounds(&mut eng, 100);
        eng.run(|_, _| Chatter);
    }

    #[test]
    fn program_panics_are_forwarded_not_deadlocked() {
        struct Bomb;
        impl Program for Bomb {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[1]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                if ctx.node() == 3 {
                    panic!("boom at node 3");
                }
            }
            fn finish(self) {}
        }
        let g = generators::cycle(8, 1);
        let mut eng = Engine::with_threads(&g, 3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| eng.run(|_, _| Bomb)))
            .expect_err("must propagate");
        let text = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(text.contains("boom"), "unexpected payload {text:?}");
    }

    #[test]
    fn panicking_is_quiescent_is_forwarded_not_deadlocked() {
        struct QuietBomb {
            armed: bool,
        }
        impl Program for QuietBomb {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[1]));
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                self.armed = true;
            }
            fn is_quiescent(&self) -> bool {
                assert!(!self.armed, "quiescence bomb");
                true
            }
            fn finish(self) {}
        }
        let g = generators::cycle(8, 1);
        let mut eng = Engine::with_threads(&g, 3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            eng.run(|_, _| QuietBomb { armed: false })
        }))
        .expect_err("must propagate");
        let text = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            text.contains("quiescence bomb"),
            "unexpected payload {text:?}"
        );
    }

    #[test]
    fn report_collects_histograms_and_hot_edges() {
        let g = lightgraph::Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        eng.set_record_metrics(true);
        let (_, stats) = eng.run(|_, _| Burst { k: 4, received: 0 });
        let report = eng.last_report().expect("recording enabled");
        assert_eq!(report.rounds, stats.rounds);
        assert_eq!(report.total_messages, stats.messages);
        assert_eq!(
            report.messages_per_round.iter().sum::<u64>(),
            stats.messages
        );
        assert_eq!(report.hot_edges[0].0, 0, "edge 0 carries the burst");
        assert_eq!(
            report.peak_queue_depth(),
            3,
            "k-1 messages remain after round 1"
        );
        assert_eq!(report.threads, 2);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g0 = lightgraph::Graph::new(0);
        let mut e0 = Engine::new(&g0);
        let (out, stats) = e0.run(|_, _| Flood { have: false });
        assert!(out.is_empty());
        assert_eq!(stats, RunStats::default());

        let g1 = lightgraph::Graph::new(1);
        let mut e1 = Engine::new(&g1);
        let (out, stats) = e1.run(|_, _| Flood { have: false });
        assert_eq!(out.len(), 1);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn totals_accumulate_and_sub_inherits() {
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 1);
        eng.run(|_, _| Burst { k: 3, received: 0 });
        eng.run(|_, _| Burst { k: 4, received: 0 });
        assert_eq!(Executor::total(&eng).rounds, 7);
        Executor::set_cap(&mut eng, 3);
        let h = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let sub = Executor::sub(&eng, &h);
        assert_eq!(Executor::cap(&sub), 3);
        assert_eq!(Executor::total(&sub), RunStats::default());
    }
}
