//! The parallel deterministic engine.
//!
//! # Execution model
//!
//! Nodes are split into `threads` contiguous shards, balanced by
//! degree (prefix-sum cuts of `1 + deg(v)`), so per-shard deliver and
//! compute work is even on skewed graphs. Every round runs two phases
//! separated by barriers:
//!
//! * **deliver** — each worker pops up to `cap` messages from every
//!   *charged* incoming directed-edge queue of its *own* nodes into a
//!   worker-local inbox arena. A directed edge has exactly one
//!   receiver, so queue access is disjoint across workers.
//! * **compute** — each worker runs `Program::round` for its own
//!   *active* nodes and pushes staged sends onto the outgoing
//!   directed-edge queues of its nodes. A directed edge has exactly
//!   one sender, so access is again disjoint.
//!
//! # Frontier scheduling
//!
//! The engine implements the activation contract of `congest::exec`
//! (clause 5): per-round cost scales with the frontier, not with `n`
//! or `m`.
//!
//! * **Touched-edge queues.** `charged[d]` tracks whether directed
//!   queue `d` is non-empty. A sender that charges an idle queue
//!   appends `d` to a `touched[sender_worker][receiver_worker]` bucket;
//!   during deliver each worker drains the buckets addressed to it,
//!   merges them with its still-charged carryover, and visits only
//!   those queues — in `(receiver, directed id)` order, which is the
//!   simulator's inbox order per node. Bucket rows are written by one
//!   sender worker during compute and bucket columns drained by one
//!   receiver worker during deliver, so access stays disjoint.
//! * **Active lists.** Each worker runs `Program::round` only for the
//!   merge of (a) its nodes that received messages this round and (b)
//!   its non-quiescent carryover from the previous round, re-querying
//!   `is_quiescent` only for those nodes. Quiescence detection folds
//!   into this bookkeeping: a shared non-quiescent counter replaces the
//!   old full `is_quiescent` sweep, and the round loop stops when the
//!   pending-message and non-quiescent counters are both zero.
//!
//! # Why this is deterministic
//!
//! The sequential simulator's only ordering guarantees are (a) per
//! directed edge FIFO and (b) inboxes ordered by directed edge id.
//! Both survive parallelization for free: every directed-edge queue has
//! a *unique* sender (so FIFO order equals that sender's staged order,
//! regardless of node interleaving), and each worker assembles its
//! nodes' inboxes by walking its charged incoming edges in ascending
//! directed id order — the sequential delivery order. The active sets
//! are themselves deterministic (delivered edges + quiescence reports),
//! so frontier scheduling changes which nodes are *ticked*, never what
//! they observe. No message ever races: the deliver and compute phases
//! are barrier-separated, and within a phase every queue is touched by
//! exactly one worker. The result is bit-identical outputs and
//! [`RunStats`] versus [`congest::Simulator`], verified by property
//! tests.

use crate::csr::{Csr, DirectedId};
use crate::report::EngineReport;
use congest::obs::{PhaseWall, RoundTrace};
use congest::{
    CombQueue, Ctx, Executor, FrontierStats, Message, NodeStats, Program, RunStats,
    SharedTraceSink, Word, WORDS_PER_MESSAGE,
};
use lightgraph::{Graph, NodeId};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// A message stored inline in an edge queue (no per-message heap
/// allocation while queued; the `Message` is materialized at delivery).
#[derive(Debug, Clone, Copy)]
struct InlineMsg {
    len: u8,
    words: [Word; WORDS_PER_MESSAGE],
}

impl InlineMsg {
    fn pack(msg: &Message) -> Self {
        let src = msg.as_words();
        let mut words = [0; WORDS_PER_MESSAGE];
        words[..src.len()].copy_from_slice(src);
        InlineMsg {
            len: src.len() as u8,
            words,
        }
    }

    fn unpack(&self) -> Message {
        Message::words(&self.words[..self.len as usize])
    }
}

/// A slice shared across workers with externally-guaranteed disjoint
/// index access.
///
/// # Safety invariant
/// Callers of [`SharedSlice::get_mut`] must guarantee that no index is
/// accessed by two workers within the same barrier-delimited phase.
/// The engine upholds this structurally: program and inbox indices are
/// sharded by node, and directed-edge queues are owned by their unique
/// receiver during deliver phases and their unique sender during
/// compute phases.
struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}
unsafe impl<'a, T: Send> Sync for SharedSlice<'a, T> {}

impl<'a, T> SharedSlice<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// `i < len`, and no concurrent access to index `i` (see the type
    /// docs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Contiguous node ranges, one per worker, balanced by degree: shard
/// boundaries are prefix-sum cuts of `1 + deg(v)` (the per-node
/// deliver+compute cost proxy) instead of equal node counts, so a hub
/// node does not overload its shard. Deterministic in
/// `(graph, threads)`; the `congest::exec` contract makes outputs
/// independent of the boundaries (and hence of the thread count)
/// entirely, so balancing is free to follow the workload.
fn shard_bounds(graph: &Graph, threads: usize) -> Vec<(usize, usize)> {
    let n = graph.n();
    let total: u64 = n as u64 + 2 * graph.m() as u64;
    let mut bounds = Vec::with_capacity(threads);
    let mut acc: u64 = 0;
    let mut v = 0usize;
    let mut lo = 0usize;
    for t in 1..=threads {
        let target = total * t as u64 / threads as u64;
        while v < n && acc < target {
            acc += 1 + graph.degree(v) as u64;
            v += 1;
        }
        bounds.push((lo, v));
        lo = v;
    }
    bounds
}

/// Per-round record-mode histograms collected by worker 0:
/// (messages, max queue depth, active nodes).
type Histograms = (Vec<u64>, Vec<u64>, Vec<u64>);

/// Worker-wide control decision taken (identically) by every worker at
/// the top of each round.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Decision {
    Continue,
    Quiescent,
    Livelocked,
    Aborted,
}

/// The parallel deterministic CONGEST engine.
///
/// Drop-in [`Executor`] replacement for [`congest::Simulator`]: same
/// [`Program`] interface, bit-identical outputs and [`RunStats`], but
/// rounds execute over node shards on worker threads and messages move
/// through CSR-indexed flat queue arrays instead of per-edge hash-map
/// lookups. See the module docs for the phase/barrier structure.
pub struct Engine<'g> {
    graph: &'g Graph,
    csr: Csr,
    senders: Vec<NodeId>,
    receivers: Vec<NodeId>,
    cap: usize,
    max_rounds: u64,
    threads: usize,
    record_metrics: bool,
    total: RunStats,
    frontier: FrontierStats,
    last_report: Option<EngineReport>,
    node_stats: Option<NodeStats>,
    trace: Option<SharedTraceSink>,
    wall_total: PhaseWall,
}

impl<'g> std::fmt::Debug for Engine<'g> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("cap", &self.cap)
            .field("threads", &self.threads)
            .field("total", &self.total)
            .finish()
    }
}

impl<'g> Engine<'g> {
    /// Creates an engine over `graph` with bandwidth cap 1 and as many
    /// worker threads as the machine reports.
    pub fn new(graph: &'g Graph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Engine::with_threads(graph, threads)
    }

    /// Creates an engine with an explicit worker-thread count
    /// (`threads >= 1`; clamped to the node count at run time).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(graph: &'g Graph, threads: usize) -> Self {
        assert!(threads >= 1, "engine needs at least one worker thread");
        let csr = Csr::new(graph);
        let senders = (0..csr.directed_len())
            .map(|d| Csr::sender(graph, d))
            .collect();
        let receivers = (0..csr.directed_len())
            .map(|d| Csr::receiver(graph, d))
            .collect();
        Engine {
            graph,
            csr,
            senders,
            receivers,
            cap: 1,
            max_rounds: 50_000_000,
            threads,
            record_metrics: false,
            total: RunStats::default(),
            frontier: FrontierStats::default(),
            last_report: None,
            node_stats: None,
            trace: None,
            wall_total: PhaseWall::default(),
        }
    }

    /// Worker threads used per run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables or disables congestion instrumentation (per-round
    /// message histogram, queue depths, hot edges). Off by default:
    /// recording costs an `O(m)` scan per round.
    pub fn set_record_metrics(&mut self, record: bool) {
        self.record_metrics = record;
    }

    /// Instrumentation from the most recent run, if
    /// [`Engine::set_record_metrics`] was enabled.
    pub fn last_report(&self) -> Option<&EngineReport> {
        self.last_report.as_ref()
    }

    /// Cumulative per-phase wall time (sampled by worker 0) over every
    /// timed `run` driven directly on this engine (sub-executors
    /// accumulate their own). Zero unless metrics recording or tracing
    /// was enabled.
    pub fn wall_total(&self) -> PhaseWall {
        self.wall_total
    }

    /// Enables or disables per-node accounting (see
    /// [`Executor::set_record_node_stats`]). Enabling (re)allocates
    /// zeroed counters.
    pub fn set_record_node_stats(&mut self, record: bool) {
        self.node_stats = record.then(|| NodeStats::new(self.graph.n()));
    }

    /// Attaches (or detaches, with `None`) a profiling trace sink; one
    /// [`RoundTrace`] record is pushed per executed round (by worker 0,
    /// at the following round's decision point). Inherited by
    /// sub-executors; observer-neutral (contract clause 8).
    pub fn set_trace(&mut self, sink: Option<SharedTraceSink>) {
        self.trace = sink;
    }

    /// The underlying graph (with the graph's own lifetime).
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Runs one program per node until global quiescence. Same contract
    /// and same observable behavior as [`congest::Simulator::run`]; see
    /// the module docs.
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard, or if
    /// a program callback panics (the panic is forwarded).
    pub fn run<P, F>(&mut self, mut make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = self.graph.n();
        let graph = self.graph;
        let csr = &self.csr;
        let senders = &self.senders;
        let receivers = &self.receivers;
        let cap = self.cap;
        let max_rounds = self.max_rounds;
        let record = self.record_metrics;
        // Per-node counters move out of `self` for the run so the three
        // counter vectors can be shared (disjointly) across workers:
        // `sent`/`invocations` are indexed by owned nodes, `delivered`
        // by owned receivers — the same sharding as programs/queues.
        let track_nodes = self.node_stats.is_some();
        let mut node_stats = self.node_stats.take().unwrap_or_default();
        let trace_run = self.trace.as_ref().map(|s| {
            (
                s.clone(),
                s.lock().expect("trace sink").begin_run("parallel"),
            )
        });
        let timed = record || trace_run.is_some();
        let threads = self.threads.clamp(1, n.max(1));
        let shards = shard_bounds(graph, threads);
        // Worker shard owning each node, for routing touched edges to
        // the receiver's worker.
        let shard_of: Vec<u32> = {
            let mut so = vec![0u32; n];
            for (wid, &(lo, hi)) in shards.iter().enumerate() {
                so[lo..hi].iter_mut().for_each(|s| *s = wid as u32);
            }
            so
        };

        // `make` runs on the calling thread, in node order (contract).
        let mut programs: Vec<P> = (0..n).map(|v| make(v, graph)).collect();
        // Combining queues (contract clause 7): staged messages whose
        // key matches a co-queued message merge in place. Staging goes
        // through the shared `congest::CombQueue`, so the merge
        // semantics are the simulator's by construction.
        let mut queues: Vec<CombQueue<InlineMsg>> =
            (0..csr.directed_len()).map(|_| CombQueue::new()).collect();
        // `charged[d]` ⇔ queue `d` is non-empty ⇔ `d` sits in exactly
        // one receiver-side carryover list or touched bucket. Written by
        // the unique sender during compute/init, cleared by the unique
        // receiver during deliver — phases are barrier-separated.
        let mut charged: Vec<bool> = vec![false; csr.directed_len()];
        // `touched[s * threads + r]`: edges freshly charged by sender
        // worker `s` whose receiver lives in shard `r`. Rows written
        // during compute, columns drained during deliver; both disjoint.
        let mut touched: Vec<Vec<DirectedId>> = vec![Vec::new(); threads * threads];
        let mut per_directed: Vec<u64> = if record {
            vec![0; csr.directed_len()]
        } else {
            Vec::new()
        };
        // Record-mode only: membership flags for each sender's backlog
        // list of possibly-non-empty own out-queues, so the per-round
        // depth histogram scans the backlog instead of all `2m` queues.
        // Written exclusively by the unique sender worker (register on
        // push, purge on scan — both in its compute phase).
        let mut in_backlog: Vec<bool> = if record {
            vec![false; csr.directed_len()]
        } else {
            Vec::new()
        };

        let mut stats = RunStats::default();
        let run_frontier;
        let livelocked;
        let histograms;
        let delivered_total;
        let run_wall;

        {
            let programs_sh = SharedSlice::new(&mut programs);
            let queues_sh = SharedSlice::new(&mut queues);
            let charged_sh = SharedSlice::new(&mut charged);
            let touched_sh = SharedSlice::new(&mut touched);
            let per_directed_sh = SharedSlice::new(&mut per_directed);
            let in_backlog_sh = SharedSlice::new(&mut in_backlog);
            let ns_sent_sh = SharedSlice::new(&mut node_stats.sent);
            let ns_delivered_sh = SharedSlice::new(&mut node_stats.delivered);
            let ns_invocations_sh = SharedSlice::new(&mut node_stats.invocations);
            let pending = AtomicI64::new(0);
            // Count of non-quiescent programs; replaces the old
            // every-node `is_quiescent` sweep. Updated incrementally by
            // each worker from its carryover-list delta after compute.
            let nonquiescent = AtomicI64::new(0);
            // Logical sends and clause-7 merges, batched per phase like
            // `pending`; at quiescence staged = delivered + combined.
            let staged_cum = AtomicU64::new(0);
            let combined_cum = AtomicU64::new(0);
            let delivered_cum = AtomicU64::new(0);
            let active_cum = AtomicU64::new(0);
            let round_max_depth = AtomicU64::new(0);
            let abort = AtomicBool::new(false);
            let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
            let barrier = Barrier::new(threads);

            // One worker body, run by `threads` threads in lockstep;
            // returns (rounds, frontier, histograms, wall) — meaningful
            // for worker 0 only (message totals live in the shared
            // atomics).
            let worker = |wid: usize| -> (u64, FrontierStats, Option<Histograms>, PhaseWall) {
                let (lo, hi) = shards[wid];
                // Phase wall-clock is sampled by worker 0 only: its
                // deliver/compute guards plus its barrier waits (which
                // absorb the other workers' imbalance).
                let timing = timed && wid == 0;
                let mut wall = PhaseWall::default();
                let mut r_deliver_ns: u64 = 0;
                let mut r_compute_ns: u64 = 0;
                let mut r_barrier_ns: u64 = 0;
                let mut staged: Vec<(NodeId, Message)> = Vec::new();
                let mut arena: Vec<(NodeId, Message)> = Vec::new();
                // Own nodes that received messages this round, with
                // their arena inbox ranges (ascending node order).
                let mut inbox_ranges: Vec<(NodeId, (usize, usize))> = Vec::new();
                // Own edges still charged after last deliver, sorted by
                // (receiver, id); own nodes non-quiescent after their
                // last activation, ascending.
                let mut carry_edges: Vec<DirectedId> = Vec::new();
                let mut carry_nodes: Vec<NodeId> = Vec::new();
                let mut next_edges: Vec<DirectedId> = Vec::new();
                let mut next_nodes: Vec<NodeId> = Vec::new();
                // Record-mode: own out-queues that may be non-empty.
                let mut out_backlog: Vec<DirectedId> = Vec::new();
                let mut round: u64 = 0;
                let mut delivered_seen: u64 = 0;
                let mut active_seen: u64 = 0;
                let mut peak_active: u64 = 0;
                let mut hist_msgs: Vec<u64> = Vec::new();
                let mut hist_depth: Vec<u64> = Vec::new();
                let mut hist_active: Vec<u64> = Vec::new();

                let guard = |f: &mut dyn FnMut()| {
                    if abort.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                        *panic_payload.lock().unwrap() = Some(payload);
                        abort.store(true, Ordering::SeqCst);
                    }
                };

                // Clause-7 staging, shared by the init and compute
                // phases: stage one of `v`'s sends on its outgoing
                // queue, merging per the sender's combiner; a merged
                // message was absorbed into a co-queued one (the queue
                // was non-empty, so the edge is already charged and
                // backlogged), an appended one updates the
                // charge/touched and record-mode backlog bookkeeping.
                // Returns whether the message merged.
                let stage_one = |p: &P,
                                 v: NodeId,
                                 to: NodeId,
                                 msg: &Message,
                                 backlog: &mut Vec<DirectedId>| {
                    let d = csr.out_id(v, to);
                    let key = p.combine_key(msg);
                    let merged = unsafe { queues_sh.get_mut(d) }.stage(
                        key,
                        InlineMsg::pack(msg),
                        |old, new| {
                            let m = p.combine(&old.unpack(), &new.unpack());
                            debug_assert_eq!(p.combine_key(&m), key, "combiner changed the key");
                            *old = InlineMsg::pack(&m);
                        },
                    );
                    if merged {
                        return true;
                    }
                    let ch = unsafe { charged_sh.get_mut(d) };
                    if !*ch {
                        *ch = true;
                        let r = shard_of[to] as usize;
                        unsafe { touched_sh.get_mut(wid * threads + r) }.push(d);
                    }
                    if record {
                        let ib = unsafe { in_backlog_sh.get_mut(d) };
                        if !*ib {
                            *ib = true;
                            backlog.push(d);
                        }
                    }
                    false
                };

                // ---- init phase (round 0): one send burst per node;
                // seed the non-quiescent carryover (the only full-shard
                // `is_quiescent` evaluation of the run).
                guard(&mut || {
                    let mut delta: i64 = 0;
                    let mut sent: u64 = 0;
                    let mut combined: u64 = 0;
                    for v in lo..hi {
                        let p = unsafe { programs_sh.get_mut(v) };
                        let mut ctx = Ctx::new(v, n, 0, graph.neighbors(v), &mut staged);
                        p.init(&mut ctx);
                        for (to, msg) in staged.drain(..) {
                            sent += 1;
                            if track_nodes {
                                *unsafe { ns_sent_sh.get_mut(v) } += 1;
                            }
                            if stage_one(p, v, to, &msg, &mut out_backlog) {
                                combined += 1;
                            } else {
                                delta += 1;
                            }
                        }
                        if !p.is_quiescent() {
                            carry_nodes.push(v);
                        }
                    }
                    pending.fetch_add(delta, Ordering::SeqCst);
                    staged_cum.fetch_add(sent, Ordering::SeqCst);
                    combined_cum.fetch_add(combined, Ordering::SeqCst);
                    nonquiescent.fetch_add(carry_nodes.len() as i64, Ordering::SeqCst);
                });
                let t_barrier = timing.then(Instant::now);
                barrier.wait(); // init burst + carryover seeds visible
                if let Some(t) = t_barrier {
                    r_barrier_ns += t.elapsed().as_nanos() as u64;
                }

                loop {
                    // ---- decide (identically on every worker): every
                    // counter update completed before the previous
                    // barrier.
                    let decision = if abort.load(Ordering::SeqCst) {
                        Decision::Aborted
                    } else if pending.load(Ordering::SeqCst) == 0
                        && nonquiescent.load(Ordering::SeqCst) == 0
                    {
                        Decision::Quiescent
                    } else if round + 1 > max_rounds {
                        Decision::Livelocked
                    } else {
                        Decision::Continue
                    };
                    // Worker 0 accounts the *previous* round's
                    // deliveries, activations, and phase wall time.
                    if wid == 0 {
                        let cum = delivered_cum.load(Ordering::SeqCst);
                        let this_round = cum - delivered_seen;
                        delivered_seen = cum;
                        let acum = active_cum.load(Ordering::SeqCst);
                        let round_active = acum - active_seen;
                        active_seen = acum;
                        peak_active = peak_active.max(round_active);
                        if record && round > 0 {
                            hist_msgs.push(this_round);
                            hist_depth.push(round_max_depth.load(Ordering::SeqCst));
                            hist_active.push(round_active);
                        }
                        if round > 0 {
                            if let Some((sink, run_id)) = trace_run.as_ref() {
                                sink.lock().expect("trace sink").push_round(
                                    *run_id,
                                    RoundTrace {
                                        round,
                                        delivered: this_round,
                                        active: round_active,
                                        deliver_ns: r_deliver_ns,
                                        compute_ns: r_compute_ns,
                                        barrier_ns: r_barrier_ns,
                                    },
                                );
                            }
                            wall.deliver_ns += r_deliver_ns;
                            wall.compute_ns += r_compute_ns;
                            wall.barrier_ns += r_barrier_ns;
                            r_deliver_ns = 0;
                            r_compute_ns = 0;
                            r_barrier_ns = 0;
                        }
                    }
                    let t_barrier = timing.then(Instant::now);
                    barrier.wait(); // #1: decision epoch closed
                    if let Some(t) = t_barrier {
                        r_barrier_ns += t.elapsed().as_nanos() as u64;
                    }

                    match decision {
                        Decision::Continue => {}
                        _ => {
                            let frontier = FrontierStats {
                                invocations: active_seen,
                                peak_active,
                                rounds: round,
                            };
                            return (
                                round,
                                frontier,
                                (wid == 0 && record).then_some((
                                    hist_msgs,
                                    hist_depth,
                                    hist_active,
                                )),
                                wall,
                            );
                        }
                    }
                    round += 1;
                    if wid == 0 {
                        // Depth writes happen in compute (after barrier
                        // #2), reads at the decision above: the reset
                        // is race-free here.
                        round_max_depth.store(0, Ordering::SeqCst);
                    }

                    // ---- deliver: pop own nodes' charged queues only.
                    let t_deliver = timing.then(Instant::now);
                    guard(&mut || {
                        arena.clear();
                        inbox_ranges.clear();
                        // Fresh charges addressed to this shard, from
                        // every sender worker's bucket row. Leftover
                        // charged edges stay sorted; re-sort only when
                        // buckets actually brought new ones.
                        let mut fresh = false;
                        for w in 0..threads {
                            let bucket = unsafe { touched_sh.get_mut(w * threads + wid) };
                            fresh |= !bucket.is_empty();
                            carry_edges.append(bucket);
                        }
                        if fresh {
                            // (receiver, id) order restores the
                            // simulator's per-node ascending-directed-id
                            // inbox order.
                            carry_edges.sort_unstable_by_key(|&d| (receivers[d], d));
                        }
                        let mut delta: i64 = 0;
                        next_edges.clear();
                        for &d in carry_edges.iter() {
                            let v = receivers[d];
                            match inbox_ranges.last_mut() {
                                Some(&mut (node, _)) if node == v => {}
                                _ => inbox_ranges.push((v, (arena.len(), arena.len()))),
                            }
                            let q = unsafe { queues_sh.get_mut(d) };
                            let mut popped = 0u64;
                            while popped < cap as u64 {
                                match q.pop() {
                                    Some((_, im)) => {
                                        arena.push((senders[d], im.unpack()));
                                        popped += 1;
                                    }
                                    None => break,
                                }
                            }
                            inbox_ranges.last_mut().expect("pushed above").1 .1 = arena.len();
                            delta -= popped as i64;
                            if record && popped > 0 {
                                *unsafe { per_directed_sh.get_mut(d) } += popped;
                            }
                            if track_nodes && popped > 0 {
                                *unsafe { ns_delivered_sh.get_mut(v) } += popped;
                            }
                            if q.is_empty() {
                                *unsafe { charged_sh.get_mut(d) } = false;
                            } else {
                                next_edges.push(d);
                            }
                        }
                        std::mem::swap(&mut carry_edges, &mut next_edges);
                        pending.fetch_add(delta, Ordering::SeqCst);
                        delivered_cum.fetch_add((-delta) as u64, Ordering::SeqCst);
                    });
                    if let Some(t) = t_deliver {
                        r_deliver_ns += t.elapsed().as_nanos() as u64;
                    }
                    let t_barrier = timing.then(Instant::now);
                    barrier.wait(); // #2: all inboxes assembled
                    if let Some(t) = t_barrier {
                        r_barrier_ns += t.elapsed().as_nanos() as u64;
                    }

                    // ---- compute: run own *active* programs (nodes
                    // with deliveries ∪ non-quiescent carryover, clause
                    // 5 via the shared merge), push own sends, update
                    // the carryover in place.
                    let t_compute = timing.then(Instant::now);
                    guard(&mut || {
                        let mut delta: i64 = 0;
                        let mut sent: u64 = 0;
                        let mut combined: u64 = 0;
                        let mut executed: u64 = 0;
                        next_nodes.clear();
                        congest::for_each_active(
                            &inbox_ranges,
                            &carry_nodes,
                            (0, 0),
                            |v, (inbox_start, inbox_end)| {
                                executed += 1;
                                if track_nodes {
                                    *unsafe { ns_invocations_sh.get_mut(v) } += 1;
                                }
                                let p = unsafe { programs_sh.get_mut(v) };
                                let mut ctx =
                                    Ctx::new(v, n, round, graph.neighbors(v), &mut staged);
                                p.round(&mut ctx, &arena[inbox_start..inbox_end]);
                                for (to, msg) in staged.drain(..) {
                                    sent += 1;
                                    if track_nodes {
                                        *unsafe { ns_sent_sh.get_mut(v) } += 1;
                                    }
                                    if stage_one(p, v, to, &msg, &mut out_backlog) {
                                        combined += 1;
                                    } else {
                                        delta += 1;
                                    }
                                }
                                if !p.is_quiescent() {
                                    next_nodes.push(v);
                                }
                            },
                        );
                        nonquiescent.fetch_add(
                            next_nodes.len() as i64 - carry_nodes.len() as i64,
                            Ordering::SeqCst,
                        );
                        std::mem::swap(&mut carry_nodes, &mut next_nodes);
                        pending.fetch_add(delta, Ordering::SeqCst);
                        staged_cum.fetch_add(sent, Ordering::SeqCst);
                        combined_cum.fetch_add(combined, Ordering::SeqCst);
                        active_cum.fetch_add(executed, Ordering::SeqCst);
                        if record {
                            // Depth scan over the sender-side backlog
                            // only: queues outside it are empty, so the
                            // max matches a full `2m`-queue sweep at
                            // frontier-proportional cost. Drained
                            // queues leave the backlog here (only this
                            // worker pushes to them, so the length
                            // read is race-free during compute).
                            let mut depth = 0u64;
                            out_backlog.retain(|&d| {
                                let len = unsafe { queues_sh.get_mut(d) }.len() as u64;
                                if len == 0 {
                                    *unsafe { in_backlog_sh.get_mut(d) } = false;
                                    false
                                } else {
                                    depth = depth.max(len);
                                    true
                                }
                            });
                            round_max_depth.fetch_max(depth, Ordering::SeqCst);
                        }
                    });
                    if let Some(t) = t_compute {
                        r_compute_ns += t.elapsed().as_nanos() as u64;
                    }
                    let t_barrier = timing.then(Instant::now);
                    barrier.wait(); // #3: all sends queued
                    if let Some(t) = t_barrier {
                        r_barrier_ns += t.elapsed().as_nanos() as u64;
                    }
                }
            };

            let (rounds, frontier, hists, wall) = std::thread::scope(|s| {
                for wid in 1..threads {
                    let w = &worker;
                    s.spawn(move || w(wid));
                }
                worker(0)
            });

            if let Some(payload) = panic_payload.lock().unwrap().take() {
                resume_unwind(payload);
            }
            stats.rounds = rounds;
            stats.messages = staged_cum.load(Ordering::SeqCst);
            stats.messages_combined = combined_cum.load(Ordering::SeqCst);
            delivered_total = delivered_cum.load(Ordering::SeqCst);
            run_frontier = frontier;
            livelocked = rounds >= max_rounds
                && (pending.load(Ordering::SeqCst) != 0
                    || nonquiescent.load(Ordering::SeqCst) != 0);
            histograms = hists;
            run_wall = wall;
        }
        if track_nodes {
            self.node_stats = Some(node_stats);
        }
        self.wall_total.absorb(run_wall);

        if livelocked {
            panic!("CONGEST run exceeded {max_rounds} rounds — livelocked program?");
        }
        debug_assert_eq!(
            delivered_total,
            stats.messages_delivered(),
            "staged = delivered + combined at quiescence"
        );

        if record {
            let (messages_per_round, max_queue_depth_per_round, active_per_round) =
                histograms.unwrap_or_default();
            self.last_report = Some(EngineReport {
                rounds: stats.rounds,
                total_messages: stats.messages,
                messages_delivered: delivered_total,
                messages_combined: stats.messages_combined,
                messages_per_round,
                max_queue_depth_per_round,
                active_per_round,
                hot_edges: EngineReport::rank_hot_edges(&per_directed),
                threads,
                wall: run_wall,
            });
        }

        self.total.absorb(stats);
        self.frontier.absorb(run_frontier);
        (programs.into_iter().map(Program::finish).collect(), stats)
    }
}

impl<'g> Executor for Engine<'g> {
    type Sub<'h> = Engine<'h>;

    fn sub<'h>(&self, graph: &'h Graph) -> Engine<'h> {
        let mut sub = Engine::with_threads(graph, self.threads);
        sub.cap = self.cap;
        sub.max_rounds = self.max_rounds;
        sub.record_metrics = self.record_metrics;
        if self.node_stats.is_some() {
            sub.set_record_node_stats(true);
        }
        sub.trace = self.trace.clone();
        sub
    }

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn cap(&self) -> usize {
        self.cap
    }

    fn set_cap(&mut self, cap: usize) {
        assert!(cap >= 1, "bandwidth cap must be at least 1");
        self.cap = cap;
    }

    fn set_max_rounds(&mut self, max_rounds: u64) {
        self.max_rounds = max_rounds;
    }

    fn total(&self) -> RunStats {
        self.total
    }

    fn frontier_total(&self) -> FrontierStats {
        self.frontier
    }

    fn reset_total(&mut self) {
        self.total = RunStats::default();
        self.frontier = FrontierStats::default();
    }

    fn charge(&mut self, stats: RunStats) {
        self.total.absorb(stats);
    }

    fn charge_frontier(&mut self, frontier: FrontierStats) {
        self.frontier.absorb(frontier);
    }

    fn set_record_node_stats(&mut self, record: bool) {
        Engine::set_record_node_stats(self, record)
    }

    fn node_stats(&self) -> Option<&NodeStats> {
        self.node_stats.as_ref()
    }

    fn charge_node_stats(&mut self, other: &NodeStats) {
        if let Some(ns) = self.node_stats.as_mut() {
            ns.absorb(other);
        }
    }

    fn run<P, F>(&mut self, make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        Engine::run(self, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::Simulator;
    use lightgraph::generators;

    struct Flood {
        have: bool,
    }

    impl Program for Flood {
        type Output = (bool, u64);
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                self.have = true;
                ctx.send_all(Message::words(&[7]));
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            if !self.have && !inbox.is_empty() {
                self.have = true;
                ctx.send_all(Message::words(&[7]));
            }
        }
        fn finish(self) -> (bool, u64) {
            (self.have, 0)
        }
    }

    #[test]
    fn matches_simulator_on_flood() {
        for seed in 0..5 {
            let g = generators::erdos_renyi(64, 0.08, 10, seed);
            let mut sim = Simulator::new(&g);
            let (a, sa) = sim.run(|_, _| Flood { have: false });
            for threads in [1, 2, 5] {
                let mut eng = Engine::with_threads(&g, threads);
                let (b, sb) = eng.run(|_, _| Flood { have: false });
                assert_eq!(a, b, "outputs differ (threads={threads}, seed={seed})");
                assert_eq!(sa, sb, "stats differ (threads={threads}, seed={seed})");
            }
        }
    }

    struct Burst {
        k: usize,
        received: usize,
    }

    impl Program for Burst {
        type Output = usize;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[i as u64]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            self.received += inbox.len();
        }
        fn finish(self) -> usize {
            self.received
        }
    }

    #[test]
    fn bandwidth_cap_pipelines_like_simulator() {
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        let (out, stats) = eng.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats.rounds, 10);
        assert_eq!(out[1], 10);

        let mut eng5 = Engine::with_threads(&g, 2);
        Executor::set_cap(&mut eng5, 5);
        let (_, s5) = eng5.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(s5.rounds, 2);
    }

    #[test]
    fn per_edge_fifo_order_is_preserved() {
        // node 0 sends 0..6 to node 1; they must arrive in order.
        struct Seq {
            k: u64,
            got: Vec<u64>,
        }
        impl Program for Seq {
            type Output = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.node() == 0 {
                    for i in 0..self.k {
                        ctx.send(1, Message::words(&[i]));
                    }
                }
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                for (_, m) in inbox {
                    self.got.push(m.word(0));
                }
            }
            fn finish(self) -> Vec<u64> {
                self.got
            }
        }
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        let (out, _) = eng.run(|_, _| Seq {
            k: 6,
            got: Vec::new(),
        });
        assert_eq!(out[1], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn livelock_guard_fires() {
        struct Chatter;
        impl Program for Chatter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[0]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                let senders: Vec<NodeId> = inbox.iter().map(|&(from, _)| from).collect();
                for from in senders {
                    ctx.send(from, Message::words(&[0]));
                }
            }
            fn finish(self) {}
        }
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        Executor::set_max_rounds(&mut eng, 100);
        eng.run(|_, _| Chatter);
    }

    #[test]
    fn program_panics_are_forwarded_not_deadlocked() {
        struct Bomb;
        impl Program for Bomb {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[1]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                if ctx.node() == 3 {
                    panic!("boom at node 3");
                }
            }
            fn finish(self) {}
        }
        let g = generators::cycle(8, 1);
        let mut eng = Engine::with_threads(&g, 3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| eng.run(|_, _| Bomb)))
            .expect_err("must propagate");
        let text = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(text.contains("boom"), "unexpected payload {text:?}");
    }

    #[test]
    fn panicking_is_quiescent_is_forwarded_not_deadlocked() {
        struct QuietBomb {
            armed: bool,
        }
        impl Program for QuietBomb {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[1]));
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                self.armed = true;
            }
            fn is_quiescent(&self) -> bool {
                assert!(!self.armed, "quiescence bomb");
                true
            }
            fn finish(self) {}
        }
        let g = generators::cycle(8, 1);
        let mut eng = Engine::with_threads(&g, 3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            eng.run(|_, _| QuietBomb { armed: false })
        }))
        .expect_err("must propagate");
        let text = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            text.contains("quiescence bomb"),
            "unexpected payload {text:?}"
        );
    }

    #[test]
    fn shards_balance_by_degree_not_node_count() {
        // Star: the hub carries almost all the work; its shard must
        // hold far fewer nodes than the leaf shard.
        let g = generators::star(31, 9, 1);
        let bounds = shard_bounds(&g, 2);
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0].0, 0);
        assert_eq!(bounds[1].1, 31);
        assert_eq!(bounds[0].1, bounds[1].0, "shards are contiguous");
        let hub_shard = bounds[if g.degree(0) > g.degree(30) { 0 } else { 1 }];
        assert!(
            hub_shard.1 - hub_shard.0 < 16,
            "hub shard {hub_shard:?} should be node-light"
        );
        // Work (1 + degree) is near-balanced.
        let work =
            |(lo, hi): (usize, usize)| -> u64 { (lo..hi).map(|v| 1 + g.degree(v) as u64).sum() };
        let (w0, w1) = (work(bounds[0]), work(bounds[1]));
        assert!(w0.abs_diff(w1) <= 1 + g.degree(0) as u64, "{w0} vs {w1}");
    }

    #[test]
    fn shard_bounds_cover_all_nodes_for_any_thread_count() {
        for (n, seed) in [(1usize, 0u64), (7, 1), (40, 2)] {
            let g = generators::erdos_renyi(n, 0.2, 9, seed);
            for threads in 1..=8 {
                let bounds = shard_bounds(&g, threads);
                assert_eq!(bounds.len(), threads);
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[threads - 1].1, n);
                assert!(bounds.windows(2).all(|w| w[0].1 == w[1].0));
            }
        }
    }

    #[test]
    fn frontier_stats_match_simulator_and_skip_idle_nodes() {
        // Burst over one edge: only the receiver is ever active, so a
        // 10-round run costs 10 invocations (dense: 20), on any thread
        // count, matching the simulator's frontier accounting.
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = congest::Simulator::new(&g);
        sim.run(|_, _| Burst { k: 10, received: 0 });
        for threads in [1, 2] {
            let mut eng = Engine::with_threads(&g, threads);
            let (_, stats) = eng.run(|_, _| Burst { k: 10, received: 0 });
            let f = Executor::frontier_total(&eng);
            assert_eq!(f, sim.frontier_total(), "threads={threads}");
            assert_eq!(f.invocations, 10);
            assert_eq!(f.peak_active, 1);
            assert!(f.invocations < stats.rounds * g.n() as u64, "skips idle");
        }
    }

    #[test]
    fn report_collects_histograms_and_hot_edges() {
        let g = lightgraph::Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        eng.set_record_metrics(true);
        let (_, stats) = eng.run(|_, _| Burst { k: 4, received: 0 });
        let report = eng.last_report().expect("recording enabled");
        assert_eq!(report.rounds, stats.rounds);
        assert_eq!(report.total_messages, stats.messages);
        assert_eq!(report.messages_delivered, stats.messages_delivered());
        assert_eq!(report.messages_combined, stats.messages_combined);
        assert_eq!(
            report.messages_per_round.iter().sum::<u64>(),
            report.messages_delivered
        );
        assert_eq!(
            report.active_per_round.iter().sum::<u64>(),
            Executor::frontier_total(&eng).invocations,
            "active histogram sums to the invocation count"
        );
        assert_eq!(
            report.peak_active(),
            Executor::frontier_total(&eng).peak_active
        );
        assert_eq!(report.hot_edges[0].0, 0, "edge 0 carries the burst");
        assert_eq!(
            report.peak_queue_depth(),
            3,
            "k-1 messages remain after round 1"
        );
        assert_eq!(report.threads, 2);
    }

    /// Same program as the simulator's combining unit test: node 0
    /// stages `k` same-key messages in one burst; the min-combiner
    /// collapses them to one survivor.
    struct KeyedBurst {
        k: u64,
        got: Vec<u64>,
    }

    impl Program for KeyedBurst {
        type Output = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[5, 100 - i]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            for (_, m) in inbox {
                self.got.push(m.word(1));
            }
        }
        fn combine_key(&self, msg: &Message) -> Option<Word> {
            Some(msg.word(0))
        }
        fn combine(&self, queued: &Message, incoming: &Message) -> Message {
            Message::words(&[queued.word(0), queued.word(1).min(incoming.word(1))])
        }
        fn finish(self) -> Vec<u64> {
            self.got
        }
    }

    #[test]
    fn combiner_matches_simulator_bit_for_bit() {
        let g = generators::cycle(8, 1);
        let mut sim = Simulator::new(&g);
        let (os, ss) = sim.run(|_, _| KeyedBurst {
            k: 10,
            got: Vec::new(),
        });
        assert_eq!(ss.messages_combined, 9, "the burst merged");
        assert_eq!(ss.messages_delivered(), ss.messages - 9);
        for threads in [1, 2, 3] {
            let mut eng = Engine::with_threads(&g, threads);
            eng.set_record_metrics(true);
            let (oe, se) = eng.run(|_, _| KeyedBurst {
                k: 10,
                got: Vec::new(),
            });
            assert_eq!(os, oe, "outputs (threads={threads})");
            assert_eq!(ss, se, "stats incl. combine counters (threads={threads})");
            assert_eq!(
                sim.frontier_total(),
                Executor::frontier_total(&eng),
                "frontier (threads={threads})"
            );
            let report = eng.last_report().expect("recording enabled");
            assert_eq!(report.messages_combined, se.messages_combined);
            assert_eq!(report.messages_delivered, se.messages_delivered());
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g0 = lightgraph::Graph::new(0);
        let mut e0 = Engine::new(&g0);
        let (out, stats) = e0.run(|_, _| Flood { have: false });
        assert!(out.is_empty());
        assert_eq!(stats, RunStats::default());

        let g1 = lightgraph::Graph::new(1);
        let mut e1 = Engine::new(&g1);
        let (out, stats) = e1.run(|_, _| Flood { have: false });
        assert_eq!(out.len(), 1);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn totals_accumulate_and_sub_inherits() {
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 1);
        eng.run(|_, _| Burst { k: 3, received: 0 });
        eng.run(|_, _| Burst { k: 4, received: 0 });
        assert_eq!(Executor::total(&eng).rounds, 7);
        Executor::set_cap(&mut eng, 3);
        let h = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let sub = Executor::sub(&eng, &h);
        assert_eq!(Executor::cap(&sub), 3);
        assert_eq!(Executor::total(&sub), RunStats::default());
    }
}
