//! The parallel deterministic engine.
//!
//! # Execution model
//!
//! Nodes are split into contiguous **shards**, balanced by degree
//! (prefix-sum cuts of `1 + deg(v)`). With `threads > 1` the engine
//! *overshards* (`OVERSHARD ×` more shards than workers) and workers
//! claim shards dynamically per phase via a per-shard epoch CAS — a
//! work-stealing schedule, so a skewed frontier that lands in one
//! static shard no longer serializes the round. Workers come from a
//! persistent [`WorkerPool`] (spawned once, parked between runs, shared
//! with sub-executors), not from per-run thread spawns.
//!
//! Every classic round runs two phases separated by barriers:
//!
//! * **deliver** — the claimer of shard `s` pops up to `cap` messages
//!   from every *charged* incoming directed-edge queue of the shard's
//!   nodes into the shard's inbox arena. A directed edge has exactly
//!   one receiver, so queue access is disjoint across shards.
//! * **compute** — the claimer runs `Program::round` for the shard's
//!   *active* nodes and pushes staged sends onto the outgoing
//!   directed-edge queues. A directed edge has exactly one sender, so
//!   access is again disjoint.
//!
//! # Round fusion (contract clause 9)
//!
//! When every node that can become active in the next round lies at
//! intra-shard BFS distance `K >= 1` from its shard boundary (see
//! [`ShardLocality`]), the next `K` rounds cannot move any message
//! across a shard boundary: active nodes are non-boundary, so all
//! their incident edges are shard-internal, and activity can creep at
//! most one hop toward the boundary per round. The engine then runs a
//! **fused block** of `B = min(K, FUSE_BLOCK_MAX)` rounds in which
//! each shard executes deliver+compute locally, *without any global
//! barrier*, stopping early when it has no charged edges, no bucket
//! entries, and no non-quiescent carryover. Per-edge FIFO order is
//! schedule-independent (unique sender, unique receiver), so the fused
//! schedule is observably identical to the barriered one; per-round
//! accounting (`RunStats`, histograms, traces) is kept exact by
//! per-shard per-round [`FusedRound`] records that worker 0 merges at
//! the next decision point. With one shard (`threads == 1`) every node
//! is infinitely far from a boundary, so whole runs execute as fused
//! blocks — eliding the per-round atomics and decision overhead.
//!
//! # Frontier scheduling
//!
//! The engine implements the activation contract of `congest::exec`
//! (clause 5): per-round cost scales with the frontier, not with `n`
//! or `m`. `charged[d]` tracks whether directed queue `d` is
//! non-empty; a sender that charges an idle queue appends `d` to a
//! `touched[sender_shard][receiver_shard]` bucket, and deliver visits
//! only bucket entries plus still-charged carryover, in
//! `(receiver, directed id)` order — the simulator's inbox order.
//! Compute runs only nodes that received messages or stayed
//! non-quiescent; a shared non-quiescent counter replaces full
//! `is_quiescent` sweeps.
//!
//! # Memory layout
//!
//! The message data path is allocation-free in steady state (see
//! `DESIGN.md`, "Memory layout & the zero-alloc data path"): messages
//! are fixed-width inline values ([`congest::Message`]), queue storage
//! is pooled [`congest::slab`] cells keyed by *(sender shard, receiver
//! shard)* — the same disjointness pattern as the `touched` buckets —
//! and the whole arena ([`RunArena`]) is recycled across rounds *and*
//! runs, so a composite algorithm's later phases reuse the capacity of
//! its first.
//!
//! # Why this is deterministic
//!
//! The sequential simulator's only ordering guarantees are (a) per
//! directed edge FIFO and (b) inboxes ordered by directed edge id.
//! Both survive parallelization for free: every directed-edge queue
//! has a *unique* sender (so FIFO order equals that sender's staged
//! order, regardless of node interleaving), and each shard assembles
//! its nodes' inboxes by walking its charged incoming edges in
//! ascending directed id order — the sequential delivery order. All
//! per-shard state is keyed by the shard, not the worker, and each
//! shard is claimed by exactly one worker per phase, so *which* worker
//! processes a shard is invisible to the result — the shard plan and
//! steal order can be randomized (`ENGINE_SHARD_STRESS`) without
//! changing a single output bit. The result is bit-identical outputs
//! and [`RunStats`] versus [`congest::Simulator`] across any thread
//! count, verified by property tests.

use crate::csr::{DirectedId, ShardLocality};
use crate::plan::{EngineTopo, PlanData};
use crate::pool::WorkerPool;
use crate::report::EngineReport;
use congest::plan::TopoCache;
use congest::obs::{PhaseWall, RoundTrace};
use congest::slab::{EdgeQueue, Slab};
use congest::{
    Ctx, Executor, FrontierStats, Message, NodeStats, Program, RunStats, SharedTraceSink,
};
use lightgraph::{Graph, NodeId};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::Instant;

/// Shards per worker when `threads > 1`: enough slack that a skewed
/// frontier can be stolen, few enough that bucket rows stay cheap.
const OVERSHARD: usize = 4;

/// Upper bound on rounds per fused block, so accounting buffers and
/// the livelock guard stay responsive even when shards are boundless
/// (`threads == 1` has no boundaries at all).
const FUSE_BLOCK_MAX: u64 = 512;

/// Control codes broadcast by worker 0 (low byte of `ctrl_word`; the
/// fused block bound rides in the high bits). Zero is deliberately not
/// a valid code.
const CTRL_CLASSIC: u64 = 1;
const CTRL_FUSED: u64 = 2;
const CTRL_QUIESCENT: u64 = 3;
const CTRL_LIVELOCKED: u64 = 4;
const CTRL_ABORTED: u64 = 5;

/// A slice shared across workers with externally-guaranteed disjoint
/// index access.
///
/// # Safety invariant
/// Callers of [`SharedSlice::get_mut`] must guarantee that no index is
/// accessed by two workers within the same barrier-delimited phase.
/// The engine upholds this structurally: program, queue, and shard
/// state indices are owned by their shard, and each shard is claimed
/// by exactly one worker per phase (per-shard epoch CAS).
struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}
unsafe impl<'a, T: Send> Sync for SharedSlice<'a, T> {}

impl<'a, T> SharedSlice<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// `i < len`, and no concurrent access to index `i` (see the type
    /// docs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Contiguous node ranges, balanced by degree: shard boundaries are
/// prefix-sum cuts of `1 + deg(v)` (the per-node deliver+compute cost
/// proxy) instead of equal node counts, so a hub node does not
/// overload its shard. Deterministic in `(graph, threads)`; the
/// `congest::exec` contract makes outputs independent of the
/// boundaries (and hence of the thread count) entirely, so balancing
/// is free to follow the workload.
fn shard_bounds(graph: &Graph, threads: usize) -> Vec<(usize, usize)> {
    let n = graph.n();
    let total: u64 = n as u64 + 2 * graph.m() as u64;
    let mut bounds = Vec::with_capacity(threads);
    let mut acc: u64 = 0;
    let mut v = 0usize;
    let mut lo = 0usize;
    for t in 1..=threads {
        let target = total * t as u64 / threads as u64;
        while v < n && acc < target {
            acc += 1 + graph.degree(v) as u64;
            v += 1;
        }
        bounds.push((lo, v));
        lo = v;
    }
    bounds
}

/// splitmix64 — the engine's only randomness source (stress mode), so
/// no external RNG dependency is needed and stress runs are replayable
/// from a single seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Base seed for `ENGINE_SHARD_STRESS=1` runs, drawn once per process
/// and announced on stderr so failures are replayable via
/// [`Engine::set_shard_stress_seed`].
fn stress_env_base() -> Option<u64> {
    static BASE: OnceLock<Option<u64>> = OnceLock::new();
    *BASE.get_or_init(|| match std::env::var("ENGINE_SHARD_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let seed = nanos ^ ((std::process::id() as u64) << 32);
            eprintln!(
                "engine: ENGINE_SHARD_STRESS active, base seed {seed:#x} \
                     (replay any run with Engine::set_shard_stress_seed)"
            );
            Some(seed)
        }
        _ => None,
    })
}

/// Per-run stress seed: explicit seed wins (replay), otherwise the env
/// base advanced by a process-wide run counter so every run shakes a
/// different shard plan.
fn stress_run_seed(explicit: Option<u64>) -> Option<u64> {
    static RUNS: AtomicU64 = AtomicU64::new(0);
    explicit.or_else(|| {
        stress_env_base().map(|base| {
            let mut s = base.wrapping_add(RUNS.fetch_add(1, Ordering::Relaxed));
            splitmix(&mut s)
        })
    })
}

/// The shard plan for one run: degree-balanced overshards normally, a
/// randomized cut set under stress. Always covers `0..n` contiguously;
/// empty shards are legal (their claims are no-ops).
fn plan_shards(graph: &Graph, threads: usize, stress: Option<u64>) -> Vec<(usize, usize)> {
    let n = graph.n();
    if let Some(seed) = stress {
        let mut rng = seed;
        let hi = (threads * 2 * OVERSHARD).clamp(1, n.max(1));
        let lo = threads.min(hi);
        let nshards = lo + (splitmix(&mut rng) as usize) % (hi - lo + 1);
        let mut cuts: Vec<usize> = (1..nshards)
            .map(|_| (splitmix(&mut rng) as usize) % (n + 1))
            .collect();
        cuts.sort_unstable();
        let mut bounds = Vec::with_capacity(nshards);
        let mut prev = 0usize;
        for c in cuts {
            bounds.push((prev, c));
            prev = c;
        }
        bounds.push((prev, n));
        return bounds;
    }
    if threads == 1 {
        return shard_bounds(graph, 1);
    }
    shard_bounds(graph, (threads * OVERSHARD).min(n.max(1)))
}

/// Per-shard worker claim order: a rotation spreading workers across
/// the shard space (so first claims rarely collide), or a seeded
/// shuffle under stress to exercise every steal interleaving.
fn claim_orders(nshards: usize, threads: usize, stress: Option<u64>) -> Vec<Vec<usize>> {
    (0..threads)
        .map(|wid| {
            let mut ord: Vec<usize> = (0..nshards).collect();
            if let Some(seed) = stress {
                let mut rng = seed ^ (wid as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                for i in (1..nshards).rev() {
                    let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
                    ord.swap(i, j);
                }
            } else {
                ord.rotate_left(wid * nshards / threads);
            }
            ord
        })
        .collect()
}

/// All mutable per-shard execution state. Keyed by shard (not worker),
/// so results cannot depend on which worker claims the shard.
#[derive(Default)]
struct ShardState {
    /// Charged incoming edges carried over from the last deliver,
    /// sorted by `(receiver, directed id)`.
    carry_edges: Vec<DirectedId>,
    next_edges: Vec<DirectedId>,
    /// Non-quiescent nodes after their last activation, ascending.
    carry_nodes: Vec<NodeId>,
    next_nodes: Vec<NodeId>,
    /// Inbox arena + per-node ranges for the current round.
    arena: Vec<(NodeId, Message)>,
    inbox_ranges: Vec<(NodeId, (usize, usize))>,
    /// Record-mode: own out-queues that may be non-empty.
    out_backlog: Vec<DirectedId>,
    /// Scratch for `Ctx` staging.
    staged: Vec<(NodeId, Message)>,
    /// Per-round accounting from the shard's last fused block.
    fused: Vec<FusedRound>,
}

/// The run-to-run queue arena ([`congest::slab`]): slab cells keyed by
/// *(sender shard, receiver shard)*, per-directed-edge queue headers,
/// charged flags, touched buckets, and per-shard state. Quiescence
/// drains every queue, so between runs everything is empty but keeps
/// its high-water capacity — the later phases of a composite algorithm
/// (SLT = tree + spanner + contractions on one engine) stage and
/// deliver without allocating. Cell access mirrors the `touched`
/// buckets: compute writes row `s`, deliver drains column `s`, fused
/// blocks stay within column `s` (stagings are diagonal by clause 9) —
/// disjoint across shards in every phase. Rebuilt when the shard plan
/// changes size (stress mode); dropped, not reused, after an aborted
/// or livelocked run, whose queues may be non-empty.
#[derive(Default)]
struct RunArena {
    nshards: usize,
    slabs: Vec<Slab<Message>>,
    heads: Vec<EdgeQueue>,
    charged: Vec<bool>,
    touched: Vec<Vec<DirectedId>>,
    states: Vec<ShardState>,
    /// Per-shard claim epochs (reset to 0 between runs — `O(nshards)`,
    /// not `O(n)`).
    claims: Vec<AtomicU64>,
    /// Record-mode per-directed-edge delivery counters and backlog
    /// membership flags; kept across runs and fill-reset so recording
    /// composite workloads stays allocation-free too.
    per_directed: Vec<u64>,
    in_backlog: Vec<bool>,
}

/// Exact per-round accounting a shard writes during a fused block;
/// worker 0 merges these across shards at the next decision point so
/// histograms/traces match the barriered schedule bit for bit.
#[derive(Clone, Copy, Default)]
struct FusedRound {
    delivered: u64,
    active: u64,
    depth: u64,
    deliver_ns: u64,
    compute_ns: u64,
}

/// Per-round record-mode histograms collected by worker 0:
/// (messages, max queue depth, active nodes).
type Histograms = (Vec<u64>, Vec<u64>, Vec<u64>);

/// What worker 0 still has to account for at a decision point.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Prev {
    Init,
    Classic,
    Fused,
}

/// The parallel deterministic CONGEST engine.
///
/// Drop-in [`Executor`] replacement for [`congest::Simulator`]: same
/// [`Program`] interface, bit-identical outputs and [`RunStats`], but
/// rounds execute over work-stolen node shards on a persistent worker
/// pool, with barrier-free fused blocks where the frontier is provably
/// shard-local. See the module docs for the phase/claim structure.
pub struct Engine<'g> {
    graph: &'g Graph,
    /// Topology-derived structure (CSR, sender/receiver maps, shard
    /// plans), checked out of the shared session cache — see
    /// [`crate::plan`]. Shared with every sub-executor.
    topo: Arc<EngineTopo>,
    plans: Arc<TopoCache<EngineTopo>>,
    /// Memo of the last run's shard plan: repeat runs with the same
    /// `(threads, stress)` skip even the cache lookup.
    plan: Option<ExecPlan>,
    plan_builds: u64,
    setup_total_ns: u64,
    cap: usize,
    max_rounds: u64,
    threads: usize,
    record_metrics: bool,
    time_phases: bool,
    total: RunStats,
    frontier: FrontierStats,
    last_report: Option<EngineReport>,
    node_stats: Option<NodeStats>,
    trace: Option<SharedTraceSink>,
    wall_total: PhaseWall,
    pool: Option<Arc<WorkerPool>>,
    stress_seed: Option<u64>,
    arena: RunArena,
}

/// The engine's per-run plan memo: the cached [`PlanData`] plus the
/// configuration pair that keys it.
struct ExecPlan {
    threads: usize,
    stress: Option<u64>,
    data: Arc<PlanData>,
}

impl<'g> std::fmt::Debug for Engine<'g> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("cap", &self.cap)
            .field("threads", &self.threads)
            .field("total", &self.total)
            .finish()
    }
}

impl<'g> Engine<'g> {
    /// Creates an engine over `graph` with bandwidth cap 1 and as many
    /// worker threads as the machine reports.
    pub fn new(graph: &'g Graph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Engine::with_threads(graph, threads)
    }

    /// Creates an engine with an explicit worker-thread count
    /// (`threads >= 1`; clamped to the node count at run time).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(graph: &'g Graph, threads: usize) -> Self {
        Engine::with_shared_plans(graph, threads, Arc::new(TopoCache::new()))
    }

    /// Creates an engine sharing an existing plan cache — the
    /// sub-executor path: every sub-run of a composite algorithm reuses
    /// the root engine's topology-derived structure.
    fn with_shared_plans(
        graph: &'g Graph,
        threads: usize,
        plans: Arc<TopoCache<EngineTopo>>,
    ) -> Self {
        assert!(threads >= 1, "engine needs at least one worker thread");
        let topo = plans.get_or_build(graph, EngineTopo::build);
        Engine {
            graph,
            topo,
            plans,
            plan: None,
            plan_builds: 0,
            setup_total_ns: 0,
            cap: 1,
            max_rounds: 50_000_000,
            threads,
            record_metrics: false,
            time_phases: false,
            total: RunStats::default(),
            frontier: FrontierStats::default(),
            last_report: None,
            node_stats: None,
            trace: None,
            wall_total: PhaseWall::default(),
            pool: None,
            stress_seed: None,
            arena: RunArena::default(),
        }
    }

    /// Worker threads used per run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables or disables congestion instrumentation (per-round
    /// message histogram, queue depths, hot edges). Off by default:
    /// recording costs an `O(m)` scan per round.
    pub fn set_record_metrics(&mut self, record: bool) {
        self.record_metrics = record;
    }

    /// Enables or disables per-phase wall sampling on its own — the
    /// cheap slice of metrics recording (a few clock reads per round,
    /// no `O(m)` histogram scans), enough to populate
    /// [`Engine::wall_total`] and the process-wide breakdown
    /// accumulators in `congest::plan`. Implied by
    /// [`Engine::set_record_metrics`] and tracing; observer-neutral
    /// (contract clause 8).
    pub fn set_time_phases(&mut self, time: bool) {
        self.time_phases = time;
    }

    /// Instrumentation from the most recent run, if
    /// [`Engine::set_record_metrics`] was enabled.
    pub fn last_report(&self) -> Option<&EngineReport> {
        self.last_report.as_ref()
    }

    /// Cumulative per-phase wall time over every timed `run` driven
    /// directly on this engine (sub-executors accumulate their own).
    /// Deliver/compute are max-across-workers per phase, barrier is
    /// total wait across workers; see `congest::obs::PhaseWall`. Zero
    /// unless metrics recording or tracing was enabled.
    pub fn wall_total(&self) -> PhaseWall {
        self.wall_total
    }

    /// Cumulative wall time this engine spent in per-run setup (plan
    /// acquisition, arena checkout, program construction) across every
    /// `run` — the session layer's target. Always measured (two clock
    /// reads per run); sub-executors accumulate their own.
    pub fn setup_total_ns(&self) -> u64 {
        self.setup_total_ns
    }

    /// How many times this engine actually *built* a shard plan rather
    /// than reusing a cached one (diagnostics; see `tests/plan_cache`).
    pub fn plan_builds(&self) -> u64 {
        self.plan_builds
    }

    /// Enables or disables per-node accounting (see
    /// [`Executor::set_record_node_stats`]). Enabling (re)allocates
    /// zeroed counters.
    pub fn set_record_node_stats(&mut self, record: bool) {
        self.node_stats = record.then(|| NodeStats::new(self.graph.n()));
    }

    /// Attaches (or detaches, with `None`) a profiling trace sink; one
    /// [`RoundTrace`] record is pushed per executed round (by worker 0,
    /// at the following decision point; fused rounds carry zero
    /// barrier time — they genuinely have none). Inherited by
    /// sub-executors; observer-neutral (contract clause 8).
    pub fn set_trace(&mut self, sink: Option<SharedTraceSink>) {
        self.trace = sink;
    }

    /// Pins the shard-stress seed for this engine (and its
    /// sub-executors): `Some(seed)` randomizes shard cuts and steal
    /// order exactly as `ENGINE_SHARD_STRESS=1` does, but replayably —
    /// determinism tests sweep seeds without touching the environment.
    /// `None` (the default) falls back to the env var.
    pub fn set_shard_stress_seed(&mut self, seed: Option<u64>) {
        self.stress_seed = seed;
    }

    /// The underlying graph (with the graph's own lifetime).
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Runs one program per node until global quiescence. Same contract
    /// and same observable behavior as [`congest::Simulator::run`]; see
    /// the module docs.
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard, or if
    /// a program callback panics (the panic is forwarded).
    pub fn run<P, F>(&mut self, mut make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let t_setup = Instant::now();
        let n = self.graph.n();
        let threads = self.threads.clamp(1, n.max(1));
        // Ensure the persistent pool before the long immutable borrows
        // below; sub-executors share it via `Arc` (see `Executor::sub`).
        if threads > 1 && self.pool.as_ref().map_or(0, |p| p.workers()) < threads - 1 {
            self.pool = Some(Arc::new(WorkerPool::new(threads - 1)));
        }
        let pool = self.pool.clone();
        let stress = stress_run_seed(self.stress_seed);
        let graph = self.graph;
        let topo = self.topo.clone();
        let csr = &topo.csr;
        let senders = &topo.senders;
        let receivers = &topo.receivers;
        let cap = self.cap;
        let max_rounds = self.max_rounds;
        let record = self.record_metrics;
        // Per-node counters move out of `self` for the run so the three
        // counter vectors can be shared (disjointly) across workers:
        // `sent`/`invocations` are indexed by owned nodes, `delivered`
        // by owned receivers — the same sharding as programs/queues.
        let track_nodes = self.node_stats.is_some();
        let mut node_stats = self.node_stats.take().unwrap_or_default();
        let trace_run = self.trace.as_ref().map(|s| {
            (
                s.clone(),
                s.lock().expect("trace sink").begin_run("parallel"),
            )
        });
        let timed = record || trace_run.is_some() || self.time_phases;

        // Shard plan (bounds, claim orders, and the shard-locality
        // metadata backing the clause-9 fusion-eligibility metric):
        // acquired from the session cache, built at most once per
        // `(threads, stress)` pair per topology. The memo in
        // `self.plan` skips even the cache lock on repeat sub-runs.
        let plan_hit = self
            .plan
            .as_ref()
            .is_some_and(|p| p.threads == threads && p.stress == stress);
        if !plan_hit {
            let (data, built) = topo.plan_for(threads, stress, || {
                let shards = plan_shards(graph, threads, stress);
                let orders = claim_orders(shards.len(), threads, stress);
                let loc = ShardLocality::new(graph, &shards);
                PlanData {
                    shards,
                    orders,
                    loc,
                }
            });
            self.plan_builds += u64::from(built);
            self.plan = Some(ExecPlan {
                threads,
                stress,
                data,
            });
        }
        let plan = &self.plan.as_ref().expect("plan just ensured").data;
        let shards = &plan.shards;
        let nshards = shards.len();
        let orders = &plan.orders;
        let shard_of = &plan.loc.shard_of;
        let dist = &plan.loc.dist_to_boundary;

        // `make` runs on the calling thread, in node order (contract).
        let mut programs: Vec<P> = (0..n).map(|v| make(v, graph)).collect();
        // Queue storage is the persistent arena (see `RunArena`):
        // staging goes through the shared `congest::slab` (contract
        // clause 7), so the merge semantics are the simulator's by
        // construction. `charged[d]` ⇔ queue `d` is non-empty ⇔ `d`
        // sits in exactly one receiver-side carryover list or touched
        // bucket — written by the unique sender shard during
        // compute/init, cleared by the unique receiver shard during
        // deliver. `touched[s * nshards + r]` holds the edges freshly
        // charged by sender shard `s` toward receiver shard `r`.
        let mut run_arena = std::mem::take(&mut self.arena);
        if run_arena.heads.len() != csr.directed_len() {
            run_arena.heads = vec![EdgeQueue::EMPTY; csr.directed_len()];
            run_arena.charged = vec![false; csr.directed_len()];
        }
        if run_arena.nshards != nshards {
            run_arena.nshards = nshards;
            run_arena.slabs = (0..nshards * nshards).map(|_| Slab::new()).collect();
            run_arena.touched = vec![Vec::new(); nshards * nshards];
            run_arena.states = (0..nshards).map(|_| ShardState::default()).collect();
            run_arena.claims = (0..nshards).map(|_| AtomicU64::new(0)).collect();
        } else {
            for c in &run_arena.claims {
                c.store(0, Ordering::Relaxed);
            }
        }
        debug_assert!(run_arena.heads.iter().all(EdgeQueue::is_empty));
        // Record-mode only: per-directed delivery counters, plus
        // membership flags for each sender's backlog list of
        // possibly-non-empty own out-queues, so the per-round depth
        // histogram scans the backlog instead of all `2m` queues.
        // Fill-reset in the persistent arena, not reallocated.
        if record {
            run_arena.per_directed.clear();
            run_arena.per_directed.resize(csr.directed_len(), 0);
            run_arena.in_backlog.clear();
            run_arena.in_backlog.resize(csr.directed_len(), false);
        }

        // Everything up to here — plan acquisition, arena checkout,
        // program construction — is the per-run setup the session layer
        // amortizes; the workers below are the run proper.
        let setup_ns = t_setup.elapsed().as_nanos() as u64;
        self.setup_total_ns += setup_ns;
        congest::plan::add_setup_ns(setup_ns);

        let mut stats = RunStats::default();
        let run_frontier;
        let livelocked;
        let histograms;
        let delivered_total;
        let run_wall;

        {
            let programs_sh = SharedSlice::new(&mut programs);
            let slabs_sh = SharedSlice::new(&mut run_arena.slabs);
            let heads_sh = SharedSlice::new(&mut run_arena.heads);
            let charged_sh = SharedSlice::new(&mut run_arena.charged);
            let touched_sh = SharedSlice::new(&mut run_arena.touched);
            let states_sh = SharedSlice::new(&mut run_arena.states);
            let per_directed_sh = SharedSlice::new(&mut run_arena.per_directed);
            let in_backlog_sh = SharedSlice::new(&mut run_arena.in_backlog);
            let ns_sent_sh = SharedSlice::new(&mut node_stats.sent);
            let ns_delivered_sh = SharedSlice::new(&mut node_stats.delivered);
            let ns_invocations_sh = SharedSlice::new(&mut node_stats.invocations);
            // Per-shard claim epochs: a worker owns shard `s` for phase
            // `p` iff it wins `claims[s]: p-1 → p`. Every worker walks
            // all shards each phase, so every shard is claimed exactly
            // once per phase regardless of worker interleaving. The
            // counters live in the arena (reset above), not per run.
            let claims: &[AtomicU64] = &run_arena.claims;
            let pending = AtomicI64::new(0);
            // Count of non-quiescent programs; replaces the old
            // every-node `is_quiescent` sweep. Updated incrementally by
            // each shard from its carryover-list delta after compute.
            let nonquiescent = AtomicI64::new(0);
            // Logical sends and clause-7 merges, batched per phase like
            // `pending`; at quiescence staged = delivered + combined.
            let staged_cum = AtomicU64::new(0);
            let combined_cum = AtomicU64::new(0);
            let delivered_cum = AtomicU64::new(0);
            let active_cum = AtomicU64::new(0);
            let round_max_depth = AtomicU64::new(0);
            // Fusion eligibility: min dist-to-boundary over every node
            // that can be active next round, fetch_min'd by shards
            // after their sends, swapped out by worker 0 at decisions.
            let fuse_dist = AtomicU64::new(u64::MAX);
            // Rounds actually executed by the longest-running shard of
            // the current fused block (per-shard activity within a
            // block is prefix-contiguous, so the max is exact).
            let block_rounds = AtomicU64::new(0);
            // Worker 0's broadcast decision: control code in the low
            // byte, fused block bound in the high bits, plus the round
            // base; stored before barrier #1, loaded after.
            let ctrl_word = AtomicU64::new(0);
            let ctrl_round = AtomicU64::new(0);
            // Satellite: per-phase wall sampled by *all* workers —
            // deliver/compute via fetch_max (phase wall = slowest
            // worker), barrier via fetch_add (total wait). Worker 0
            // drains them at decisions; attribution at unit boundaries
            // is approximate (documented in `congest::obs`).
            let ph_deliver = AtomicU64::new(0);
            let ph_compute = AtomicU64::new(0);
            let ph_barrier = AtomicU64::new(0);
            let abort = AtomicBool::new(false);
            let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
            let barrier = Barrier::new(threads);

            // One worker body, run by `threads` threads in lockstep;
            // returns (rounds, frontier, histograms, wall) — meaningful
            // for worker 0 only (message totals live in the shared
            // atomics).
            let worker = |wid: usize| -> (u64, FrontierStats, Option<Histograms>, PhaseWall) {
                let order = &orders[wid];
                let mut wall = PhaseWall::default();
                let mut round: u64 = 0;
                // Local phase counter, advanced identically by every
                // worker (broadcast decisions keep them in lockstep):
                // +1 for init, +2 per classic round, +1 per fused block.
                let mut phase: u64 = 0;
                let mut prev = Prev::Init;
                let mut delivered_seen: u64 = 0;
                let mut active_seen: u64 = 0;
                let mut peak_active: u64 = 0;
                let mut hist_msgs: Vec<u64> = Vec::new();
                let mut hist_depth: Vec<u64> = Vec::new();
                let mut hist_active: Vec<u64> = Vec::new();

                let guard = |f: &mut dyn FnMut()| {
                    if abort.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                        *panic_payload.lock().unwrap() = Some(payload);
                        abort.store(true, Ordering::SeqCst);
                    }
                };

                // Clause-7 staging, shared by init/compute/fused: stage
                // one of `v`'s sends on its outgoing queue, merging per
                // the sender's combiner; a merged message was absorbed
                // into a co-queued one (the queue was non-empty, so the
                // edge is already charged and backlogged), an appended
                // one updates the charge/touched bucket (row = sender
                // shard) and record-mode backlog bookkeeping. Returns
                // whether the message merged.
                let stage_one = |p: &P,
                                 v: NodeId,
                                 to: NodeId,
                                 msg: Message,
                                 row: usize,
                                 backlog: &mut Vec<DirectedId>| {
                    let d = csr.out_id(v, to);
                    let key = p.combine_key(&msg);
                    let r = shard_of[to] as usize;
                    let cell = unsafe { slabs_sh.get_mut(row * nshards + r) };
                    let q = unsafe { heads_sh.get_mut(d) };
                    let merged = cell.stage(q, d, key, msg, |old, new| {
                        let m = p.combine(old, &new);
                        debug_assert_eq!(p.combine_key(&m), key, "combiner changed the key");
                        *old = m;
                    });
                    if merged {
                        return true;
                    }
                    let ch = unsafe { charged_sh.get_mut(d) };
                    if !*ch {
                        *ch = true;
                        unsafe { touched_sh.get_mut(row * nshards + r) }.push(d);
                    }
                    if record {
                        let ib = unsafe { in_backlog_sh.get_mut(d) };
                        if !*ib {
                            *ib = true;
                            backlog.push(d);
                        }
                    }
                    false
                };

                // Fusion-eligibility contribution of shard `s` after
                // its sends for a phase: min dist-to-boundary over
                // everything that can be active next round from this
                // shard — leftover charged receivers, freshly charged
                // receivers (bucket row `s`), and the non-quiescent
                // carryover. Batched locally, one fetch_min per shard.
                let fuse_scan = |s: usize, carry_edges: &[DirectedId], carry_nodes: &[NodeId]| {
                    let mut k = u64::MAX;
                    for &d in carry_edges {
                        k = k.min(dist[receivers[d]] as u64);
                    }
                    for r in 0..nshards {
                        for &d in unsafe { touched_sh.get_mut(s * nshards + r) }.iter() {
                            k = k.min(dist[receivers[d]] as u64);
                        }
                    }
                    for &v in carry_nodes {
                        k = k.min(dist[v] as u64);
                    }
                    if k != u64::MAX {
                        fuse_dist.fetch_min(k, Ordering::SeqCst);
                    }
                };

                // One shard's classic deliver: drain the touched-bucket
                // column, merge with carryover, pop ≤ cap per charged
                // queue into the shard arena in (receiver, id) order —
                // the simulator's per-node inbox order.
                let deliver_shard = |s: usize| {
                    let st = unsafe { states_sh.get_mut(s) };
                    let ShardState {
                        carry_edges,
                        next_edges,
                        arena,
                        inbox_ranges,
                        ..
                    } = st;
                    arena.clear();
                    inbox_ranges.clear();
                    let mut fresh = false;
                    for w in 0..nshards {
                        let bucket = unsafe { touched_sh.get_mut(w * nshards + s) };
                        fresh |= !bucket.is_empty();
                        carry_edges.append(bucket);
                    }
                    if fresh {
                        carry_edges.sort_unstable_by_key(|&d| (receivers[d], d));
                    }
                    let mut delta: i64 = 0;
                    next_edges.clear();
                    for &d in carry_edges.iter() {
                        let v = receivers[d];
                        match inbox_ranges.last_mut() {
                            Some(&mut (node, _)) if node == v => {}
                            _ => inbox_ranges.push((v, (arena.len(), arena.len()))),
                        }
                        let from = senders[d];
                        let cell =
                            unsafe { slabs_sh.get_mut(shard_of[from] as usize * nshards + s) };
                        let q = unsafe { heads_sh.get_mut(d) };
                        let mut popped = 0u64;
                        while popped < cap as u64 {
                            match cell.pop(q, d) {
                                Some((_, m)) => {
                                    arena.push((from, m));
                                    popped += 1;
                                }
                                None => break,
                            }
                        }
                        inbox_ranges.last_mut().expect("pushed above").1 .1 = arena.len();
                        delta -= popped as i64;
                        if record && popped > 0 {
                            *unsafe { per_directed_sh.get_mut(d) } += popped;
                        }
                        if track_nodes && popped > 0 {
                            *unsafe { ns_delivered_sh.get_mut(v) } += popped;
                        }
                        if q.is_empty() {
                            *unsafe { charged_sh.get_mut(d) } = false;
                        } else {
                            next_edges.push(d);
                        }
                    }
                    std::mem::swap(carry_edges, next_edges);
                    pending.fetch_add(delta, Ordering::SeqCst);
                    delivered_cum.fetch_add((-delta) as u64, Ordering::SeqCst);
                };

                // One shard's classic compute at logical round `round`:
                // run the shard's active programs (deliveries ∪
                // non-quiescent carryover, clause 5 via the shared
                // merge), push sends, update the carryover in place,
                // then report fusion eligibility for the next decision.
                let compute_shard = |s: usize, round: u64| {
                    let st = unsafe { states_sh.get_mut(s) };
                    let ShardState {
                        carry_edges,
                        carry_nodes,
                        next_nodes,
                        arena,
                        inbox_ranges,
                        out_backlog,
                        staged,
                        ..
                    } = st;
                    let mut delta: i64 = 0;
                    let mut sent: u64 = 0;
                    let mut combined: u64 = 0;
                    let mut executed: u64 = 0;
                    next_nodes.clear();
                    congest::for_each_active(
                        inbox_ranges,
                        carry_nodes,
                        (0, 0),
                        |v, (inbox_start, inbox_end)| {
                            executed += 1;
                            if track_nodes {
                                *unsafe { ns_invocations_sh.get_mut(v) } += 1;
                            }
                            let p = unsafe { programs_sh.get_mut(v) };
                            let mut ctx = Ctx::new(v, n, round, graph.neighbors(v), &mut *staged);
                            p.round(&mut ctx, &arena[inbox_start..inbox_end]);
                            for (to, msg) in staged.drain(..) {
                                sent += 1;
                                if track_nodes {
                                    *unsafe { ns_sent_sh.get_mut(v) } += 1;
                                }
                                if stage_one(p, v, to, msg, s, &mut *out_backlog) {
                                    combined += 1;
                                } else {
                                    delta += 1;
                                }
                            }
                            if !p.is_quiescent() {
                                next_nodes.push(v);
                            }
                        },
                    );
                    nonquiescent.fetch_add(
                        next_nodes.len() as i64 - carry_nodes.len() as i64,
                        Ordering::SeqCst,
                    );
                    std::mem::swap(carry_nodes, next_nodes);
                    pending.fetch_add(delta, Ordering::SeqCst);
                    staged_cum.fetch_add(sent, Ordering::SeqCst);
                    combined_cum.fetch_add(combined, Ordering::SeqCst);
                    active_cum.fetch_add(executed, Ordering::SeqCst);
                    if record {
                        // Depth scan over the sender-side backlog only:
                        // queues outside it are empty, so the max
                        // matches a full `2m`-queue sweep at
                        // frontier-proportional cost.
                        let mut depth = 0u64;
                        out_backlog.retain(|&d| {
                            let len = unsafe { heads_sh.get_mut(d) }.len() as u64;
                            if len == 0 {
                                *unsafe { in_backlog_sh.get_mut(d) } = false;
                                false
                            } else {
                                depth = depth.max(len);
                                true
                            }
                        });
                        round_max_depth.fetch_max(depth, Ordering::SeqCst);
                    }
                    fuse_scan(s, carry_edges, carry_nodes);
                };

                // One shard's fused block: up to `b` barrier-free local
                // rounds starting after logical round `base`. All
                // traffic is shard-internal by the clause-9 predicate
                // (active nodes sit ≥ 1 intra-shard hop from the
                // boundary for the whole block), so only the diagonal
                // bucket and the shard's own carry lists are touched.
                let fuse_shard = |s: usize, base: u64, b: u64, timing: bool| {
                    let st = unsafe { states_sh.get_mut(s) };
                    let ShardState {
                        carry_edges,
                        next_edges,
                        carry_nodes,
                        next_nodes,
                        arena,
                        inbox_ranges,
                        out_backlog,
                        staged,
                        fused,
                    } = st;
                    fused.clear();
                    let own = s * nshards + s;
                    let carry_start = carry_nodes.len() as i64;
                    let mut b_pending: i64 = 0;
                    let mut b_sent: u64 = 0;
                    let mut b_combined: u64 = 0;
                    let mut b_delivered: u64 = 0;
                    let mut b_active: u64 = 0;
                    for j in 1..=b {
                        if abort.load(Ordering::SeqCst) {
                            break;
                        }
                        let bucket_empty = unsafe { touched_sh.get_mut(own) }.is_empty();
                        if carry_edges.is_empty() && carry_nodes.is_empty() && bucket_empty {
                            break; // dead: nothing can wake this shard mid-block
                        }
                        let mut fr = FusedRound::default();
                        // -- local deliver (diagonal bucket only: cross
                        // buckets are provably empty for the block).
                        let t = timing.then(Instant::now);
                        arena.clear();
                        inbox_ranges.clear();
                        {
                            let bucket = unsafe { touched_sh.get_mut(own) };
                            if !bucket.is_empty() {
                                carry_edges.append(bucket);
                                carry_edges.sort_unstable_by_key(|&d| (receivers[d], d));
                            }
                        }
                        next_edges.clear();
                        for &d in carry_edges.iter() {
                            let v = receivers[d];
                            match inbox_ranges.last_mut() {
                                Some(&mut (node, _)) if node == v => {}
                                _ => inbox_ranges.push((v, (arena.len(), arena.len()))),
                            }
                            let from = senders[d];
                            let cell =
                                unsafe { slabs_sh.get_mut(shard_of[from] as usize * nshards + s) };
                            let q = unsafe { heads_sh.get_mut(d) };
                            let mut popped = 0u64;
                            while popped < cap as u64 {
                                match cell.pop(q, d) {
                                    Some((_, m)) => {
                                        arena.push((from, m));
                                        popped += 1;
                                    }
                                    None => break,
                                }
                            }
                            inbox_ranges.last_mut().expect("pushed above").1 .1 = arena.len();
                            fr.delivered += popped;
                            if record && popped > 0 {
                                *unsafe { per_directed_sh.get_mut(d) } += popped;
                            }
                            if track_nodes && popped > 0 {
                                *unsafe { ns_delivered_sh.get_mut(v) } += popped;
                            }
                            if q.is_empty() {
                                *unsafe { charged_sh.get_mut(d) } = false;
                            } else {
                                next_edges.push(d);
                            }
                        }
                        std::mem::swap(carry_edges, next_edges);
                        b_pending -= fr.delivered as i64;
                        b_delivered += fr.delivered;
                        if let Some(t) = t {
                            fr.deliver_ns = t.elapsed().as_nanos() as u64;
                        }
                        // -- local compute at logical round base + j.
                        let t = timing.then(Instant::now);
                        next_nodes.clear();
                        congest::for_each_active(
                            inbox_ranges,
                            carry_nodes,
                            (0, 0),
                            |v, (inbox_start, inbox_end)| {
                                fr.active += 1;
                                if track_nodes {
                                    *unsafe { ns_invocations_sh.get_mut(v) } += 1;
                                }
                                let p = unsafe { programs_sh.get_mut(v) };
                                let mut ctx =
                                    Ctx::new(v, n, base + j, graph.neighbors(v), &mut *staged);
                                p.round(&mut ctx, &arena[inbox_start..inbox_end]);
                                for (to, msg) in staged.drain(..) {
                                    b_sent += 1;
                                    if track_nodes {
                                        *unsafe { ns_sent_sh.get_mut(v) } += 1;
                                    }
                                    if stage_one(p, v, to, msg, s, &mut *out_backlog) {
                                        b_combined += 1;
                                    } else {
                                        b_pending += 1;
                                    }
                                }
                                if !p.is_quiescent() {
                                    next_nodes.push(v);
                                }
                            },
                        );
                        std::mem::swap(carry_nodes, next_nodes);
                        b_active += fr.active;
                        if record {
                            let mut depth = 0u64;
                            out_backlog.retain(|&d| {
                                let len = unsafe { heads_sh.get_mut(d) }.len() as u64;
                                if len == 0 {
                                    *unsafe { in_backlog_sh.get_mut(d) } = false;
                                    false
                                } else {
                                    depth = depth.max(len);
                                    true
                                }
                            });
                            fr.depth = depth;
                        }
                        if let Some(t) = t {
                            fr.compute_ns = t.elapsed().as_nanos() as u64;
                        }
                        fused.push(fr);
                    }
                    // Batched flushes: decisions only read these after
                    // the block's resync barrier.
                    pending.fetch_add(b_pending, Ordering::SeqCst);
                    staged_cum.fetch_add(b_sent, Ordering::SeqCst);
                    combined_cum.fetch_add(b_combined, Ordering::SeqCst);
                    delivered_cum.fetch_add(b_delivered, Ordering::SeqCst);
                    active_cum.fetch_add(b_active, Ordering::SeqCst);
                    nonquiescent
                        .fetch_add(carry_nodes.len() as i64 - carry_start, Ordering::SeqCst);
                    block_rounds.fetch_max(fused.len() as u64, Ordering::SeqCst);
                    fuse_scan(s, carry_edges, carry_nodes);
                };

                // ---- init phase (round 0): one send burst per node;
                // seed the non-quiescent carryover (the only full-shard
                // `is_quiescent` evaluation of the run).
                phase += 1;
                guard(&mut || {
                    for &s in order {
                        if claims[s]
                            .compare_exchange(phase - 1, phase, Ordering::SeqCst, Ordering::SeqCst)
                            .is_err()
                        {
                            continue;
                        }
                        let st = unsafe { states_sh.get_mut(s) };
                        let ShardState {
                            carry_edges,
                            carry_nodes,
                            out_backlog,
                            staged,
                            ..
                        } = st;
                        let (lo, hi) = shards[s];
                        let mut delta: i64 = 0;
                        let mut sent: u64 = 0;
                        let mut combined: u64 = 0;
                        for v in lo..hi {
                            let p = unsafe { programs_sh.get_mut(v) };
                            let mut ctx = Ctx::new(v, n, 0, graph.neighbors(v), &mut *staged);
                            p.init(&mut ctx);
                            for (to, msg) in staged.drain(..) {
                                sent += 1;
                                if track_nodes {
                                    *unsafe { ns_sent_sh.get_mut(v) } += 1;
                                }
                                if stage_one(p, v, to, msg, s, &mut *out_backlog) {
                                    combined += 1;
                                } else {
                                    delta += 1;
                                }
                            }
                            if !p.is_quiescent() {
                                carry_nodes.push(v);
                            }
                        }
                        pending.fetch_add(delta, Ordering::SeqCst);
                        staged_cum.fetch_add(sent, Ordering::SeqCst);
                        combined_cum.fetch_add(combined, Ordering::SeqCst);
                        nonquiescent.fetch_add(carry_nodes.len() as i64, Ordering::SeqCst);
                        fuse_scan(s, carry_edges, carry_nodes);
                    }
                });
                let t_barrier = timed.then(Instant::now);
                barrier.wait(); // init burst + carryover seeds visible
                if let Some(t) = t_barrier {
                    ph_barrier.fetch_add(t.elapsed().as_nanos() as u64, Ordering::SeqCst);
                }

                loop {
                    // ---- decide: worker 0 alone accounts the previous
                    // unit (every counter settled before the last
                    // barrier), then broadcasts the next move.
                    if wid == 0 {
                        match prev {
                            Prev::Init => {}
                            Prev::Classic => {
                                round += 1;
                                let cum = delivered_cum.load(Ordering::SeqCst);
                                let this_round = cum - delivered_seen;
                                delivered_seen = cum;
                                let acum = active_cum.load(Ordering::SeqCst);
                                let round_active = acum - active_seen;
                                active_seen = acum;
                                peak_active = peak_active.max(round_active);
                                let dns = ph_deliver.swap(0, Ordering::SeqCst);
                                let cns = ph_compute.swap(0, Ordering::SeqCst);
                                let bns = ph_barrier.swap(0, Ordering::SeqCst);
                                if record {
                                    hist_msgs.push(this_round);
                                    hist_depth.push(round_max_depth.swap(0, Ordering::SeqCst));
                                    hist_active.push(round_active);
                                }
                                if let Some((sink, run_id)) = trace_run.as_ref() {
                                    sink.lock().expect("trace sink").push_round(
                                        *run_id,
                                        RoundTrace {
                                            round,
                                            delivered: this_round,
                                            active: round_active,
                                            deliver_ns: dns,
                                            compute_ns: cns,
                                            barrier_ns: bns,
                                        },
                                    );
                                }
                                wall.deliver_ns += dns;
                                wall.compute_ns += cns;
                                wall.barrier_ns += bns;
                            }
                            Prev::Fused => {
                                // Merge the block's per-shard per-round
                                // records into exact global rounds;
                                // fused rounds have no barriers, so the
                                // block's (single resync) barrier wait
                                // is attributed to its first round.
                                let l = block_rounds.swap(0, Ordering::SeqCst) as usize;
                                let bar = ph_barrier.swap(0, Ordering::SeqCst);
                                let _ = ph_deliver.swap(0, Ordering::SeqCst);
                                let _ = ph_compute.swap(0, Ordering::SeqCst);
                                for j in 0..l {
                                    let mut delivered_j = 0u64;
                                    let mut active_j = 0u64;
                                    let mut depth_j = 0u64;
                                    let mut dns = 0u64;
                                    let mut cns = 0u64;
                                    for s in 0..nshards {
                                        if let Some(fr) =
                                            unsafe { states_sh.get_mut(s) }.fused.get(j)
                                        {
                                            delivered_j += fr.delivered;
                                            active_j += fr.active;
                                            depth_j = depth_j.max(fr.depth);
                                            dns += fr.deliver_ns;
                                            cns += fr.compute_ns;
                                        }
                                    }
                                    round += 1;
                                    peak_active = peak_active.max(active_j);
                                    let bns = if j == 0 { bar } else { 0 };
                                    if record {
                                        hist_msgs.push(delivered_j);
                                        hist_depth.push(depth_j);
                                        hist_active.push(active_j);
                                    }
                                    if let Some((sink, run_id)) = trace_run.as_ref() {
                                        sink.lock().expect("trace sink").push_round(
                                            *run_id,
                                            RoundTrace {
                                                round,
                                                delivered: delivered_j,
                                                active: active_j,
                                                deliver_ns: dns,
                                                compute_ns: cns,
                                                barrier_ns: bns,
                                            },
                                        );
                                    }
                                    wall.deliver_ns += dns;
                                    wall.compute_ns += cns;
                                    wall.barrier_ns += bns;
                                }
                                delivered_seen = delivered_cum.load(Ordering::SeqCst);
                                active_seen = active_cum.load(Ordering::SeqCst);
                            }
                        }
                        // Only worker 0 ever touches `fuse_dist` here,
                        // so the swap-reset cannot race worker loads.
                        let k = fuse_dist.swap(u64::MAX, Ordering::SeqCst);
                        let (code, b) = if abort.load(Ordering::SeqCst) {
                            (CTRL_ABORTED, 0)
                        } else if pending.load(Ordering::SeqCst) == 0
                            && nonquiescent.load(Ordering::SeqCst) == 0
                        {
                            (CTRL_QUIESCENT, 0)
                        } else if round + 1 > max_rounds {
                            (CTRL_LIVELOCKED, 0)
                        } else if k >= 1 && k != u64::MAX {
                            (CTRL_FUSED, k.min(FUSE_BLOCK_MAX).min(max_rounds - round))
                        } else {
                            (CTRL_CLASSIC, 0)
                        };
                        ctrl_round.store(round, Ordering::SeqCst);
                        ctrl_word.store(code | (b << 8), Ordering::SeqCst);
                    }
                    let t_barrier = timed.then(Instant::now);
                    barrier.wait(); // #1: decision epoch closed
                    if let Some(t) = t_barrier {
                        ph_barrier.fetch_add(t.elapsed().as_nanos() as u64, Ordering::SeqCst);
                    }
                    let word = ctrl_word.load(Ordering::SeqCst);
                    let code = word & 0xff;
                    let b = word >> 8;
                    let base = ctrl_round.load(Ordering::SeqCst);

                    match code {
                        CTRL_CLASSIC => {
                            // ---- deliver phase.
                            phase += 1;
                            let t = timed.then(Instant::now);
                            guard(&mut || {
                                for &s in order {
                                    if claims[s]
                                        .compare_exchange(
                                            phase - 1,
                                            phase,
                                            Ordering::SeqCst,
                                            Ordering::SeqCst,
                                        )
                                        .is_ok()
                                    {
                                        deliver_shard(s);
                                    }
                                }
                            });
                            if let Some(t) = t {
                                ph_deliver
                                    .fetch_max(t.elapsed().as_nanos() as u64, Ordering::SeqCst);
                            }
                            let t_barrier = timed.then(Instant::now);
                            barrier.wait(); // #2: all inboxes assembled
                            if let Some(t) = t_barrier {
                                ph_barrier
                                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::SeqCst);
                            }
                            // ---- compute phase.
                            phase += 1;
                            let t = timed.then(Instant::now);
                            guard(&mut || {
                                for &s in order {
                                    if claims[s]
                                        .compare_exchange(
                                            phase - 1,
                                            phase,
                                            Ordering::SeqCst,
                                            Ordering::SeqCst,
                                        )
                                        .is_ok()
                                    {
                                        compute_shard(s, base + 1);
                                    }
                                }
                            });
                            if let Some(t) = t {
                                ph_compute
                                    .fetch_max(t.elapsed().as_nanos() as u64, Ordering::SeqCst);
                            }
                            let t_barrier = timed.then(Instant::now);
                            barrier.wait(); // #3: all sends queued
                            if let Some(t) = t_barrier {
                                ph_barrier
                                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::SeqCst);
                            }
                            prev = Prev::Classic;
                        }
                        CTRL_FUSED => {
                            // ---- fused block: one claim phase, up to
                            // `b` barrier-free rounds per shard.
                            phase += 1;
                            guard(&mut || {
                                for &s in order {
                                    if claims[s]
                                        .compare_exchange(
                                            phase - 1,
                                            phase,
                                            Ordering::SeqCst,
                                            Ordering::SeqCst,
                                        )
                                        .is_ok()
                                    {
                                        fuse_shard(s, base, b, timed);
                                    }
                                }
                            });
                            let t_barrier = timed.then(Instant::now);
                            barrier.wait(); // resync: block results visible
                            if let Some(t) = t_barrier {
                                ph_barrier
                                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::SeqCst);
                            }
                            prev = Prev::Fused;
                        }
                        _ => {
                            // Terminal (quiescent / livelocked /
                            // aborted): worker 0 already accounted the
                            // final unit above.
                            let frontier = FrontierStats {
                                invocations: active_seen,
                                peak_active,
                                rounds: round,
                            };
                            return (
                                round,
                                frontier,
                                (wid == 0 && record).then_some((
                                    hist_msgs,
                                    hist_depth,
                                    hist_active,
                                )),
                                wall,
                            );
                        }
                    }
                }
            };

            let (rounds, frontier, hists, wall) = if threads > 1 {
                let pool_ref = pool.as_ref().expect("pool ensured for threads > 1");
                pool_ref.scope(
                    threads,
                    &|wid| {
                        let _ = worker(wid);
                    },
                    || worker(0),
                )
            } else {
                worker(0)
            };

            if let Some(payload) = panic_payload.lock().unwrap().take() {
                resume_unwind(payload);
            }
            stats.rounds = rounds;
            stats.messages = staged_cum.load(Ordering::SeqCst);
            stats.messages_combined = combined_cum.load(Ordering::SeqCst);
            delivered_total = delivered_cum.load(Ordering::SeqCst);
            run_frontier = frontier;
            livelocked = rounds >= max_rounds
                && (pending.load(Ordering::SeqCst) != 0
                    || nonquiescent.load(Ordering::SeqCst) != 0);
            histograms = hists;
            run_wall = wall;
        }
        if track_nodes {
            self.node_stats = Some(node_stats);
        }
        self.wall_total.absorb(run_wall);
        if timed {
            congest::plan::add_phase_wall_ns(
                run_wall.deliver_ns,
                run_wall.compute_ns,
                run_wall.barrier_ns,
            );
        }

        if livelocked {
            panic!("CONGEST run exceeded {max_rounds} rounds — livelocked program?");
        }
        // Quiescence drained every queue (pending == 0); keep the arena
        // for the next run. Aborted/livelocked runs unwind above and
        // drop it instead — their queues may be non-empty.
        self.arena = run_arena;
        debug_assert_eq!(
            delivered_total,
            stats.messages_delivered(),
            "staged = delivered + combined at quiescence"
        );

        if record {
            let (messages_per_round, max_queue_depth_per_round, active_per_round) =
                histograms.unwrap_or_default();
            self.last_report = Some(EngineReport {
                rounds: stats.rounds,
                total_messages: stats.messages,
                messages_delivered: delivered_total,
                messages_combined: stats.messages_combined,
                messages_per_round,
                max_queue_depth_per_round,
                active_per_round,
                hot_edges: EngineReport::rank_hot_edges(&self.arena.per_directed),
                threads,
                wall: run_wall,
            });
        }

        self.total.absorb(stats);
        self.frontier.absorb(run_frontier);
        (programs.into_iter().map(Program::finish).collect(), stats)
    }
}
impl<'g> Executor for Engine<'g> {
    type Sub<'h> = Engine<'h>;

    fn sub<'h>(&self, graph: &'h Graph) -> Engine<'h> {
        // Sub-executors share the session plan cache: a derived graph
        // seen before (same topology) skips CSR/shard-plan rebuilds.
        let mut sub = Engine::with_shared_plans(graph, self.threads, self.plans.clone());
        sub.cap = self.cap;
        sub.max_rounds = self.max_rounds;
        sub.record_metrics = self.record_metrics;
        sub.time_phases = self.time_phases;
        if self.node_stats.is_some() {
            sub.set_record_node_stats(true);
        }
        sub.trace = self.trace.clone();
        // Sub-executors reuse the parent's parked workers and stress
        // plan — a composite algorithm spawns threads exactly once.
        sub.pool = self.pool.clone();
        sub.stress_seed = self.stress_seed;
        sub
    }

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn cap(&self) -> usize {
        self.cap
    }

    fn set_cap(&mut self, cap: usize) {
        assert!(cap >= 1, "bandwidth cap must be at least 1");
        self.cap = cap;
    }

    fn set_max_rounds(&mut self, max_rounds: u64) {
        self.max_rounds = max_rounds;
    }

    fn total(&self) -> RunStats {
        self.total
    }

    fn frontier_total(&self) -> FrontierStats {
        self.frontier
    }

    fn reset_total(&mut self) {
        self.total = RunStats::default();
        self.frontier = FrontierStats::default();
    }

    fn charge(&mut self, stats: RunStats) {
        self.total.absorb(stats);
    }

    fn charge_frontier(&mut self, frontier: FrontierStats) {
        self.frontier.absorb(frontier);
    }

    fn set_record_node_stats(&mut self, record: bool) {
        Engine::set_record_node_stats(self, record)
    }

    fn node_stats(&self) -> Option<&NodeStats> {
        self.node_stats.as_ref()
    }

    fn charge_node_stats(&mut self, other: &NodeStats) {
        if let Some(ns) = self.node_stats.as_mut() {
            ns.absorb(other);
        }
    }

    fn run<P, F>(&mut self, make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        Engine::run(self, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::{Simulator, Word};
    use lightgraph::generators;

    struct Flood {
        have: bool,
    }

    impl Program for Flood {
        type Output = (bool, u64);
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                self.have = true;
                ctx.send_all(Message::words(&[7]));
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            if !self.have && !inbox.is_empty() {
                self.have = true;
                ctx.send_all(Message::words(&[7]));
            }
        }
        fn finish(self) -> (bool, u64) {
            (self.have, 0)
        }
    }

    #[test]
    fn matches_simulator_on_flood() {
        for seed in 0..5 {
            let g = generators::erdos_renyi(64, 0.08, 10, seed);
            let mut sim = Simulator::new(&g);
            let (a, sa) = sim.run(|_, _| Flood { have: false });
            for threads in [1, 2, 5] {
                let mut eng = Engine::with_threads(&g, threads);
                let (b, sb) = eng.run(|_, _| Flood { have: false });
                assert_eq!(a, b, "outputs differ (threads={threads}, seed={seed})");
                assert_eq!(sa, sb, "stats differ (threads={threads}, seed={seed})");
            }
        }
    }

    struct Burst {
        k: usize,
        received: usize,
    }

    impl Program for Burst {
        type Output = usize;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[i as u64]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            self.received += inbox.len();
        }
        fn finish(self) -> usize {
            self.received
        }
    }

    #[test]
    fn bandwidth_cap_pipelines_like_simulator() {
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        let (out, stats) = eng.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats.rounds, 10);
        assert_eq!(out[1], 10);

        let mut eng5 = Engine::with_threads(&g, 2);
        Executor::set_cap(&mut eng5, 5);
        let (_, s5) = eng5.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(s5.rounds, 2);
    }

    #[test]
    fn per_edge_fifo_order_is_preserved() {
        // node 0 sends 0..6 to node 1; they must arrive in order.
        struct Seq {
            k: u64,
            got: Vec<u64>,
        }
        impl Program for Seq {
            type Output = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.node() == 0 {
                    for i in 0..self.k {
                        ctx.send(1, Message::words(&[i]));
                    }
                }
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                for (_, m) in inbox {
                    self.got.push(m.word(0));
                }
            }
            fn finish(self) -> Vec<u64> {
                self.got
            }
        }
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        let (out, _) = eng.run(|_, _| Seq {
            k: 6,
            got: Vec::new(),
        });
        assert_eq!(out[1], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn livelock_guard_fires() {
        struct Chatter;
        impl Program for Chatter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[0]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                let senders: Vec<NodeId> = inbox.iter().map(|&(from, _)| from).collect();
                for from in senders {
                    ctx.send(from, Message::words(&[0]));
                }
            }
            fn finish(self) {}
        }
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        Executor::set_max_rounds(&mut eng, 100);
        eng.run(|_, _| Chatter);
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn livelock_guard_fires_inside_fused_blocks() {
        // Single-threaded (one boundless shard): the whole run executes
        // as fused blocks, and the guard must still stop at max_rounds.
        struct Chatter;
        impl Program for Chatter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[0]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                let senders: Vec<NodeId> = inbox.iter().map(|&(from, _)| from).collect();
                for from in senders {
                    ctx.send(from, Message::words(&[0]));
                }
            }
            fn finish(self) {}
        }
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 1);
        Executor::set_max_rounds(&mut eng, 1000);
        eng.run(|_, _| Chatter);
    }

    #[test]
    fn program_panics_are_forwarded_not_deadlocked() {
        struct Bomb;
        impl Program for Bomb {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[1]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                if ctx.node() == 3 {
                    panic!("boom at node 3");
                }
            }
            fn finish(self) {}
        }
        let g = generators::cycle(8, 1);
        let mut eng = Engine::with_threads(&g, 3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| eng.run(|_, _| Bomb)))
            .expect_err("must propagate");
        let text = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(text.contains("boom"), "unexpected payload {text:?}");
        // The engine (and its pool) must stay usable after the panic.
        let (out, _) = eng.run(|_, _| Flood { have: false });
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn panicking_is_quiescent_is_forwarded_not_deadlocked() {
        struct QuietBomb {
            armed: bool,
        }
        impl Program for QuietBomb {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[1]));
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                self.armed = true;
            }
            fn is_quiescent(&self) -> bool {
                assert!(!self.armed, "quiescence bomb");
                true
            }
            fn finish(self) {}
        }
        let g = generators::cycle(8, 1);
        let mut eng = Engine::with_threads(&g, 3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            eng.run(|_, _| QuietBomb { armed: false })
        }))
        .expect_err("must propagate");
        let text = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            text.contains("quiescence bomb"),
            "unexpected payload {text:?}"
        );
    }

    #[test]
    fn shards_balance_by_degree_not_node_count() {
        // Star: the hub carries almost all the work; its shard must
        // hold far fewer nodes than the leaf shard.
        let g = generators::star(31, 9, 1);
        let bounds = shard_bounds(&g, 2);
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0].0, 0);
        assert_eq!(bounds[1].1, 31);
        assert_eq!(bounds[0].1, bounds[1].0, "shards are contiguous");
        let hub_shard = bounds[if g.degree(0) > g.degree(30) { 0 } else { 1 }];
        assert!(
            hub_shard.1 - hub_shard.0 < 16,
            "hub shard {hub_shard:?} should be node-light"
        );
        // Work (1 + degree) is near-balanced.
        let work =
            |(lo, hi): (usize, usize)| -> u64 { (lo..hi).map(|v| 1 + g.degree(v) as u64).sum() };
        let (w0, w1) = (work(bounds[0]), work(bounds[1]));
        assert!(w0.abs_diff(w1) <= 1 + g.degree(0) as u64, "{w0} vs {w1}");
    }

    #[test]
    fn shard_bounds_cover_all_nodes_for_any_thread_count() {
        for (n, seed) in [(1usize, 0u64), (7, 1), (40, 2)] {
            let g = generators::erdos_renyi(n, 0.2, 9, seed);
            for threads in 1..=8 {
                let bounds = shard_bounds(&g, threads);
                assert_eq!(bounds.len(), threads);
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[threads - 1].1, n);
                assert!(bounds.windows(2).all(|w| w[0].1 == w[1].0));
            }
        }
    }

    #[test]
    fn plan_shards_covers_nodes_under_stress_and_normally() {
        for (n, seed) in [(1usize, 11u64), (7, 12), (40, 13)] {
            let g = generators::erdos_renyi(n, 0.2, 9, seed);
            for threads in 1..=4 {
                for stress in [None, Some(seed), Some(seed ^ 0xdead_beef)] {
                    let bounds = plan_shards(&g, threads, stress);
                    assert!(!bounds.is_empty());
                    assert_eq!(bounds[0].0, 0);
                    assert_eq!(bounds.last().unwrap().1, n);
                    assert!(bounds.windows(2).all(|w| w[0].1 == w[1].0));
                    assert!(bounds.iter().all(|&(lo, hi)| lo <= hi));
                }
            }
        }
    }

    #[test]
    fn frontier_stats_match_simulator_and_skip_idle_nodes() {
        // Burst over one edge: only the receiver is ever active, so a
        // 10-round run costs 10 invocations (dense: 20), on any thread
        // count, matching the simulator's frontier accounting.
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = congest::Simulator::new(&g);
        sim.run(|_, _| Burst { k: 10, received: 0 });
        for threads in [1, 2] {
            let mut eng = Engine::with_threads(&g, threads);
            let (_, stats) = eng.run(|_, _| Burst { k: 10, received: 0 });
            let f = Executor::frontier_total(&eng);
            assert_eq!(f, sim.frontier_total(), "threads={threads}");
            assert_eq!(f.invocations, 10);
            assert_eq!(f.peak_active, 1);
            assert!(f.invocations < stats.rounds * g.n() as u64, "skips idle");
        }
    }

    #[test]
    fn report_collects_histograms_and_hot_edges() {
        let g = lightgraph::Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 2);
        eng.set_record_metrics(true);
        let (_, stats) = eng.run(|_, _| Burst { k: 4, received: 0 });
        let report = eng.last_report().expect("recording enabled");
        assert_eq!(report.rounds, stats.rounds);
        assert_eq!(report.total_messages, stats.messages);
        assert_eq!(report.messages_delivered, stats.messages_delivered());
        assert_eq!(report.messages_combined, stats.messages_combined);
        assert_eq!(
            report.messages_per_round.iter().sum::<u64>(),
            report.messages_delivered
        );
        assert_eq!(
            report.active_per_round.iter().sum::<u64>(),
            Executor::frontier_total(&eng).invocations,
            "active histogram sums to the invocation count"
        );
        assert_eq!(
            report.peak_active(),
            Executor::frontier_total(&eng).peak_active
        );
        assert_eq!(report.hot_edges[0].0, 0, "edge 0 carries the burst");
        assert_eq!(
            report.peak_queue_depth(),
            3,
            "k-1 messages remain after round 1"
        );
        assert_eq!(report.threads, 2);
    }

    #[test]
    fn fused_blocks_keep_report_series_exact() {
        // Single-thread runs fuse whole bursts into barrier-free
        // blocks; every per-round histogram column must still match
        // the barriered multi-thread schedule bit for bit.
        let g = generators::path(24, 1);
        let mut sim = Simulator::new(&g);
        let (os, ss) = sim.run(|_, _| Flood { have: false });
        let mut reference: Option<EngineReport> = None;
        for threads in [1, 2, 4] {
            let mut eng = Engine::with_threads(&g, threads);
            eng.set_record_metrics(true);
            let (oe, se) = eng.run(|_, _| Flood { have: false });
            assert_eq!(os, oe, "outputs (threads={threads})");
            assert_eq!(ss, se, "stats (threads={threads})");
            assert_eq!(
                sim.frontier_total(),
                Executor::frontier_total(&eng),
                "frontier (threads={threads})"
            );
            let report = eng.last_report().expect("recording enabled");
            if let Some(r) = reference.as_ref() {
                assert_eq!(
                    r.messages_per_round, report.messages_per_round,
                    "messages/round (threads={threads})"
                );
                assert_eq!(
                    r.active_per_round, report.active_per_round,
                    "active/round (threads={threads})"
                );
                assert_eq!(
                    r.max_queue_depth_per_round, report.max_queue_depth_per_round,
                    "depth/round (threads={threads})"
                );
                assert_eq!(
                    r.hot_edges, report.hot_edges,
                    "hot edges (threads={threads})"
                );
            } else {
                reference = Some(report.clone());
            }
        }
    }

    #[test]
    fn stress_seeds_never_change_outputs() {
        // Randomized shard cuts and steal orders must be invisible:
        // same outputs, stats, frontier, and report series for every
        // seed. This is the in-tree face of ENGINE_SHARD_STRESS=1.
        let g = generators::erdos_renyi(48, 0.1, 9, 3);
        let mut sim = Simulator::new(&g);
        let (os, ss) = sim.run(|_, _| Flood { have: false });
        for threads in [1, 3] {
            for seed in 0..6u64 {
                let mut eng = Engine::with_threads(&g, threads);
                eng.set_shard_stress_seed(Some(seed));
                eng.set_record_metrics(true);
                let (oe, se) = eng.run(|_, _| Flood { have: false });
                assert_eq!(os, oe, "outputs (threads={threads}, seed={seed})");
                assert_eq!(ss, se, "stats (threads={threads}, seed={seed})");
                assert_eq!(
                    sim.frontier_total(),
                    Executor::frontier_total(&eng),
                    "frontier (threads={threads}, seed={seed})"
                );
            }
        }
    }

    /// Same program as the simulator's combining unit test: node 0
    /// stages `k` same-key messages in one burst; the min-combiner
    /// collapses them to one survivor.
    struct KeyedBurst {
        k: u64,
        got: Vec<u64>,
    }

    impl Program for KeyedBurst {
        type Output = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[5, 100 - i]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            for (_, m) in inbox {
                self.got.push(m.word(1));
            }
        }
        fn combine_key(&self, msg: &Message) -> Option<Word> {
            Some(msg.word(0))
        }
        fn combine(&self, queued: &Message, incoming: &Message) -> Message {
            Message::words(&[queued.word(0), queued.word(1).min(incoming.word(1))])
        }
        fn finish(self) -> Vec<u64> {
            self.got
        }
    }

    #[test]
    fn combiner_matches_simulator_bit_for_bit() {
        let g = generators::cycle(8, 1);
        let mut sim = Simulator::new(&g);
        let (os, ss) = sim.run(|_, _| KeyedBurst {
            k: 10,
            got: Vec::new(),
        });
        assert_eq!(ss.messages_combined, 9, "the burst merged");
        assert_eq!(ss.messages_delivered(), ss.messages - 9);
        for threads in [1, 2, 3] {
            let mut eng = Engine::with_threads(&g, threads);
            eng.set_record_metrics(true);
            let (oe, se) = eng.run(|_, _| KeyedBurst {
                k: 10,
                got: Vec::new(),
            });
            assert_eq!(os, oe, "outputs (threads={threads})");
            assert_eq!(ss, se, "stats incl. combine counters (threads={threads})");
            assert_eq!(
                sim.frontier_total(),
                Executor::frontier_total(&eng),
                "frontier (threads={threads})"
            );
            let report = eng.last_report().expect("recording enabled");
            assert_eq!(report.messages_combined, se.messages_combined);
            assert_eq!(report.messages_delivered, se.messages_delivered());
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g0 = lightgraph::Graph::new(0);
        let mut e0 = Engine::new(&g0);
        let (out, stats) = e0.run(|_, _| Flood { have: false });
        assert!(out.is_empty());
        assert_eq!(stats, RunStats::default());

        let g1 = lightgraph::Graph::new(1);
        let mut e1 = Engine::new(&g1);
        let (out, stats) = e1.run(|_, _| Flood { have: false });
        assert_eq!(out.len(), 1);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn totals_accumulate_and_sub_inherits() {
        let g = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut eng = Engine::with_threads(&g, 1);
        eng.run(|_, _| Burst { k: 3, received: 0 });
        eng.run(|_, _| Burst { k: 4, received: 0 });
        assert_eq!(Executor::total(&eng).rounds, 7);
        Executor::set_cap(&mut eng, 3);
        let h = lightgraph::Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let sub = Executor::sub(&eng, &h);
        assert_eq!(Executor::cap(&sub), 3);
        assert_eq!(Executor::total(&sub), RunStats::default());
    }
}
