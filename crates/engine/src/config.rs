//! Minimal TOML-subset parser for scenario configs.
//!
//! crates.io is unreachable in the build environment, so instead of the
//! `toml` crate the scenario runner parses the subset it needs:
//! top-level `key = value` pairs, `[table]` sections, `[[array]]`
//! array-of-tables sections, comments, and scalar/array values
//! (integers, floats, booleans, `"strings"`, `[a, b, c]`). That covers
//! every scenario file in `crates/engine/scenarios/`; anything fancier
//! (dotted keys, inline tables, multiline strings) is rejected with a
//! line-numbered error rather than misparsed.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// Double-quoted string.
    Str(String),
    /// Homogeneous or heterogeneous array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// Integer view (floats with zero fraction coerce).
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            Value::Int(x) => Some(x),
            Value::Float(f) if f.fract() == 0.0 => Some(f as i64),
            _ => None,
        }
    }

    /// Float view (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(x) => Some(x as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }
}

/// A flat `key → value` table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    entries: BTreeMap<String, Value>,
}

impl Table {
    /// Raw value lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Integer with default.
    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        self.get(key).and_then(Value::as_int).unwrap_or(default)
    }

    /// Float with default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.get(key).and_then(Value::as_f64).unwrap_or(default)
    }

    /// Bool with default.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        self.get(key).and_then(Value::as_bool).unwrap_or(default)
    }

    /// String with default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).and_then(Value::as_str).unwrap_or(default)
    }

    /// Integer array (empty if absent).
    pub fn ints(&self, key: &str) -> Vec<i64> {
        self.get(key)
            .and_then(Value::as_array)
            .map(|xs| xs.iter().filter_map(Value::as_int).collect())
            .unwrap_or_default()
    }

    /// String array (empty if absent).
    pub fn strs(&self, key: &str) -> Vec<String> {
        self.get(key)
            .and_then(Value::as_array)
            .map(|xs| {
                xs.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// A parsed document: root table, named tables, and arrays of tables.
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// Keys above the first section header.
    pub root: Table,
    /// `[name]` sections.
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` sections, in file order.
    pub table_arrays: BTreeMap<String, Vec<Table>>,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a TOML-subset document.
///
/// # Errors
/// Returns a line-numbered [`ParseError`] on any construct outside the
/// supported subset.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let mut doc = Document::default();
    // (None, None) = root; (Some(name), idx) = table or array element.
    enum Target {
        Root,
        Table(String),
        ArrayElem(String),
    }
    let mut target = Target::Root;

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim();
            if name.is_empty() {
                return Err(err(lineno, "empty [[section]] name"));
            }
            doc.table_arrays
                .entry(name.to_owned())
                .or_default()
                .push(Table::default());
            target = Target::ArrayElem(name.to_owned());
        } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim();
            if name.is_empty() {
                return Err(err(lineno, "empty [section] name"));
            }
            doc.tables.entry(name.to_owned()).or_default();
            target = Target::Table(name.to_owned());
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() || key.contains(['[', ']', '"', '.']) {
                return Err(err(lineno, format!("unsupported key `{key}`")));
            }
            let value = parse_value(value.trim(), lineno)?;
            let table = match &target {
                Target::Root => &mut doc.root,
                Target::Table(name) => doc.tables.get_mut(name).expect("created above"),
                Target::ArrayElem(name) => doc
                    .table_arrays
                    .get_mut(name)
                    .and_then(|v| v.last_mut())
                    .expect("created above"),
            };
            table.entries.insert(key.to_owned(), value);
        } else {
            return Err(err(
                lineno,
                format!("expected `key = value` or a section header, got `{line}`"),
            ));
        }
    }
    Ok(doc)
}

/// Strips a trailing comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ParseError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array (must close on the same line)"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let v = parse_value(part, lineno)?;
            if matches!(v, Value::Array(_)) {
                return Err(err(lineno, "nested arrays are not supported"));
            }
            items.push(v);
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated string"))?;
        if inner.contains('"') {
            return Err(err(lineno, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(inner.to_owned()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let normalized = text.replace('_', "");
    if let Ok(x) = normalized.parse::<i64>() {
        return Ok(Value::Int(x));
    }
    if let Ok(f) = normalized.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(err(lineno, format!("unsupported value `{text}`")))
}

/// Splits an array body on commas (strings in this subset cannot
/// contain commas-in-quotes beyond what `strip_comment` handled, but be
/// conservative anyway).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# global settings
seed = 42
threads = 2          # worker threads
label = "smoke"
verbose = true
ratio = 0.75

[limits]
max_rounds = 1_000_000

[[run]]
family = "erdos-renyi"
sizes = [100, 1000]
algorithms = ["bfs", "mst"]

[[run]]
family = "grid"
sizes = [400]
eps = 0.5
"#;

    #[test]
    fn parses_the_scenario_shape() {
        let doc = parse(SAMPLE).unwrap();
        assert_eq!(doc.root.int_or("seed", 0), 42);
        assert_eq!(doc.root.int_or("threads", 9), 2);
        assert_eq!(doc.root.str_or("label", ""), "smoke");
        assert!(doc.root.bool_or("verbose", false));
        assert_eq!(doc.root.f64_or("ratio", 0.0), 0.75);
        assert_eq!(doc.tables["limits"].int_or("max_rounds", 0), 1_000_000);
        let runs = &doc.table_arrays["run"];
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].str_or("family", ""), "erdos-renyi");
        assert_eq!(runs[0].ints("sizes"), vec![100, 1000]);
        assert_eq!(runs[0].strs("algorithms"), vec!["bfs", "mst"]);
        assert_eq!(runs[1].f64_or("eps", 0.0), 0.5);
        assert!(runs[1].strs("algorithms").is_empty());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let doc = parse("x = 1").unwrap();
        assert_eq!(doc.root.int_or("y", 7), 7);
        assert_eq!(doc.root.str_or("name", "fallback"), "fallback");
        assert!(doc.root.ints("zs").is_empty());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse(r##"tag = "a # b""##).unwrap();
        assert_eq!(doc.root.str_or("tag", ""), "a # b");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("x = [1, 2").unwrap_err();
        assert!(e.message.contains("unterminated array"));
        let e = parse("x = @nope").unwrap_err();
        assert!(e.message.contains("unsupported value"));
    }

    #[test]
    fn float_and_int_coercions() {
        let doc = parse("a = 3.0\nb = 4").unwrap();
        assert_eq!(doc.root.get("a").unwrap().as_int(), Some(3));
        assert_eq!(doc.root.get("b").unwrap().as_f64(), Some(4.0));
        assert_eq!(
            parse("c = 3.5").unwrap().root.get("c").unwrap().as_int(),
            None
        );
    }
}
