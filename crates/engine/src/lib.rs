//! Parallel deterministic CONGEST execution engine.
//!
//! The sequential [`congest::Simulator`] is the semantic reference;
//! this crate provides [`Engine`], a drop-in [`congest::Executor`] that
//! executes the same [`congest::Program`]s over node shards on worker
//! threads, with messages moving through CSR-indexed flat queue arrays
//! ([`csr`]) instead of per-edge hash maps. The engine is
//! **bit-identical** to the simulator — same per-node outputs, same
//! `RunStats` — because per-directed-edge FIFO order and per-node inbox
//! order are preserved exactly (see [`engine`](self) module docs for
//! the argument, and `tests/equivalence.rs` for the property tests).
//!
//! On top of the engine, the [`scenario`] module (exposed by the
//! `scenario` binary in `src/bin/scenario.rs`) sweeps graph family ×
//! size × algorithm from a TOML config and emits JSONL or CSV result
//! rows — the harness for workloads (10⁵⁺ nodes, up to million-node
//! geometric instances) that the micro-bench crate does not reach.
//! Every algorithm in the repository is reachable from a sweep; see
//! [`scenario::ALGORITHMS`].
//!
//! ```
//! use congest::{Executor, Simulator};
//! use congest::tree::build_bfs_tree;
//! use engine::Engine;
//! use lightgraph::generators;
//!
//! let g = generators::erdos_renyi(128, 0.05, 100, 7);
//! let (tree_seq, stats_seq) = build_bfs_tree(&mut Simulator::new(&g), 0);
//! let (tree_par, stats_par) = build_bfs_tree(&mut Engine::with_threads(&g, 4), 0);
//! assert_eq!(tree_seq.parent, tree_par.parent);
//! assert_eq!(stats_seq, stats_par);
//! ```

pub mod config;
pub mod csr;
pub mod pool;
pub mod report;
pub mod scenario;

mod engine;
mod plan;

pub use engine::Engine;
pub use report::EngineReport;
