//! CSR indexing of the directed-edge space.
//!
//! The engine addresses every *directed* edge with a dense id
//! `2 * edge_id + dir` (`dir` 0 = `u → v`, 1 = `v → u`), the same
//! numbering the sequential simulator uses for its queue array. Two
//! compressed views are precomputed per graph:
//!
//! * **out** — for each node, `(neighbor, directed id)` pairs sorted by
//!   neighbor, keeping the smallest edge id per neighbor. This mirrors
//!   `Simulator`'s `edge_of` map (`entry(..).or_insert(..)` keeps the
//!   first edge), so sends on graphs with parallel edges route
//!   identically on both engines.
//! * **in** — for each node, its incoming directed ids in ascending
//!   order. Ascending directed id order *is* the sequential delivery
//!   order (edge id ascending, direction `u→v` before `v→u`), so a
//!   round's inbox assembled by walking this list is bit-identical to
//!   the simulator's.

use lightgraph::{Graph, NodeId};
use std::collections::VecDeque;

/// Dense id of a directed edge: `2 * edge_id + dir`.
pub type DirectedId = usize;

/// Shard-locality metadata for one `(graph, shard cuts)` pair: which
/// shard owns each node, and how far (in hops, along intra-shard paths)
/// each node sits from the nearest *boundary* node of its shard.
///
/// A **boundary** node is one with at least one incident edge whose
/// other endpoint lives in a different shard; its distance is 0. The
/// distance is the fusion-eligibility metric of the engine's
/// barrier-eliding round fusion (determinism-contract clause 9 in
/// `congest::exec`): activation spreads at most one hop per round, so
/// if every node that can become active next round has distance `≥ K`,
/// the next `K` rounds touch only shard-local directed edges and every
/// shard may execute them without a global barrier.
///
/// Nodes with no intra-shard path to any boundary node (in particular
/// every node when there is a single shard) get [`ShardLocality::FAR`]
/// — they can never reach a cross-shard edge, so fusion is unbounded.
#[derive(Debug, Clone)]
pub struct ShardLocality {
    /// Shard owning each node (`bounds` index).
    pub shard_of: Vec<u32>,
    /// Intra-shard hop distance to the nearest boundary node;
    /// [`ShardLocality::FAR`] when unreachable.
    pub dist_to_boundary: Vec<u32>,
}

impl ShardLocality {
    /// Distance of a node that can never reach a cross-shard edge.
    pub const FAR: u32 = u32::MAX;

    /// Builds the metadata by a multi-source BFS from all boundary
    /// nodes, restricted to intra-shard edges. `O(n + m)`.
    ///
    /// `bounds` are contiguous `[lo, hi)` node ranges covering `0..n`
    /// (the engine's shard cuts).
    pub fn new(graph: &Graph, bounds: &[(usize, usize)]) -> Self {
        let n = graph.n();
        let mut shard_of = vec![0u32; n];
        for (s, &(lo, hi)) in bounds.iter().enumerate() {
            shard_of[lo..hi].iter_mut().for_each(|x| *x = s as u32);
        }
        let mut dist = vec![Self::FAR; n];
        let mut queue = VecDeque::new();
        for v in 0..n {
            let cross = graph
                .neighbors(v)
                .iter()
                .any(|&(u, _, _)| shard_of[u] != shard_of[v]);
            if cross {
                dist[v] = 0;
                queue.push_back(v);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &(u, _, _) in graph.neighbors(v) {
                if shard_of[u] == shard_of[v] && dist[u] == Self::FAR {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        ShardLocality {
            shard_of,
            dist_to_boundary: dist,
        }
    }
}

/// Precomputed directed-edge indexing for one graph.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Flattened per-node `(neighbor, directed out id)` pairs, sorted by
    /// neighbor id within each node.
    out_pairs: Vec<(NodeId, DirectedId)>,
    /// Node offsets into `out_pairs` (`n + 1` entries).
    out_offsets: Vec<usize>,
    /// Flattened per-node incoming directed ids, ascending within each
    /// node.
    in_ids: Vec<DirectedId>,
    /// Node offsets into `in_ids` (`n + 1` entries).
    in_offsets: Vec<usize>,
}

impl Csr {
    /// Builds the indexing in `O(n + m log(max degree))`.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.n();
        let mut out_pairs: Vec<Vec<(NodeId, DirectedId)>> = vec![Vec::new(); n];
        let mut in_counts = vec![0usize; n];
        for (id, e) in graph.edges().iter().enumerate() {
            out_pairs[e.u].push((e.v, 2 * id));
            out_pairs[e.v].push((e.u, 2 * id + 1));
            in_counts[e.v] += 1;
            in_counts[e.u] += 1;
        }
        let mut flat_out = Vec::with_capacity(2 * graph.m());
        let mut out_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0);
        for pairs in &mut out_pairs {
            // Sort by (neighbor, directed id): with parallel edges the
            // smallest edge id per neighbor comes first, which is the
            // one binary search will find and use — matching the
            // simulator's first-edge routing.
            pairs.sort_unstable();
            flat_out.extend_from_slice(pairs);
            out_offsets.push(flat_out.len());
        }

        let mut in_offsets = Vec::with_capacity(n + 1);
        in_offsets.push(0);
        let mut acc = 0;
        for v in 0..n {
            acc += in_counts[v];
            in_offsets.push(acc);
        }
        let mut cursor: Vec<usize> = in_offsets[..n].to_vec();
        let mut in_ids = vec![0; 2 * graph.m()];
        // Edge-id ascending iteration fills each node's incoming list in
        // ascending directed id order (2*id targets e.v before 2*id+1
        // targets e.u, and ids grow monotonically).
        for (id, e) in graph.edges().iter().enumerate() {
            in_ids[cursor[e.v]] = 2 * id;
            cursor[e.v] += 1;
            in_ids[cursor[e.u]] = 2 * id + 1;
            cursor[e.u] += 1;
        }

        Csr {
            out_pairs: flat_out,
            out_offsets,
            in_ids,
            in_offsets,
        }
    }

    /// Total number of directed edges (`2m`).
    pub fn directed_len(&self) -> usize {
        self.in_ids.len()
    }

    /// `(neighbor, directed id)` pairs for sends from `v`, sorted by
    /// neighbor.
    pub fn out(&self, v: NodeId) -> &[(NodeId, DirectedId)] {
        &self.out_pairs[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// The directed id used for sends `from → to` (the smallest-id edge
    /// between them, like the simulator).
    ///
    /// # Panics
    /// Panics if no edge connects `from` and `to`.
    pub fn out_id(&self, from: NodeId, to: NodeId) -> DirectedId {
        let pairs = self.out(from);
        let i = pairs.partition_point(|&(nbr, _)| nbr < to);
        match pairs.get(i) {
            Some(&(nbr, d)) if nbr == to => d,
            _ => panic!("no edge between {from} and {to}"),
        }
    }

    /// Incoming directed ids of `v`, in delivery order.
    pub fn incoming(&self, v: NodeId) -> &[DirectedId] {
        &self.in_ids[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// The sender of a directed edge, given the graph.
    pub fn sender(graph: &Graph, d: DirectedId) -> NodeId {
        let e = graph.edge(d / 2);
        if d.is_multiple_of(2) {
            e.u
        } else {
            e.v
        }
    }

    /// The receiver of a directed edge, given the graph. The engine's
    /// touched-edge queue tracking routes a freshly charged edge to the
    /// worker shard owning this node.
    pub fn receiver(graph: &Graph, d: DirectedId) -> NodeId {
        let e = graph.edge(d / 2);
        if d.is_multiple_of(2) {
            e.v
        } else {
            e.u
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_and_in_views_agree_with_the_graph() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 2), (0, 2, 3), (2, 3, 1)]).unwrap();
        let csr = Csr::new(&g);
        assert_eq!(csr.directed_len(), 8);
        // node 2's incoming: edge1 dir0 (1->2) = 2, edge2 dir0 (0->2) = 4,
        // edge3 dir1 (3->2) = 7
        assert_eq!(csr.incoming(2), &[2, 4, 7]);
        // node 0 sends to 1 via directed 0 (edge0 u-side), to 2 via 4
        assert_eq!(csr.out_id(0, 1), 0);
        assert_eq!(csr.out_id(0, 2), 4);
        // node 2 sends to 0 via directed 5 (edge2 v-side)
        assert_eq!(csr.out_id(2, 0), 5);
        for d in 0..8 {
            let s = Csr::sender(&g, d);
            let r = Csr::receiver(&g, d);
            let e = g.edge(d / 2);
            assert_eq!(s, if d % 2 == 0 { e.u } else { e.v });
            assert_eq!(r, if d % 2 == 0 { e.v } else { e.u });
        }
    }

    #[test]
    fn parallel_edges_route_via_smallest_edge_id() {
        let mut g = Graph::new(2);
        let e0 = g.add_edge(0, 1, 5).unwrap();
        let _e1 = g.add_edge(0, 1, 1).unwrap();
        let csr = Csr::new(&g);
        assert_eq!(csr.out_id(0, 1), 2 * e0);
        assert_eq!(csr.out_id(1, 0), 2 * e0 + 1);
        // both parallel edges still deliver
        assert_eq!(csr.incoming(1), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "no edge between")]
    fn missing_edge_panics() {
        let g = Graph::from_edges(3, [(0, 1, 1)]).unwrap();
        Csr::new(&g).out_id(0, 2);
    }

    #[test]
    fn shard_locality_on_a_split_path() {
        // Path 0-1-2-3-4-5 cut into [0,3) and [3,6): nodes 2 and 3 are
        // boundary, distances grow walking away from the cut.
        let g = lightgraph::generators::path(6, 1);
        let loc = ShardLocality::new(&g, &[(0, 3), (3, 6)]);
        assert_eq!(loc.shard_of, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(loc.dist_to_boundary, vec![2, 1, 0, 0, 1, 2]);
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = lightgraph::generators::cycle(9, 1);
        let loc = ShardLocality::new(&g, &[(0, 9)]);
        assert!(loc
            .dist_to_boundary
            .iter()
            .all(|&d| d == ShardLocality::FAR));
    }

    /// Fusion-eligibility predicate properties (contract clause 9 in
    /// `congest::exec`): distance 0 iff boundary, both endpoints of a
    /// cross-shard edge are boundary, and the distance is 1-Lipschitz
    /// along intra-shard edges — so an active set at distance `≥ K`
    /// stays strictly interior for `K` rounds of one-hop spreading.
    #[test]
    fn dist_to_boundary_is_zero_iff_boundary_and_lipschitz() {
        for seed in 0..8u64 {
            let g = lightgraph::generators::erdos_renyi(40, 0.12, 9, seed);
            let n = g.n();
            // Random-ish contiguous cuts derived from the seed.
            let c1 = 1 + (seed as usize * 7) % (n - 2);
            let c2 = c1 + 1 + (seed as usize * 11) % (n - c1 - 1);
            let bounds = [(0, c1), (c1, c2), (c2, n)];
            let loc = ShardLocality::new(&g, &bounds);
            for v in 0..n {
                let boundary = g
                    .neighbors(v)
                    .iter()
                    .any(|&(u, _, _)| loc.shard_of[u] != loc.shard_of[v]);
                assert_eq!(loc.dist_to_boundary[v] == 0, boundary, "node {v}");
                for &(u, _, _) in g.neighbors(v) {
                    if loc.shard_of[u] == loc.shard_of[v] {
                        let (a, b) = (loc.dist_to_boundary[v], loc.dist_to_boundary[u]);
                        if a != ShardLocality::FAR || b != ShardLocality::FAR {
                            assert!(
                                a != ShardLocality::FAR
                                    && b != ShardLocality::FAR
                                    && a.abs_diff(b) <= 1,
                                "distance not 1-Lipschitz on edge {v}-{u}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }
}
