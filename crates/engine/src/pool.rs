//! Persistent worker pool for the engine.
//!
//! The engine runs thousands of short [`Engine::run`] calls per
//! algorithm (every sub-phase of a composite algorithm is its own run),
//! so spawning OS threads per run — let alone per round — would
//! dominate at thin frontiers. [`WorkerPool`] spawns its threads
//! **once** and parks them between jobs: a run publishes one
//! type-erased job closure, the pool threads execute it as workers
//! `1..active` while the caller runs worker 0, and everyone parks again
//! until the next run. The pool is shared across sub-executors via
//! `Arc` (see `Engine::sub`), so a whole composite algorithm reuses one
//! set of threads.
//!
//! [`Engine::run`]: crate::Engine::run
//!
//! # Safety model
//!
//! The published job is a raw `*const (dyn Fn(usize) + Sync)` borrowed
//! from the caller's stack. [`WorkerPool::scope`] does not return —
//! even when the caller's own closure panics — until every
//! participating pool thread has finished the job, so the borrow
//! strictly outlives every use. Panics on pool threads are caught,
//! stashed, and re-raised on the calling thread after the job
//! completes, mirroring `std::thread::scope` semantics.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased job pointer. Sound to send across threads because the
/// pointee is `Sync` and `scope` guarantees the borrow outlives use.
struct JobPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for JobPtr {}

#[derive(Default)]
struct Slot {
    job: Option<JobPtr>,
    /// Workers `1..active` participate in the current job (worker 0 is
    /// the caller); pool threads with larger indices skip it.
    active: usize,
    /// Monotone job generation; pool threads run each generation once.
    gen: u64,
    /// Participating pool threads still running the current job.
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Signals pool threads that a new job (or shutdown) is available.
    work: Condvar,
    /// Signals the caller that the last participant finished.
    done: Condvar,
}

/// A fixed set of parked worker threads executing one job at a time.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

fn pool_main(shared: Arc<Shared>, index: usize) {
    let mut seen_gen = 0u64;
    loop {
        let (ptr, active) = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.gen != seen_gen && slot.job.is_some() {
                    break;
                }
                slot = shared.work.wait(slot).unwrap();
            }
            seen_gen = slot.gen;
            (slot.job.as_ref().expect("checked above").0, slot.active)
        };
        let wid = index + 1;
        if wid < active {
            // SAFETY: `scope` blocks until `remaining` hits zero, so
            // the pointee is alive for the duration of this call.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*ptr)(wid) }));
            let mut slot = shared.slot.lock().unwrap();
            if let Err(payload) = result {
                if slot.panic.is_none() {
                    slot.panic = Some(payload);
                }
            }
            slot.remaining -= 1;
            if slot.remaining == 0 {
                shared.done.notify_one();
            }
        }
    }
}

impl WorkerPool {
    /// Spawns `workers` parked threads (callers add themselves as
    /// worker 0, so a `threads`-way engine needs `threads - 1`).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{}", i + 1))
                    .spawn(move || pool_main(sh, i))
                    .expect("spawn engine worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of pool threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job(wid)` for `wid` in `1..active` on pool threads while
    /// the caller runs `main()` as worker 0; returns `main`'s result
    /// once every participant finished. `active - 1` must not exceed
    /// [`WorkerPool::workers`]. Panics anywhere are forwarded here —
    /// after completion, so borrows stay sound.
    pub fn scope<R>(
        &self,
        active: usize,
        job: &(dyn Fn(usize) + Sync),
        main: impl FnOnce() -> R,
    ) -> R {
        assert!(active >= 1 && active - 1 <= self.handles.len());
        {
            let mut slot = self.shared.slot.lock().unwrap();
            debug_assert!(slot.job.is_none() && slot.remaining == 0);
            // Lifetime erasure; see the module-level safety model.
            let raw: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
            slot.job = Some(JobPtr(raw));
            slot.active = active;
            slot.gen += 1;
            slot.remaining = active - 1;
            self.shared.work.notify_all();
        }
        let main_result = catch_unwind(AssertUnwindSafe(main));
        let pool_panic = {
            let mut slot = self.shared.slot.lock().unwrap();
            while slot.remaining > 0 {
                slot = self.shared.done.wait(slot).unwrap();
            }
            slot.job = None;
            slot.panic.take()
        };
        if let Some(payload) = pool_panic {
            resume_unwind(payload);
        }
        match main_result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn reuses_threads_across_jobs_and_respects_active() {
        let pool = WorkerPool::new(3);
        let hits = AtomicU64::new(0);
        let job = |wid: usize| {
            hits.fetch_add(1 << (8 * wid), Ordering::SeqCst);
        };
        // Full width: workers 1..4 run the job, caller runs wid 0.
        let r = pool.scope(4, &job, || {
            job(0);
            42
        });
        assert_eq!(r, 42);
        assert_eq!(hits.swap(0, Ordering::SeqCst), 0x01_01_01_01);
        // Narrow job on the same pool: only worker 1 participates.
        pool.scope(2, &job, || job(0));
        assert_eq!(hits.load(Ordering::SeqCst), 0x01_01);
    }

    #[test]
    fn forwards_pool_thread_panics_after_completion() {
        let pool = WorkerPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(
                3,
                &|wid: usize| {
                    if wid == 2 {
                        panic!("pool boom");
                    }
                },
                || (),
            )
        }))
        .expect_err("must propagate");
        let text = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(text.contains("pool boom"), "unexpected payload {text:?}");
        // The pool is still usable after a panic.
        let ok = pool.scope(3, &|_wid| {}, || true);
        assert!(ok);
    }
}
