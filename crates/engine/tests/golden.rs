//! Golden-file test for the scenario runner: `scenarios/quick.toml` is
//! executed in-process (both output formats) and the rows must match
//! the committed fixtures byte-for-byte after scrubbing the
//! machine-dependent fields (`wall_ms`, `threads`, and the per-phase
//! wall columns `deliver_ms`/`compute_ms`/`barrier_ms`) and the two
//! frontier-bookkeeping fields (`active_peak`, `active_mean` — they
//! are deterministic, but scrubbed so fixtures pin the *simulated*
//! algorithm, not the scheduler's accounting). The per-node message
//! summary columns (`msg_max_node`, `msg_max`, `msg_p50`, `msg_p99`)
//! are deterministic and engine-identical (clause 8), so they stay
//! pinned.
//!
//! Everything else — field order, seeds, graph sizes, round and message
//! counts, headline metrics, engine instrumentation peaks — is pinned:
//! the generators are seeded, and the engines are deterministic by the
//! `congest::exec` contract, so any diff is a real behavior change.
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p engine --test golden
//! ```
//!
//! CI diffs the real `scenario` binary's output against the same
//! fixtures, scrubbing through `scripts/scrub_golden.sh` — keep that
//! script's field list in sync with [`SCRUBBED_FIELDS`].

use engine::config;
use engine::scenario::run_sweep;
use std::path::PathBuf;

const CONFIG: &str = include_str!("../scenarios/quick.toml");

/// Runs quick.toml in-process with extra root keys prepended (the
/// config's own keys win on duplicates, so only *new* keys like
/// `format` may be injected this way).
fn run_quick(extra_root_keys: &str) -> String {
    let text = format!("{extra_root_keys}\n{CONFIG}");
    let doc = config::parse(&text).expect("quick.toml parses");
    let mut buf = Vec::new();
    run_sweep(&doc, &mut buf).expect("quick sweep runs");
    String::from_utf8(buf).expect("output is UTF-8")
}

/// Replaces the value of a `"key":<number>` JSON field with `_`.
fn scrub_json_field(line: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let Some(start) = line.find(&needle) else {
        return line.to_owned();
    };
    let vstart = start + needle.len();
    let vend = line[vstart..]
        .find([',', '}'])
        .map(|i| vstart + i)
        .expect("JSON value terminates");
    format!("{}_{}", &line[..vstart], &line[vend..])
}

const SCRUBBED_FIELDS: [&str; 7] = [
    "wall_ms",
    "threads",
    "active_peak",
    "active_mean",
    "deliver_ms",
    "compute_ms",
    "barrier_ms",
];

fn scrub_jsonl(out: &str) -> String {
    out.lines()
        .map(|l| {
            SCRUBBED_FIELDS
                .iter()
                .fold(l.to_owned(), |line, key| scrub_json_field(&line, key))
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn scrub_csv(out: &str) -> String {
    let mut lines = out.lines();
    let header = lines.next().expect("CSV header").to_owned();
    let ncols = header.split(',').count();
    let scrub_idx: Vec<usize> = header
        .split(',')
        .enumerate()
        .filter(|(_, c)| SCRUBBED_FIELDS.contains(c))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        scrub_idx.len(),
        SCRUBBED_FIELDS.len(),
        "header carries every scrubbed column"
    );
    let mut result = vec![header];
    for line in lines {
        let mut fields: Vec<String> = line.split(',').map(str::to_owned).collect();
        assert_eq!(fields.len(), ncols, "row width matches header");
        for &i in &scrub_idx {
            fields[i] = "_".to_owned();
        }
        result.push(fields.join(","));
    }
    result.join("\n") + "\n"
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_against_fixture(scrubbed: &str, name: &str) {
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        std::fs::write(&path, scrubbed).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        scrubbed, expected,
        "{name} drifted from the committed fixture; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p engine --test golden"
    );
}

#[test]
fn quick_jsonl_matches_fixture() {
    let out = run_quick("");
    check_against_fixture(&scrub_jsonl(&out), "quick.jsonl");
}

#[test]
fn quick_csv_matches_fixture() {
    let out = run_quick("format = \"csv\"");
    check_against_fixture(&scrub_csv(&out), "quick.csv");
}

#[test]
fn jsonl_and_csv_agree_row_for_row() {
    let jsonl = run_quick("");
    let csv = run_quick("format = \"csv\"");
    let json_rows: Vec<&str> = jsonl.lines().collect();
    let csv_rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(json_rows.len(), csv_rows.len(), "same cell count");
    for (j, c) in json_rows.iter().zip(&csv_rows) {
        // Spot-check invariant fields appear identically in both modes.
        let fields: Vec<&str> = c.split(',').collect();
        let (family, n, algorithm, rounds) = (fields[0], fields[1], fields[3], fields[7]);
        assert!(
            j.contains(&format!("\"family\":\"{family}\"")),
            "family in {j}"
        );
        assert!(j.contains(&format!("\"n\":{n},")), "n in {j}");
        assert!(
            j.contains(&format!("\"algorithm\":\"{algorithm}\"")),
            "algorithm in {j}"
        );
        assert!(
            j.contains(&format!("\"rounds\":{rounds},")),
            "rounds in {j}"
        );
    }
}
