//! Schema validation for the observability trace (`trace = "…"` in a
//! scenario config): runs a small two-algorithm sweep on both engines
//! with a trace sink attached and checks every emitted JSONL record
//! against the documented shape — `run` records declaring engine runs,
//! `round` records referencing a declared run, and `span` records
//! carrying the per-cell span tree. Also re-checks observer
//! neutrality (contract clause 8) at the trace level: the
//! deterministic span fields must be bit-identical between the `sim`
//! and `parallel` scopes of the same cell.

use engine::config;
use engine::scenario::run_sweep;
use std::collections::{BTreeMap, BTreeSet};

/// Extracts the raw value text of `"key":<value>` from a JSONL line.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..]
        .char_indices()
        .scan(false, |in_str, (i, c)| match c {
            '"' => {
                *in_str = !*in_str;
                Some((i, c))
            }
            ',' | '}' if !*in_str => None,
            _ => Some((i, c)),
        })
        .last()
        .map_or(start, |(i, _)| start + i + 1);
    Some(&line[start..end])
}

fn u64_field(line: &str, key: &str) -> u64 {
    raw_field(line, key)
        .unwrap_or_else(|| panic!("missing `{key}` in {line}"))
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` not a u64 in {line}: {e}"))
}

fn str_field<'a>(line: &'a str, key: &str) -> &'a str {
    raw_field(line, key)
        .unwrap_or_else(|| panic!("missing `{key}` in {line}"))
        .trim_matches('"')
}

#[test]
fn trace_jsonl_schema_is_valid_and_engine_neutral() {
    let path = std::env::temp_dir().join(format!(
        "lightnet_trace_schema_{}.jsonl",
        std::process::id()
    ));
    let text = format!(
        "seed = 5\nthreads = 2\nengine = \"both\"\nrecord_metrics = true\n\
         trace = \"{}\"\n\n\
         [[run]]\nfamily = \"grid\"\nsizes = [64]\nalgorithms = [\"bfs\", \"slt\"]\n",
        path.display()
    );
    let doc = config::parse(&text).expect("inline config parses");
    let mut out = Vec::new();
    run_sweep(&doc, &mut out).expect("traced sweep runs");
    // The sink flushes on drop inside run_sweep, so the file is
    // complete here.
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    assert!(!trace.is_empty(), "trace file is non-empty");

    let mut runs: BTreeMap<u64, String> = BTreeMap::new(); // run id -> engine
    let mut kinds: BTreeSet<&str> = BTreeSet::new();
    // (scope-with-engine-blanked, path) -> deterministic span fields.
    let mut spans: BTreeMap<(String, String), [u64; 6]> = BTreeMap::new();
    let mut scopes: BTreeSet<String> = BTreeSet::new();
    for line in trace.lines() {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "record is a JSON object: {line}"
        );
        let kind = str_field(line, "type");
        match kind {
            "run" => {
                let id = u64_field(line, "run");
                let engine = str_field(line, "engine");
                assert!(
                    engine == "sim" || engine == "parallel",
                    "known engine in {line}"
                );
                assert_eq!(id as usize, runs.len() + 1, "run ids are sequential");
                runs.insert(id, engine.to_owned());
            }
            "round" => {
                let id = u64_field(line, "run");
                let engine = runs
                    .get(&id)
                    .unwrap_or_else(|| panic!("round references undeclared run {id}"));
                assert!(u64_field(line, "round") >= 1, "rounds are 1-based: {line}");
                for key in ["delivered", "active", "deliver_ns", "compute_ns"] {
                    u64_field(line, key);
                }
                if engine == "sim" {
                    assert_eq!(
                        u64_field(line, "barrier_ns"),
                        0,
                        "sim has no barrier phase: {line}"
                    );
                }
            }
            "span" => {
                let scope = str_field(line, "scope");
                let path = str_field(line, "path");
                assert!(!path.is_empty(), "span path non-empty: {line}");
                // scope = family/n<n>/algorithm/engine/s<seed>
                let parts: Vec<&str> = scope.split('/').collect();
                assert_eq!(parts.len(), 5, "scope has 5 components: {scope}");
                assert!(
                    parts[3] == "sim" || parts[3] == "parallel",
                    "scope engine component: {scope}"
                );
                scopes.insert(scope.to_owned());
                let fields = [
                    u64_field(line, "rounds"),
                    u64_field(line, "messages"),
                    u64_field(line, "messages_combined"),
                    u64_field(line, "messages_delivered"),
                    u64_field(line, "invocations"),
                    u64_field(line, "sched_rounds"),
                ];
                u64_field(line, "wall_ns"); // present, machine-dependent
                let mut cell = parts.clone();
                cell[3] = "_";
                let key = (cell.join("/"), path.to_owned());
                match spans.get(&key) {
                    // Clause 8 at the trace level: both engines emit
                    // the same deterministic span numbers.
                    Some(prev) => assert_eq!(*prev, fields, "span {key:?} differs between engines"),
                    None => {
                        spans.insert(key, fields);
                    }
                }
            }
            other => panic!("unknown record type `{other}` in {line}"),
        }
        kinds.insert(match kind {
            "run" => "run",
            "round" => "round",
            _ => "span",
        });
    }

    assert_eq!(
        kinds.into_iter().collect::<Vec<_>>(),
        ["round", "run", "span"],
        "all three record types present"
    );
    let engines: BTreeSet<&str> = runs.values().map(String::as_str).collect();
    assert_eq!(
        engines.into_iter().collect::<Vec<_>>(),
        ["parallel", "sim"],
        "both engines produced runs"
    );
    // 2 algorithms × 2 engines worth of cell scopes.
    assert_eq!(scopes.len(), 4, "one scope per cell per engine: {scopes:?}");
    assert!(
        spans.keys().any(|(_, p)| p.starts_with("slt/")),
        "slt cell carries nested phase spans"
    );
    assert!(
        spans.keys().any(|(_, p)| p == "bfs"),
        "bfs root span present"
    );
}
