//! Property tests: the parallel engine is bit-identical to the
//! sequential simulator.
//!
//! For random Erdős–Rényi and doubling-metric (random geometric)
//! instances, every algorithm reachable from the `scenario` runner —
//! BFS, collectives, MST, SLT, light spanner, Euler tour, nets,
//! doubling spanner, Bellman–Ford, and the landmark SPT — must produce
//! *exactly* the same per-node outputs and the same `RunStats` (rounds,
//! messages, and combine counters) on `congest::Simulator` and on
//! `engine::Engine`, across thread counts. This is the determinism
//! contract of `congest::exec` (see the module docs there for the seven
//! clauses an engine must honor) — the property that lets the engine
//! stand in for the simulator when reproducing the paper's round
//! counts. Clause 7 (per-edge message combining) additionally gets a
//! combined-vs-uncombined equivalence wall: a combine-correct program
//! must reach the same outputs with and without its combiner, and the
//! dense-validation mode must catch a combiner that breaks the algebra.
//! Clause 9 (round fusion) gets adversarial fusion-heavy chain
//! workloads — long shard-local paths where the parallel engine runs
//! most rounds inside barrier-free fused blocks — asserting outputs,
//! `RunStats`, frontier totals, and flattened span trees bit-identical
//! across thread counts and vs the (never-fusing) Simulator.
//!
//! Test-helper conventions (determinism-contract expectations):
//! * every helper runs the algorithm *fresh* on each executor — a
//!   `Simulator` once, then an `Engine` per thread count — so the
//!   cumulative `Executor::total()` counters are comparable;
//! * outputs are compared field-by-field (not just summary metrics):
//!   under the contract the full per-node state must match bit-for-bit,
//!   so any drift is a contract violation, not tolerable noise;
//! * `RunStats` equality is asserted for the algorithm's own stats
//!   *and* (spot-checked) the executor's cumulative totals, because the
//!   contract covers every intermediate phase, not only the last one.

use congest::collective;
use congest::tree::build_bfs_tree;
use congest::{Ctx, Executor, Message, Program, Simulator};
use dist_mst::boruvka::distributed_mst;
use dist_mst::euler::distributed_euler_tour;
use dist_sssp::bellman::bellman_ford;
use dist_sssp::landmark::{approx_spt, SptConfig};
use engine::Engine;
use lightgraph::NodeId;
use lightgraph::{generators, Graph};
use lightnet::nets::net;
use lightnet::{doubling_spanner, light_spanner, shallow_light_tree};
use proptest::prelude::*;

/// Random connected instances: Erdős–Rényi for general graphs and
/// random geometric for the paper's doubling-metric workloads.
fn arb_graph() -> impl Strategy<Value = (Graph, u64)> {
    (8usize..48, 0u64..1_000, 0u64..3).prop_map(|(n, seed, kind)| {
        let g = match kind {
            0 | 1 => {
                let p = (kind + 1) as f64 * 2.0 / n as f64;
                generators::erdos_renyi(n, p.min(0.9), 50, seed)
            }
            _ => {
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
                generators::random_geometric(n, r, seed)
            }
        };
        (g, seed)
    })
}

const THREADS: [usize; 3] = [1, 3, 6];

/// Adversarial activation-contract program: a token starts at node 0
/// with a hop budget and wanders the graph. A node receiving the token
/// goes **non-quiescent** and holds it for `node % 3` silent rounds
/// (exercising empty-inbox carryover scheduling), then forwards it to
/// a deterministically chosen neighbor and goes **quiescent again** —
/// until the token (or another one: `ttl` splits in two every fourth
/// hop) reactivates it by message receipt. Every node also counts its
/// own `round` invocations, so the outputs pin down exactly which
/// rounds each engine scheduled.
struct HoldAndRelay {
    hold_left: u32,
    pending: Vec<u64>,
    tokens_seen: u64,
    invoked: u64,
}

impl Program for HoldAndRelay {
    /// (tokens received, `round` invocations executed).
    type Output = (u64, u64);

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.node() == 0 && ctx.degree() > 0 {
            self.pending.push(12);
            self.hold_left = 2;
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        self.invoked += 1;
        for (_, msg) in inbox {
            self.tokens_seen += 1;
            let ttl = msg.word(0);
            if ttl > 0 {
                if self.pending.is_empty() {
                    self.hold_left = (ctx.node() % 3) as u32;
                }
                self.pending.push(ttl - 1);
                if ttl.is_multiple_of(4) {
                    self.pending.push(ttl / 2);
                }
            }
        }
        if !self.pending.is_empty() {
            if self.hold_left == 0 {
                for (i, ttl) in self.pending.drain(..).enumerate() {
                    let nbrs = ctx.neighbors();
                    let pick = (ctx.node() + i) % nbrs.len();
                    let (to, _, _) = nbrs[pick];
                    ctx.send(to, Message::words(&[ttl]));
                }
            } else {
                self.hold_left -= 1;
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
    }

    fn finish(self) -> (u64, u64) {
        (self.tokens_seen, self.invoked)
    }
}

/// Thread counts for the round-heavy composite algorithms (Euler tour,
/// nets, doubling spanner, landmark SPT): one sequential and one
/// sharded engine keep the suite fast while still exercising the
/// cross-thread determinism contract.
const THREADS_HEAVY: [usize; 2] = [1, 4];

/// Multi-source min-relaxation with a *switchable* per-edge combiner
/// (clause 7): nodes `v < sources` flood `(source, distance)` updates;
/// every node keeps the per-source minimum and re-broadcasts
/// improvements. Run to quiescence the table is the exact multi-source
/// distance map — a fixed point that cannot depend on whether co-queued
/// updates for one source were delivered individually or merged, which
/// is exactly the combine-correctness obligation the proptest pins.
struct MinTable {
    sources: usize,
    use_combiner: bool,
    table: std::collections::BTreeMap<u64, u64>,
}

impl MinTable {
    fn relax(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        let mut improved: Vec<(u64, u64)> = Vec::new();
        for (from, msg) in inbox {
            let w = ctx
                .neighbors()
                .iter()
                .find(|&&(u, _, _)| u == *from)
                .map(|&(_, w, _)| w)
                .expect("sender is a neighbor");
            let (key, val) = (msg.word(0), msg.word(1).saturating_add(w));
            if self.table.get(&key).map(|&d| val < d).unwrap_or(true) {
                self.table.insert(key, val);
                improved.push((key, val));
            }
        }
        for (key, val) in improved {
            ctx.send_all(Message::words(&[key, val]));
        }
    }
}

impl Program for MinTable {
    type Output = Vec<(u64, u64)>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.node() < self.sources {
            let key = ctx.node() as u64;
            self.table.insert(key, 0);
            ctx.send_all(Message::words(&[key, 0]));
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        self.relax(ctx, inbox);
    }

    fn combine_key(&self, msg: &Message) -> Option<congest::Word> {
        self.use_combiner.then(|| msg.word(0))
    }

    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        Message::words(&[queued.word(0), queued.word(1).min(incoming.word(1))])
    }

    fn finish(self) -> Vec<(u64, u64)> {
        self.table.into_iter().collect()
    }
}

/// Clause-7 invisibility workload: node 0 emits `waves` bursts of
/// `BURST` same-key messages, one burst per round, while every other
/// node records the minimum it hears and its own invocation count.
/// With `cap >= BURST` each burst would have been delivered whole in
/// one round anyway, so combining must be *fully* invisible — outputs,
/// per-node invocation counts, rounds, and sent-message counts stay
/// bit-identical; only the delivered volume shrinks.
const BURST: u64 = 3;

struct BurstBeacon {
    use_combiner: bool,
    waves_left: u64,
    min_seen: u64,
    invoked: u64,
}

impl Program for BurstBeacon {
    /// (minimum value heard, `round` invocations executed).
    type Output = (u64, u64);

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.node() != 0 {
            self.waves_left = 0;
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        self.invoked += 1;
        for (_, msg) in inbox {
            self.min_seen = self.min_seen.min(msg.word(1));
        }
        if ctx.node() == 0 && self.waves_left > 0 {
            self.waves_left -= 1;
            let wave = self.waves_left;
            for i in 0..BURST {
                ctx.send_all(Message::words(&[7, wave * 10 + i]));
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.waves_left == 0
    }

    fn combine_key(&self, msg: &Message) -> Option<congest::Word> {
        self.use_combiner.then(|| msg.word(0))
    }

    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        Message::words(&[queued.word(0), queued.word(1).min(incoming.word(1))])
    }

    fn finish(self) -> (u64, u64) {
        (self.min_seen, self.invoked)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_bfs_tree_identical((g, _seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (ts, ss) = build_bfs_tree(&mut sim, 0);
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (te, se) = build_bfs_tree(&mut eng, 0);
            prop_assert_eq!(ss, se, "stats (threads={})", threads);
            prop_assert_eq!(&ts.parent, &te.parent, "parents (threads={})", threads);
            prop_assert_eq!(&ts.depth, &te.depth, "depths (threads={})", threads);
            prop_assert_eq!(&ts.children, &te.children, "children (threads={})", threads);
            prop_assert_eq!(Executor::total(&sim).rounds > 0, Executor::total(&eng).rounds > 0);
        }
    }

    #[test]
    fn prop_broadcast_and_convergecast_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let items: Vec<collective::Item> =
            (0..10).map(|i| (i + seed % 5, [i * 3, i + 1])).collect();
        let (bs, bss) = collective::broadcast(&mut sim, &tau, items.clone());
        let (cs, css) = collective::converge_min(&mut sim, &tau, |v| {
            vec![((v % 7) as u64, [(v * 31 % 13) as u64, v as u64])]
        });
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            prop_assert_eq!(&tau.parent, &tau_e.parent);
            let (be, bse) = collective::broadcast(&mut eng, &tau_e, items.clone());
            prop_assert_eq!(&bs, &be, "broadcast outputs (threads={})", threads);
            prop_assert_eq!(bss, bse, "broadcast stats (threads={})", threads);
            let (ce, cse) = collective::converge_min(&mut eng, &tau_e, |v| {
                vec![((v % 7) as u64, [(v * 31 % 13) as u64, v as u64])]
            });
            prop_assert_eq!(&cs, &ce, "converge outputs (threads={})", threads);
            prop_assert_eq!(css, cse, "converge stats (threads={})", threads);
        }
    }

    #[test]
    fn prop_mst_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ms = distributed_mst(&mut sim, &tau, 0, seed);
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let me = distributed_mst(&mut eng, &tau_e, 0, seed);
            prop_assert_eq!(ms.weight, me.weight, "weight (threads={})", threads);
            prop_assert_eq!(&ms.mst_edges, &me.mst_edges, "edges (threads={})", threads);
            prop_assert_eq!(ms.stats, me.stats, "stats (threads={})", threads);
            prop_assert_eq!(
                Executor::total(&sim).messages,
                Executor::total(&eng).messages,
                "cumulative messages (threads={})", threads
            );
        }
    }

    #[test]
    fn prop_slt_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ss = shallow_light_tree(&mut sim, &tau, 0, 0.5, seed);
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let se = shallow_light_tree(&mut eng, &tau_e, 0, 0.5, seed);
            prop_assert_eq!(&ss.edges, &se.edges, "tree edges (threads={})", threads);
            prop_assert_eq!(ss.breakpoints, se.breakpoints, "breakpoints (threads={})", threads);
            prop_assert_eq!(ss.stats, se.stats, "stats (threads={})", threads);
        }
    }

    #[test]
    fn prop_light_spanner_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ss = light_spanner(&mut sim, &tau, 0, 2, 0.5, seed);
        for threads in THREADS_HEAVY {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let se = light_spanner(&mut eng, &tau_e, 0, 2, 0.5, seed);
            prop_assert_eq!(&ss.edges, &se.edges, "spanner edges (threads={})", threads);
            prop_assert_eq!(ss.case1_buckets, se.case1_buckets, "case1 (threads={})", threads);
            prop_assert_eq!(ss.case2_buckets, se.case2_buckets, "case2 (threads={})", threads);
            prop_assert_eq!(ss.stats, se.stats, "stats (threads={})", threads);
        }
    }

    #[test]
    fn prop_euler_tour_identical((g, seed) in arb_graph()) {
        use congest::obs;
        let mut sim = Simulator::new(&g);
        let (ts, tree_s) = obs::collect_spans(|| {
            let (tau, _) = build_bfs_tree(&mut sim, 0);
            let mst_s = distributed_mst(&mut sim, &tau, 0, seed);
            distributed_euler_tour(&mut sim, &tau, &mst_s, 0)
        });
        // The batched-contraction tour must still equal the sequential
        // Section-3 tour of the (unique) MST, not just agree with itself
        // across engines.
        {
            let mut ref_sim = Simulator::new(&g);
            let (tau, _) = build_bfs_tree(&mut ref_sim, 0);
            let mst = distributed_mst(&mut ref_sim, &tau, 0, seed);
            let t = lightgraph::tree::RootedTree::from_edge_ids(&g, &mst.mst_edges, 0);
            let reference = t.euler_tour();
            let (seq, times) = ts.assemble();
            prop_assert_eq!(&seq, &reference.seq, "tour sequence vs sequential reference");
            prop_assert_eq!(&times, &reference.times, "tour times vs sequential reference");
        }
        for threads in THREADS_HEAVY {
            let mut eng = Engine::with_threads(&g, threads);
            let (te, tree_e) = obs::collect_spans(|| {
                let (tau_e, _) = build_bfs_tree(&mut eng, 0);
                let mst_e = distributed_mst(&mut eng, &tau_e, 0, seed);
                distributed_euler_tour(&mut eng, &tau_e, &mst_e, 0)
            });
            prop_assert_eq!(&ts.appearances, &te.appearances, "appearances (threads={})", threads);
            prop_assert_eq!(ts.total_length, te.total_length, "tour length (threads={})", threads);
            prop_assert_eq!(ts.stats, te.stats, "stats (threads={})", threads);
            prop_assert_eq!(
                Executor::total(&sim),
                Executor::total(&eng),
                "cumulative totals (threads={})", threads
            );
            // Full span tree (grow/merge under mst; frag_tree/reroot/
            // times/indices under tour) must be bit-identical in every
            // deterministic column.
            let fs = tree_s.flatten();
            let fe = tree_e.flatten();
            prop_assert_eq!(fs.len(), fe.len(), "span count (threads={})", threads);
            for ((ps, node_s), (pe, node_e)) in fs.iter().zip(&fe) {
                prop_assert_eq!(ps, pe, "span path (threads={})", threads);
                prop_assert_eq!(node_s.stats, node_e.stats, "span stats at {} (threads={})", ps, threads);
                prop_assert_eq!(
                    node_s.invocations, node_e.invocations,
                    "invocations at {} (threads={})", ps, threads
                );
                prop_assert_eq!(
                    node_s.sched_rounds, node_e.sched_rounds,
                    "sched_rounds at {} (threads={})", ps, threads
                );
            }
        }
    }

    #[test]
    fn prop_nets_identical((g, seed) in arb_graph()) {
        let delta = (g.max_weight() / 4).max(1);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ns = net(&mut sim, &tau, delta, 0.5, seed);
        for threads in THREADS_HEAVY {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let ne = net(&mut eng, &tau_e, delta, 0.5, seed);
            prop_assert_eq!(&ns.points, &ne.points, "net points (threads={})", threads);
            prop_assert_eq!(ns.iterations, ne.iterations, "iterations (threads={})", threads);
            prop_assert_eq!(ns.stats, ne.stats, "stats (threads={})", threads);
        }
    }

    #[test]
    fn prop_doubling_spanner_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ds = doubling_spanner(&mut sim, &tau, 0, 0.5, seed);
        for threads in THREADS_HEAVY {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let de = doubling_spanner(&mut eng, &tau_e, 0, 0.5, seed);
            prop_assert_eq!(&ds.edges, &de.edges, "spanner edges (threads={})", threads);
            prop_assert_eq!(ds.scales, de.scales, "scales (threads={})", threads);
            prop_assert_eq!(ds.stats, de.stats, "stats (threads={})", threads);
        }
    }

    #[test]
    fn prop_bellman_ford_identical((g, _seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let rs = bellman_ford(&mut sim, 0);
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let re = bellman_ford(&mut eng, 0);
            prop_assert_eq!(&rs.dist, &re.dist, "distances (threads={})", threads);
            prop_assert_eq!(&rs.parent, &re.parent, "parents (threads={})", threads);
            prop_assert_eq!(rs.stats, re.stats, "stats (threads={})", threads);
        }
    }

    #[test]
    fn prop_landmark_spt_identical((g, seed) in arb_graph()) {
        let cfg = SptConfig::new(seed);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ss = approx_spt(&mut sim, &tau, 0, &cfg);
        for threads in THREADS_HEAVY {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let se = approx_spt(&mut eng, &tau_e, 0, &cfg);
            prop_assert_eq!(&ss.dist, &se.dist, "estimates (threads={})", threads);
            prop_assert_eq!(&ss.parent, &se.parent, "parents (threads={})", threads);
            prop_assert_eq!(ss.stats, se.stats, "stats (threads={})", threads);
        }
    }

    /// The adaptive probe usually certifies shallow random instances,
    /// so the default-config property above mostly exercises the
    /// probe-only fast path. This variant forces the full landmark
    /// scheme (explicit `landmarks`) under a hop bound tight enough to
    /// truncate, pinning the multi-source relaxation, the unordered-
    /// pair combiner-aware gather, and the landmark-graph broadcast
    /// bit-identical across engines.
    #[test]
    fn prop_landmark_spt_forced_scheme_identical((g, seed) in arb_graph()) {
        let cfg = SptConfig {
            landmarks: Some((g.n() / 4).max(1)),
            hop_bound: Some(3),
            ..SptConfig::new(seed)
        };
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ss = approx_spt(&mut sim, &tau, 0, &cfg);
        for threads in THREADS_HEAVY {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let se = approx_spt(&mut eng, &tau_e, 0, &cfg);
            prop_assert_eq!(&ss.dist, &se.dist, "estimates (threads={})", threads);
            prop_assert_eq!(&ss.parent, &se.parent, "parents (threads={})", threads);
            prop_assert_eq!(ss.stats, se.stats, "stats (threads={})", threads);
            prop_assert_eq!(
                Executor::frontier_total(&eng),
                sim.frontier_total(),
                "frontier stats (threads={})", threads
            );
        }
    }

    /// Activation semantics: programs that go quiescent and later
    /// reactivate on message receipt must behave identically on the
    /// simulator (the frontier-scheduling oracle) and the engine at
    /// every thread count — including the per-node invocation counts,
    /// which pin down *exactly* which rounds each engine scheduled.
    #[test]
    fn prop_reactivation_identical((g, _seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (os, ss) = sim.run(|_, _| HoldAndRelay {
            hold_left: 0,
            pending: Vec::new(),
            tokens_seen: 0,
            invoked: 0,
        });
        let fs = sim.frontier_total();
        // The frontier bookkeeping is honest: counted invocations equal
        // what the programs observed.
        prop_assert_eq!(fs.invocations, os.iter().map(|&(_, i)| i).sum::<u64>());
        prop_assert!(fs.peak_active <= g.n() as u64);
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (oe, se) = eng.run(|_, _| HoldAndRelay {
                hold_left: 0,
                pending: Vec::new(),
                tokens_seen: 0,
                invoked: 0,
            });
            prop_assert_eq!(&os, &oe, "outputs (threads={})", threads);
            prop_assert_eq!(ss, se, "stats (threads={})", threads);
            prop_assert_eq!(
                fs, Executor::frontier_total(&eng),
                "frontier stats (threads={})", threads
            );
        }
    }

    /// Frontier totals agree across engines for a real composite
    /// algorithm too (BFS tree + MST: many intermediate runs).
    #[test]
    fn prop_mst_frontier_totals_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        distributed_mst(&mut sim, &tau, 0, seed);
        for threads in [1usize, 4] {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            distributed_mst(&mut eng, &tau_e, 0, seed);
            prop_assert_eq!(
                sim.frontier_total(),
                Executor::frontier_total(&eng),
                "cumulative frontier stats (threads={})", threads
            );
        }
    }

    /// Clause-7 equivalence, the combined-vs-uncombined wall: a
    /// combine-correct relaxation must reach bit-identical outputs with
    /// and without its combiner (the combiner may only compress the
    /// trajectory — fewer deliveries, never-more rounds), and the
    /// combined run must stay bit-identical across engines and thread
    /// counts, *including* the new combine counters.
    #[test]
    fn prop_combining_preserves_relaxation_outputs((g, _seed) in arb_graph()) {
        let k = (g.n() / 3).max(1);
        let mut sim_u = Simulator::new(&g);
        let (ou, su) = sim_u.run(|_, _| MinTable {
            sources: k, use_combiner: false, table: Default::default(),
        });
        prop_assert_eq!(su.messages_combined, 0, "no combiner, no merges");
        prop_assert_eq!(su.messages_delivered(), su.messages);
        let mut sim_c = Simulator::new(&g);
        let (oc, sc) = sim_c.run(|_, _| MinTable {
            sources: k, use_combiner: true, table: Default::default(),
        });
        prop_assert_eq!(&ou, &oc, "combining changed the fixed point");
        prop_assert!(sc.messages_delivered() <= su.messages_delivered(),
            "combining may only shrink delivered volume");
        prop_assert!(sc.rounds <= su.rounds, "combining may only shrink the backlog");
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (oe, se) = eng.run(|_, _| MinTable {
                sources: k, use_combiner: true, table: Default::default(),
            });
            prop_assert_eq!(&oc, &oe, "outputs (threads={})", threads);
            prop_assert_eq!(sc, se, "stats incl. combine counters (threads={})", threads);
            prop_assert_eq!(
                sim_c.frontier_total(), Executor::frontier_total(&eng),
                "frontier stats (threads={})", threads
            );
        }
    }

    /// Clause-7 invisibility: when the cap does not bind (every burst
    /// would have crossed in one round anyway), combining must leave
    /// outputs, per-node invocation counts, rounds, and sent-message
    /// counts bit-identical — only `messages_combined` moves.
    #[test]
    fn prop_combining_with_slack_cap_is_invisible((g, _seed) in arb_graph(), waves in 1u64..4) {
        let cap = BURST as usize + 1;
        let run_sim = |comb: bool| {
            let mut sim = Simulator::new(&g);
            Executor::set_cap(&mut sim, cap);
            let (o, s) = sim.run(|_, _| BurstBeacon {
                use_combiner: comb, waves_left: waves, min_seen: u64::MAX, invoked: 0,
            });
            (o, s, sim.frontier_total())
        };
        let (ou, su, fu) = run_sim(false);
        let (oc, sc, fc) = run_sim(true);
        prop_assert_eq!(&ou, &oc, "outputs incl. per-node invocation counts");
        prop_assert_eq!(su.rounds, sc.rounds, "rounds");
        prop_assert_eq!(su.messages, sc.messages, "sent messages");
        prop_assert_eq!(fu, fc, "frontier accounting");
        prop_assert_eq!(su.messages_combined, 0);
        let expect_merged = waves * (BURST - 1) * g.degree(0) as u64;
        prop_assert_eq!(sc.messages_combined, expect_merged, "every burst merged");
        prop_assert_eq!(sc.messages_delivered(), su.messages - expect_merged);
        for threads in [1usize, 4] {
            let mut eng = Engine::with_threads(&g, threads);
            Executor::set_cap(&mut eng, cap);
            let (oe, se) = eng.run(|_, _| BurstBeacon {
                use_combiner: true, waves_left: waves, min_seen: u64::MAX, invoked: 0,
            });
            prop_assert_eq!(&oc, &oe, "outputs (threads={})", threads);
            prop_assert_eq!(sc, se, "stats (threads={})", threads);
        }
    }

    /// Combiner-aware collectives wall: the eager convergecast
    /// (`converge_merged`) must (a) reach the same root map as the
    /// watermark path, (b) be bit-identical to its own *non-combined*
    /// variant in outputs while never delivering more, (c) be fully
    /// bit-identical to the non-combined variant — outputs, `RunStats`,
    /// frontier totals — when the cap does not bind (nothing ever
    /// co-queues), and (d) be bit-identical across Simulator and
    /// Engine, combine counters and frontier totals included.
    #[test]
    fn prop_combiner_aware_collectives_identical((g, seed) in arb_graph()) {
        let items = move |v: NodeId| vec![
            (((v as u64) * 7 + seed) % 9, [(v as u64 * 31 + seed) % 23, v as u64]),
            ((v % 5) as u64 + 100, [(v as u64).wrapping_mul(13) % 19, v as u64]),
        ];
        let merge = |_: congest::Word, a: [congest::Word; 2], b: [congest::Word; 2]| a.min(b);
        let run_sim = |combined: bool, cap: usize| {
            let mut sim = Simulator::new(&g);
            Executor::set_cap(&mut sim, cap);
            let (tau, _) = build_bfs_tree(&mut sim, 0);
            let (map, stats) =
                collective::converge_merged_with(&mut sim, &tau, items, merge, combined);
            (map, stats, sim.frontier_total())
        };
        // (a) same root map as the watermark convergecast.
        let mut sim_w = Simulator::new(&g);
        let (tau_w, _) = build_bfs_tree(&mut sim_w, 0);
        let (map_w, _) = collective::converge(&mut sim_w, &tau_w, items, merge);
        let (map_c, stats_c, frontier_c) = run_sim(true, 1);
        prop_assert_eq!(&map_w, &map_c, "eager vs watermark root map");
        // (b) non-combined eager path: same outputs, never fewer merges.
        let (map_u, stats_u, _) = run_sim(false, 1);
        prop_assert_eq!(&map_c, &map_u, "combining changed the root map");
        prop_assert_eq!(stats_u.messages_combined, 0);
        prop_assert!(stats_c.messages_delivered() <= stats_u.messages_delivered());
        prop_assert!(stats_c.rounds <= stats_u.rounds);
        // (c) slack cap ⇒ nothing co-queues ⇒ full bit-identity.
        let slack = g.n().max(8);
        let (map_cs, stats_cs, frontier_cs) = run_sim(true, slack);
        let (map_us, stats_us, frontier_us) = run_sim(false, slack);
        prop_assert_eq!(&map_cs, &map_us);
        prop_assert_eq!(stats_cs, stats_us, "slack-cap runs must be bit-identical");
        prop_assert_eq!(frontier_cs, frontier_us);
        // (d) cross-engine bit-identity for the combined path.
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let (map_e, stats_e) =
                collective::converge_merged(&mut eng, &tau_e, items, merge);
            prop_assert_eq!(&map_c, &map_e, "outputs (threads={})", threads);
            prop_assert_eq!(stats_c, stats_e, "stats (threads={})", threads);
            prop_assert_eq!(
                frontier_c, Executor::frontier_total(&eng),
                "frontier stats (threads={})", threads
            );
        }
    }

    /// Clause 9 (round fusion) under an adversarial fusion-heavy load:
    /// long shard-local chains where the `HoldAndRelay` token wanders
    /// deep inside shards, so the parallel engine runs most rounds
    /// inside fused blocks (the distance-to-boundary predicate keeps
    /// firing as the wave crawls along the chain). Outputs — including
    /// per-node invocation counts, which pin the exact schedule —
    /// `RunStats`, and frontier totals must stay bit-identical across
    /// `threads ∈ {1, 2, 4, 8}` and vs the Simulator, fused or not.
    #[test]
    fn prop_fusion_heavy_chains_identical(
        n in 48usize..144, seed in 0u64..500, kind in 0u64..3
    ) {
        let g = match kind {
            0 => generators::path(n, 3),
            1 => generators::comb(n / 6 + 2, 4),
            _ => generators::caterpillar(n / 4 + 1, 2, seed),
        };
        let mut sim = Simulator::new(&g);
        let (os, ss) = sim.run(|_, _| HoldAndRelay {
            hold_left: 0, pending: Vec::new(), tokens_seen: 0, invoked: 0,
        });
        let fs = sim.frontier_total();
        for threads in [1usize, 2, 4, 8] {
            let mut eng = Engine::with_threads(&g, threads);
            let (oe, se) = eng.run(|_, _| HoldAndRelay {
                hold_left: 0, pending: Vec::new(), tokens_seen: 0, invoked: 0,
            });
            prop_assert_eq!(&os, &oe, "outputs (threads={})", threads);
            prop_assert_eq!(ss, se, "stats (threads={})", threads);
            prop_assert_eq!(
                fs, Executor::frontier_total(&eng),
                "frontier stats (threads={})", threads
            );
        }
    }

    #[test]
    fn prop_cap_ablation_identical((g, _seed) in arb_graph(), cap in 1usize..4) {
        let mut sim = Simulator::new(&g);
        Executor::set_cap(&mut sim, cap);
        let (ts, ss) = build_bfs_tree(&mut sim, 0);
        let mut eng = Engine::with_threads(&g, 4);
        Executor::set_cap(&mut eng, cap);
        let (te, se) = build_bfs_tree(&mut eng, 0);
        prop_assert_eq!(ss, se, "stats at cap {}", cap);
        prop_assert_eq!(ts.parent, te.parent);
    }
}

/// The dense-schedule reference, restored as a mode: the simulator's
/// activation validator ticks every node every round (the pre-frontier
/// schedule), asserting that would-be-skipped ticks are no-ops. All
/// nine scenario algorithms must produce identical stats, outputs, and
/// frontier accounting under both schedules — this is what catches an
/// activation-*incorrect* program, which would drift identically on
/// both frontier engines and so slip past the engine-vs-simulator
/// properties above.
#[test]
fn all_algorithms_pass_the_activation_validator() {
    let g = engine::scenario::build_graph("geometric", 64, 100, 7).expect("pinned family");
    let params = engine::scenario::AlgoParams::default();
    for algorithm in engine::scenario::ALGORITHMS {
        let mut plain = Simulator::new(&g);
        let (stats_p, _, metric_p) =
            engine::scenario::drive(&mut plain, algorithm, &params, 7).expect("runs");
        let mut validated = Simulator::new(&g);
        validated.set_validate_activation(true);
        let (stats_v, _, metric_v) =
            engine::scenario::drive(&mut validated, algorithm, &params, 7).expect("runs");
        assert_eq!(
            stats_p, stats_v,
            "{algorithm}: dense schedule changed stats"
        );
        assert_eq!(
            metric_p, metric_v,
            "{algorithm}: dense schedule changed output"
        );
        assert_eq!(
            plain.frontier_total(),
            validated.frontier_total(),
            "{algorithm}: frontier accounting differs under validation"
        );
    }
}

/// The clause-7 counterpart of the activation validator: an
/// order-sensitive (non-associative, non-commutative) combiner slips
/// past the engine-vs-simulator properties — both engines apply the
/// same broken merge and drift identically — so the dense-validation
/// mode is the guard: it re-folds every merged delivery in reverse
/// order and must panic on the mismatch.
#[test]
#[should_panic(expected = "not associative/commutative")]
fn dense_validator_catches_a_non_associative_combiner() {
    /// Merge = saturating difference: `a ⊖ b != b ⊖ a`.
    struct Subtractor;
    impl Program for Subtractor {
        type Output = ();
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                ctx.send(1, Message::words(&[3, 50]));
                ctx.send(1, Message::words(&[3, 20]));
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {}
        fn combine_key(&self, msg: &Message) -> Option<congest::Word> {
            Some(msg.word(0))
        }
        fn combine(&self, queued: &Message, incoming: &Message) -> Message {
            Message::words(&[
                queued.word(0),
                queued.word(1).saturating_sub(incoming.word(1)),
            ])
        }
        fn finish(self) {}
    }
    let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
    let mut sim = Simulator::new(&g);
    sim.set_validate_activation(true);
    sim.run(|_, _| Subtractor);
}

/// On a pinned instance the relaxation combiner demonstrably fires —
/// guarding against a regression that silently turns combining into a
/// no-op (the equivalence properties above would still pass).
#[test]
fn relaxation_combiner_fires_on_a_pinned_instance() {
    let g = generators::random_geometric(48, 0.35, 11);
    let mut sim = Simulator::new(&g);
    let (_, stats) = sim.run(|_, _| MinTable {
        sources: 16,
        use_combiner: true,
        table: Default::default(),
    });
    assert!(
        stats.messages_combined > 0,
        "expected merges on a 16-source relaxation, got none"
    );
    assert_eq!(
        stats.messages_delivered(),
        stats.messages - stats.messages_combined
    );
}

/// The combiner-aware gather's clause-7 merge demonstrably fires on a
/// pinned SLT-style landmark gather — the exact shape `approx_spt`
/// ships: a hop-truncated multi-source exploration whose pairwise
/// bounded distances are gathered under unordered-pair keys with a
/// min merge. Truncation under heterogeneous weights makes the two
/// endpoints of a pair report *different* genuine path lengths, and
/// the superseded report must merge into its co-queued rival in
/// flight. Guards against a regression that silently turns the
/// collectives' combining into a no-op (the equivalence properties
/// above would still pass).
#[test]
fn gather_combiner_fires_on_a_pinned_slt_instance() {
    use dist_sssp::bellman::multi_source_bounded;
    use lightgraph::INF;

    let g = generators::erdos_renyi(120, 0.06, 1000, 5);
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let sources: Vec<NodeId> = (0..g.n()).step_by(3).collect();
    let ms = multi_source_bounded(&mut sim, &sources, INF, 4);
    assert!(ms.truncated, "the hop bound must bite for this regime");
    let before = sim.total();
    let ms_ref = &ms;
    let srcs = &ms.sources;
    let (pairs, _) = collective::gather_merged(&mut sim, &tau, |v| {
        if let Ok(vi) = srcs.binary_search(&v) {
            ms_ref.tables[v]
                .iter_reached()
                .filter(|&(si, _, _)| si != vi)
                .map(|(si, d, _)| {
                    let (a, b) = if si < vi { (si, vi) } else { (vi, si) };
                    (congest::pack2(a as u64, b as u64), [d, 0])
                })
                .collect()
        } else {
            Vec::new()
        }
    });
    let delta = sim.total().since(before);
    assert!(
        delta.messages_combined > 0,
        "expected the in-flight gather merge to fire, got none"
    );
    // The gathered landmark graph is sane: every pair's distance is the
    // minimum of the two endpoints' reports.
    for (&key, &val) in &pairs {
        let (a, b) = congest::unpack2(key);
        assert!(a < b, "unordered pair keys are canonical");
        let d_ab = ms.dist(ms.sources[a as usize], ms.sources[b as usize]);
        let d_ba = ms.dist(ms.sources[b as usize], ms.sources[a as usize]);
        let want = d_ab.into_iter().chain(d_ba).min().expect("pair reported");
        assert_eq!(val[0], want, "pair ({a},{b})");
    }
}

/// A BFS wave over a long path is the canonical frontier workload: the
/// run needs ~n rounds but each node is active only O(1) of them.
/// Skipping the idle rounds must leave outputs and `RunStats` exactly
/// as a dense schedule would (pinned analytically here), while the
/// invocation count drops from Θ(n²) to Θ(n).
#[test]
fn path_wave_skips_idle_rounds_without_changing_outputs() {
    let n = 96;
    let g = generators::path(n, 1);
    let mut sim = Simulator::new(&g);
    let (tree, stats) = build_bfs_tree(&mut sim, 0);
    // Dense-schedule facts, independent of frontier scheduling: the
    // wave takes one round per hop plus the child-notification drain.
    assert_eq!(tree.height(), n as u64 - 1);
    assert_eq!(stats.rounds, n as u64 + 1);
    let f = sim.frontier_total();
    assert!(
        f.invocations <= 4 * n as u64,
        "wave must cost O(n) invocations, got {} (dense would be {})",
        f.invocations,
        stats.rounds * n as u64
    );
    // The engine schedules the identical frontier.
    for threads in THREADS {
        let mut eng = Engine::with_threads(&g, threads);
        let (te, se) = build_bfs_tree(&mut eng, 0);
        assert_eq!(te.parent, tree.parent, "threads={threads}");
        assert_eq!(se, stats, "threads={threads}");
        assert_eq!(Executor::frontier_total(&eng), f, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clause 8 (observer neutrality) + the per-node histograms:
    /// attaching observers (per-node counters and a trace sink) must
    /// perturb nothing — outputs, `RunStats`, frontier totals all
    /// bit-identical to an unobserved run — while the counters
    /// themselves sum to the run totals and the full per-node vectors
    /// are bit-identical across engines and thread counts.
    #[test]
    fn prop_node_histograms_sum_and_observers_are_neutral((g, seed) in arb_graph()) {
        use congest::TraceSink;
        // Baseline: no observers attached.
        let mut plain = Simulator::new(&g);
        let (tau_p, _) = build_bfs_tree(&mut plain, 0);
        let mp = distributed_mst(&mut plain, &tau_p, 0, seed);

        // Observed run: per-node counters plus a trace sink.
        let mut sim = Simulator::new(&g);
        sim.set_record_node_stats(true);
        sim.set_trace(Some(TraceSink::shared(Box::new(std::io::sink()))));
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ms = distributed_mst(&mut sim, &tau, 0, seed);
        prop_assert_eq!(&mp.mst_edges, &ms.mst_edges, "observers changed outputs");
        prop_assert_eq!(mp.stats, ms.stats, "observers changed stats");
        prop_assert_eq!(Executor::total(&plain), Executor::total(&sim));
        prop_assert_eq!(plain.frontier_total(), sim.frontier_total());

        let totals = Executor::total(&sim);
        let frontier = sim.frontier_total();
        let ns = Executor::node_stats(&sim).expect("recording enabled");
        prop_assert_eq!(ns.sent.iter().sum::<u64>(), totals.messages);
        prop_assert_eq!(ns.delivered.iter().sum::<u64>(), totals.messages_delivered());
        prop_assert_eq!(ns.invocations.iter().sum::<u64>(), frontier.invocations);

        for threads in THREADS_HEAVY {
            let mut eng = Engine::with_threads(&g, threads);
            eng.set_record_node_stats(true);
            eng.set_trace(Some(TraceSink::shared(Box::new(std::io::sink()))));
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let me = distributed_mst(&mut eng, &tau_e, 0, seed);
            prop_assert_eq!(&ms.mst_edges, &me.mst_edges, "outputs (threads={})", threads);
            prop_assert_eq!(ms.stats, me.stats, "stats (threads={})", threads);
            let ne = Executor::node_stats(&eng).expect("recording enabled");
            prop_assert_eq!(&ns.sent, &ne.sent, "per-node sent (threads={})", threads);
            prop_assert_eq!(
                &ns.delivered, &ne.delivered,
                "per-node delivered (threads={})", threads
            );
            prop_assert_eq!(
                &ns.invocations, &ne.invocations,
                "per-node invocations (threads={})", threads
            );
            prop_assert_eq!(ns.summary(), ne.summary(), "summary (threads={})", threads);
        }
    }
}

/// The batched-contraction tour on *structured* graphs — path (deep
/// fragment chains), star (one giant fragment), grid (many same-size
/// fragments), caterpillar and comb (skewed child lists), tree+chords
/// (MST ≠ BFS tree) — is bit-identical across engines and equal to the
/// sequential Section-3 tour. Complements `prop_euler_tour_identical`,
/// which only samples random instances.
#[test]
fn euler_tour_structured_graphs_match_sequential_reference() {
    let cases: Vec<(&str, Graph)> = vec![
        ("path", generators::path(64, 3)),
        ("star", generators::star(33, 20, 5)),
        ("grid", generators::grid(8, 9, 20, 5)),
        ("caterpillar", generators::caterpillar(12, 3, 5)),
        ("comb", generators::comb(10, 4)),
        ("tree-chords", generators::tree_plus_chords(60, 20, 30, 5)),
    ];
    for (name, g) in cases {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let mst = distributed_mst(&mut sim, &tau, 0, 7);
        let ts = distributed_euler_tour(&mut sim, &tau, &mst, 0);

        let t = lightgraph::tree::RootedTree::from_edge_ids(&g, &mst.mst_edges, 0);
        let reference = t.euler_tour();
        let (seq, times) = ts.assemble();
        assert_eq!(seq, reference.seq, "[{name}] tour sequence");
        assert_eq!(times, reference.times, "[{name}] tour times");
        assert_eq!(ts.total_length, 2 * mst.weight, "[{name}] total length");

        let mut eng = Engine::with_threads(&g, 4);
        let (tau_e, _) = build_bfs_tree(&mut eng, 0);
        let mst_e = distributed_mst(&mut eng, &tau_e, 0, 7);
        let te = distributed_euler_tour(&mut eng, &tau_e, &mst_e, 0);
        assert_eq!(ts.appearances, te.appearances, "[{name}] appearances");
        assert_eq!(ts.stats, te.stats, "[{name}] stats");
        assert_eq!(
            Executor::total(&sim),
            Executor::total(&eng),
            "[{name}] cumulative totals"
        );
    }
}

/// Clause-9 accounting under a real composite algorithm: SLT on a long
/// path is the fusion-heavy regime (every phase is a wave crawling a
/// chain, so the engine spends most rounds inside fused blocks), and
/// the *flattened span tree* is the strictest observable — per-phase
/// `RunStats`, invocation counts, and scheduler rounds, all derived
/// from the per-round accounting that fused blocks must reconstruct
/// as if every global barrier had happened. All deterministic span
/// columns must be bit-identical across `threads ∈ {1, 2, 4, 8}` and
/// vs the Simulator; only `wall_ns` may differ.
#[test]
fn fusion_heavy_slt_span_tree_identical_across_threads() {
    use congest::obs;
    let g = generators::path(160, 3);
    let params = engine::scenario::AlgoParams::default();

    let mut sim = Simulator::new(&g);
    let (rs, tree_s) =
        obs::collect_spans(|| engine::scenario::drive(&mut sim, "slt", &params, 1).expect("runs"));
    let flat_s = tree_s.flatten();
    assert!(!flat_s.is_empty(), "the SLT drive must emit named spans");
    for threads in [1usize, 2, 4, 8] {
        let mut eng = Engine::with_threads(&g, threads);
        let (re, tree_e) = obs::collect_spans(|| {
            engine::scenario::drive(&mut eng, "slt", &params, 1).expect("runs")
        });
        assert_eq!(rs.0, re.0, "RunStats (threads={threads})");
        assert_eq!(rs.2, re.2, "metric (threads={threads})");
        assert_eq!(
            sim.frontier_total(),
            Executor::frontier_total(&eng),
            "frontier totals (threads={threads})"
        );
        let flat_e = tree_e.flatten();
        assert_eq!(flat_s.len(), flat_e.len(), "span count (threads={threads})");
        for ((ps, node_s), (pe, node_e)) in flat_s.iter().zip(&flat_e) {
            assert_eq!(ps, pe, "span path (threads={threads})");
            assert_eq!(
                node_s.stats, node_e.stats,
                "span stats at {ps} (threads={threads})"
            );
            assert_eq!(
                node_s.invocations, node_e.invocations,
                "invocations at {ps} (threads={threads})"
            );
            assert_eq!(
                node_s.sched_rounds, node_e.sched_rounds,
                "sched_rounds at {ps} (threads={threads})"
            );
        }
    }
}

/// Pinned SLT span tree at the bench workload shape (geometric n=1k,
/// seed 1): every major phase appears as a named span, the tree
/// attributes at least 95% of the root's delivered messages to named
/// sub-phases, and the deterministic span columns are bit-identical
/// across engines — only `wall_ns` is machine-dependent.
#[test]
fn slt_span_tree_is_pinned_and_engine_identical() {
    use congest::obs;
    let g = engine::scenario::build_graph("geometric", 1000, 100, 1).expect("pinned family");
    let params = engine::scenario::AlgoParams::default();

    let mut sim = Simulator::new(&g);
    let (rs, tree_s) =
        obs::collect_spans(|| engine::scenario::drive(&mut sim, "slt", &params, 1).expect("runs"));
    let mut eng = Engine::with_threads(&g, 4);
    let (re, tree_e) =
        obs::collect_spans(|| engine::scenario::drive(&mut eng, "slt", &params, 1).expect("runs"));
    assert_eq!(rs.0, re.0, "RunStats identical under span collection");
    assert_eq!(rs.2, re.2, "metric identical under span collection");

    let root = tree_s.find("slt").expect("root span");
    for phase in [
        "tau",
        "mst",
        "tour",
        "spt",
        "bp1",
        "bp2",
        "mark",
        "final_spt",
    ] {
        assert!(
            tree_s.find(phase).is_some(),
            "phase `{phase}` missing from the span tree"
        );
    }
    assert!(
        root.child_delivered() * 100 >= root.delivered() * 95,
        "named phases attribute only {} of {} delivered messages",
        root.child_delivered(),
        root.delivered()
    );

    let fs = tree_s.flatten();
    let fe = tree_e.flatten();
    assert_eq!(fs.len(), fe.len(), "span count");
    for ((ps, node_s), (pe, node_e)) in fs.iter().zip(&fe) {
        assert_eq!(ps, pe, "span path");
        assert_eq!(node_s.stats, node_e.stats, "span stats at {ps}");
        assert_eq!(
            node_s.invocations, node_e.invocations,
            "invocations at {ps}"
        );
        assert_eq!(
            node_s.sched_rounds, node_e.sched_rounds,
            "sched_rounds at {ps}"
        );
    }
}
