//! Property tests: the parallel engine is bit-identical to the
//! sequential simulator.
//!
//! For random Erdős–Rényi and doubling-metric (random geometric)
//! instances, every algorithm here must produce *exactly* the same
//! per-node outputs and the same `RunStats` (rounds and messages) on
//! `congest::Simulator` and on `engine::Engine`, across thread counts.
//! This is the determinism contract of `congest::exec` — the property
//! that lets the engine stand in for the simulator when reproducing the
//! paper's round counts.

use congest::collective;
use congest::tree::build_bfs_tree;
use congest::{Executor, Simulator};
use dist_mst::boruvka::distributed_mst;
use engine::Engine;
use lightgraph::{generators, Graph};
use proptest::prelude::*;

/// Random connected instances: Erdős–Rényi for general graphs and
/// random geometric for the paper's doubling-metric workloads.
fn arb_graph() -> impl Strategy<Value = (Graph, u64)> {
    (8usize..48, 0u64..1_000, 0u64..3).prop_map(|(n, seed, kind)| {
        let g = match kind {
            0 | 1 => {
                let p = (kind + 1) as f64 * 2.0 / n as f64;
                generators::erdos_renyi(n, p.min(0.9), 50, seed)
            }
            _ => {
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
                generators::random_geometric(n, r, seed)
            }
        };
        (g, seed)
    })
}

const THREADS: [usize; 3] = [1, 3, 6];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_bfs_tree_identical((g, _seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (ts, ss) = build_bfs_tree(&mut sim, 0);
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (te, se) = build_bfs_tree(&mut eng, 0);
            prop_assert_eq!(ss, se, "stats (threads={})", threads);
            prop_assert_eq!(&ts.parent, &te.parent, "parents (threads={})", threads);
            prop_assert_eq!(&ts.depth, &te.depth, "depths (threads={})", threads);
            prop_assert_eq!(&ts.children, &te.children, "children (threads={})", threads);
            prop_assert_eq!(Executor::total(&sim).rounds > 0, Executor::total(&eng).rounds > 0);
        }
    }

    #[test]
    fn prop_broadcast_and_convergecast_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let items: Vec<collective::Item> =
            (0..10).map(|i| (i + seed % 5, [i * 3, i + 1])).collect();
        let (bs, bss) = collective::broadcast(&mut sim, &tau, items.clone());
        let (cs, css) = collective::converge_min(&mut sim, &tau, |v| {
            vec![((v % 7) as u64, [(v * 31 % 13) as u64, v as u64])]
        });
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            prop_assert_eq!(&tau.parent, &tau_e.parent);
            let (be, bse) = collective::broadcast(&mut eng, &tau_e, items.clone());
            prop_assert_eq!(&bs, &be, "broadcast outputs (threads={})", threads);
            prop_assert_eq!(bss, bse, "broadcast stats (threads={})", threads);
            let (ce, cse) = collective::converge_min(&mut eng, &tau_e, |v| {
                vec![((v % 7) as u64, [(v * 31 % 13) as u64, v as u64])]
            });
            prop_assert_eq!(&cs, &ce, "converge outputs (threads={})", threads);
            prop_assert_eq!(css, cse, "converge stats (threads={})", threads);
        }
    }

    #[test]
    fn prop_mst_identical((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let ms = distributed_mst(&mut sim, &tau, 0, seed);
        for threads in THREADS {
            let mut eng = Engine::with_threads(&g, threads);
            let (tau_e, _) = build_bfs_tree(&mut eng, 0);
            let me = distributed_mst(&mut eng, &tau_e, 0, seed);
            prop_assert_eq!(ms.weight, me.weight, "weight (threads={})", threads);
            prop_assert_eq!(&ms.mst_edges, &me.mst_edges, "edges (threads={})", threads);
            prop_assert_eq!(ms.stats, me.stats, "stats (threads={})", threads);
            prop_assert_eq!(
                Executor::total(&sim).messages,
                Executor::total(&eng).messages,
                "cumulative messages (threads={})", threads
            );
        }
    }

    #[test]
    fn prop_cap_ablation_identical((g, _seed) in arb_graph(), cap in 1usize..4) {
        let mut sim = Simulator::new(&g);
        Executor::set_cap(&mut sim, cap);
        let (ts, ss) = build_bfs_tree(&mut sim, 0);
        let mut eng = Engine::with_threads(&g, 4);
        Executor::set_cap(&mut eng, cap);
        let (te, se) = build_bfs_tree(&mut eng, 0);
        prop_assert_eq!(ss, se, "stats at cap {}", cap);
        prop_assert_eq!(ts.parent, te.parent);
    }
}
