//! Plan-cache safety properties (the run-session layer).
//!
//! The determinism contract's *plan reuse note* (`congest::exec`)
//! permits caching anything derivable from the input topology alone —
//! shard bounds, claim orders, shard locality — because observable
//! behavior is a pure function of `(graph, programs, cap)` plus the
//! stress seed. These tests pin the two ways that promise could break:
//!
//! 1. **Warm ≠ cold.** A warmed executor (memoized plan, reused
//!    arenas, pooled relax tables) must be bit-identical to a cold one:
//!    same outputs, same `RunStats`, same flattened span trees, at
//!    every thread count. The workload is the SLT construction — the
//!    heaviest composite in the repository, spawning sub-executors and
//!    hundreds of sub-runs that all share the root's plan cache.
//!
//! 2. **Stress bypassing the cache.** Randomized shard cuts
//!    (`ENGINE_SHARD_STRESS`, replayed here via the explicit
//!    [`Engine::set_shard_stress_seed`] form of the same code path)
//!    must *key* the plan cache — a distinct seed is a distinct plan,
//!    a revisited seed is a cache hit — never bypass it or, worse,
//!    serve a differently-cut plan. Outputs must not move at all:
//!    clause 9 makes shard geometry semantically invisible.

use congest::tree::build_bfs_tree;
use congest::{obs, Executor, RunStats, Simulator};
use engine::Engine;
use lightgraph::{generators, EdgeId, Graph};
use lightnet::shallow_light_tree;
use proptest::prelude::*;

/// Random connected instances, same families as `equivalence.rs`.
fn arb_graph() -> impl Strategy<Value = (Graph, u64)> {
    (8usize..40, 0u64..1_000, 0u64..3).prop_map(|(n, seed, kind)| {
        let g = match kind {
            0 | 1 => {
                let p = (kind + 1) as f64 * 2.0 / n as f64;
                generators::erdos_renyi(n, p.min(0.9), 50, seed)
            }
            _ => {
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
                generators::random_geometric(n, r, seed)
            }
        };
        (g, seed)
    })
}

/// Everything observable from one full SLT pass: result fields, the
/// pass's cumulative `RunStats` delta, and the flattened span tree
/// with every deterministic column (stats, invocations, sched_rounds —
/// wall columns excluded by construction).
#[derive(Debug, PartialEq, Eq)]
struct PassFingerprint {
    edges: Vec<EdgeId>,
    breakpoints: usize,
    stats: RunStats,
    total_delta: RunStats,
    spans: Vec<(String, RunStats, u64, u64)>,
}

fn slt_pass<E: Executor>(exec: &mut E, seed: u64) -> PassFingerprint {
    let before = Executor::total(exec);
    let (res, tree) = obs::collect_spans(|| {
        let (tau, _) = build_bfs_tree(exec, 0);
        shallow_light_tree(exec, &tau, 0, 0.5, seed)
    });
    PassFingerprint {
        edges: res.edges,
        breakpoints: res.breakpoints,
        stats: res.stats,
        total_delta: Executor::total(exec).since(before),
        spans: tree
            .flatten()
            .into_iter()
            .map(|(path, node)| (path, node.stats, node.invocations, node.sched_rounds))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cold run, then two warm runs on the same executor: the memoized
    /// plan, reused arenas, and pooled tables must leave no trace in
    /// any deterministic output, and the warm runs must not rebuild
    /// the plan.
    #[test]
    fn prop_warm_run_identical_to_cold((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let reference = slt_pass(&mut sim, seed);
        for threads in [1usize, 2, 4] {
            let mut eng = Engine::with_threads(&g, threads);
            let cold = slt_pass(&mut eng, seed);
            let builds_after_cold = eng.plan_builds();
            let warm = slt_pass(&mut eng, seed);
            let warm2 = slt_pass(&mut eng, seed);
            prop_assert_eq!(&cold, &reference, "cold engine vs simulator (threads={})", threads);
            prop_assert_eq!(&warm, &cold, "warm vs cold (threads={})", threads);
            prop_assert_eq!(&warm2, &cold, "second warm vs cold (threads={})", threads);
            prop_assert_eq!(
                eng.plan_builds(), builds_after_cold,
                "warm passes rebuilt the root plan (threads={})", threads
            );
        }
    }
}

/// Stressed shard cuts key the cache. Runs the workload under a
/// sequence of explicit stress seeds (the replay form of
/// `ENGINE_SHARD_STRESS`; both reach `plan_for` with the same
/// `(threads, stress)` key): every run must produce identical output,
/// distinct seeds must *build* distinct plans, and revisiting a seed —
/// or returning to the unstressed cut — must hit the cache without a
/// rebuild.
#[test]
fn stress_seeds_key_the_plan_cache() {
    let g = generators::erdos_renyi(40, 0.15, 50, 7);
    let mut eng = Engine::with_threads(&g, 3);

    let mut fingerprints: Vec<PassFingerprint> = Vec::new();
    let mut builds: Vec<u64> = Vec::new();
    for stress in [None, Some(0xA11CE), Some(0xB0B), Some(0xA11CE), None] {
        eng.set_shard_stress_seed(stress);
        fingerprints.push(slt_pass(&mut eng, 7));
        builds.push(eng.plan_builds());
    }

    for (i, fp) in fingerprints.iter().enumerate() {
        assert_eq!(
            fp, &fingerprints[0],
            "stressed cut changed observable output (pass {i})"
        );
    }
    // Three distinct keys (None, A11CE, B0B) build; revisits must not.
    assert!(
        builds[1] > builds[0],
        "first stressed cut must build a new plan"
    );
    assert!(builds[2] > builds[1], "second stress seed is a new key");
    assert_eq!(builds[3], builds[2], "revisited stress seed must hit");
    assert_eq!(builds[4], builds[3], "unstressed revisit must hit");
}
