//! Large-n scaling smoke: 100k-node geometric BFS through the
//! grid-bucketed generator and the parallel engine, the 8k-node
//! geometric SLT that the keyed-relaxation subsystem and the adaptive
//! landmark cutoff made feasible, and the 64k-node SLT that the
//! batched-contraction Euler tour and the pipelined Borůvka merge
//! made feasible.
//!
//! `#[ignore]`d so `cargo test` stays fast; the CI `large-smoke` job
//! (nightly-style schedule) runs them with `--include-ignored` so a
//! regression in generator complexity, engine scaling, or relaxation
//! message volume fails fast instead of silently pushing sweeps from
//! seconds back to hours.

use congest::tree::build_bfs_tree;
use congest::Executor;
use engine::Engine;
use lightgraph::generators;
use lightnet::shallow_light_tree;
use std::time::Instant;

#[test]
#[ignore = "large-n smoke (100k geometric BFS); nightly CI runs it with --include-ignored"]
fn geometric_100k_bfs_scales() {
    let n = 100_000;
    let radius = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();

    let gen_start = Instant::now();
    let g = generators::random_geometric(n, radius, 1);
    let gen_s = gen_start.elapsed().as_secs_f64();
    assert_eq!(g.n(), n);
    assert!(g.is_connected(), "generator must stitch components");
    // Expected degree ≈ 8 → m ≈ 4n; a loose band catches bucketing bugs
    // (missed neighbor cells halve m, double-counting doubles it).
    assert!(
        (3 * n..6 * n).contains(&g.m()),
        "implausible edge count {} for degree-8 radius",
        g.m()
    );
    // The O(n²) generator needed ~10¹⁰ distance checks here (minutes);
    // the grid-bucketed one is comfortably under a minute even on one
    // slow core. Generous bound so CI hardware jitter never flakes.
    assert!(
        gen_s < 60.0,
        "generation took {gen_s:.1}s — complexity regression?"
    );

    let mut eng = Engine::with_threads(&g, 4);
    let (tree, stats) = build_bfs_tree(&mut eng, 0);
    assert_eq!(
        tree.parent.iter().filter(|p| p.is_none()).count(),
        1,
        "BFS tree spans the graph with a single root"
    );
    assert!(tree.height() > 0 && stats.rounds > 0);
    assert!(
        stats.messages > g.m() as u64,
        "BFS floods every edge at least once"
    );
}

#[test]
#[ignore = "large-n smoke (8k geometric SLT); nightly CI runs it with --include-ignored"]
fn geometric_8k_slt_end_to_end() {
    let n = 8_000;
    let radius = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
    let g = generators::random_geometric(n, radius, 1);
    assert!(g.is_connected(), "generator must stitch components");

    let mut eng = Engine::with_threads(&g, 4);
    let (tau, _) = build_bfs_tree(&mut eng, 0);
    let start = Instant::now();
    let slt = shallow_light_tree(&mut eng, &tau, 0, 0.5, 1);
    let wall = start.elapsed().as_secs_f64();

    assert_eq!(slt.edges.len(), n - 1, "SLT must be a spanning tree");
    assert!(slt.breakpoints > 0);
    let h = g.edge_subgraph_dedup(slt.edges.iter().copied());
    assert!(h.is_connected());
    // The adaptive landmark cutoff is what makes this size tractable:
    // before it, the two SPT phases alone delivered >60M messages at
    // n = 8k. A generous ceiling still catches a relaxation-volume
    // regression of that order.
    let delivered = Executor::total(&eng).messages_delivered();
    assert!(
        delivered < 40_000_000,
        "SLT@8k delivered {delivered} messages — relaxation-volume regression?"
    );
    assert!(wall < 300.0, "SLT@8k took {wall:.0}s — scaling regression?");
}

#[test]
#[ignore = "large-n smoke (64k geometric SLT); nightly CI runs it with --include-ignored"]
fn geometric_64k_slt_end_to_end() {
    let n = 64_000;
    let radius = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
    let g = generators::random_geometric(n, radius, 1);
    assert!(g.is_connected(), "generator must stitch components");

    let mut eng = Engine::with_threads(&g, 4);
    let (tau, _) = build_bfs_tree(&mut eng, 0);
    let start = Instant::now();
    let slt = shallow_light_tree(&mut eng, &tau, 0, 0.5, 1);
    let wall = start.elapsed().as_secs_f64();

    assert_eq!(slt.edges.len(), n - 1, "SLT must be a spanning tree");
    assert!(slt.breakpoints > 0);
    let h = g.edge_subgraph_dedup(slt.edges.iter().copied());
    assert!(h.is_connected());
    // This size exists because the batched-contraction Euler tour and
    // the pipelined Borůvka merge broke the MST/tour message wall:
    // the old broadcast-everything tour alone would have delivered
    // >10⁹ messages here. The run lands at ~18.4M delivered (pinned
    // exactly in BENCH_engine.json); a generous ceiling still catches
    // a regression back toward per-fragment broadcasts.
    let delivered = Executor::total(&eng).messages_delivered();
    assert!(
        delivered < 60_000_000,
        "SLT@64k delivered {delivered} messages — MST/tour message-wall regression?"
    );
    assert!(
        wall < 600.0,
        "SLT@64k took {wall:.0}s — scaling regression?"
    );
}
