//! Allocation-regression guard: the message hot path is zero-alloc in
//! steady state, on both engines.
//!
//! The zero-alloc data path (see `DESIGN.md` § "Memory layout & the
//! zero-alloc data path") promises that once the per-run arenas have
//! reached their high-water capacity, delivering a message costs no
//! heap traffic: payloads are inline `[u64; 4]` words, queue storage
//! comes from recycled slab slots, and combiner lookups hit a
//! preallocated open-addressed slot map. This test pins that promise
//! with a counting `#[global_allocator]` and a *delta* measurement:
//! run the same workload at two message counts (after warming both so
//! every arena is at high water) and assert the larger run performs no
//! more allocations than the smaller one, up to a tiny slack. Any
//! per-message or per-round allocation would show up multiplied by the
//! extra ~9000 messages and fail loudly.
//!
//! The file deliberately contains a single `#[test]` so no concurrent
//! test in the same binary pollutes the global counter. Per-run setup
//! allocations (shard plans, program vectors, output vectors) are
//! identical between the two sizes and cancel in the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use congest::relax::RelaxProgram;
use congest::{Ctx, Executor, Message, Program, Simulator, Word};
use engine::Engine;
use lightgraph::{Graph, NodeId, INF};

/// Counts allocation *events* (alloc + realloc); frees are irrelevant
/// to the guard, which only cares that the hot path requests no heap.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_events_during(f: impl FnOnce()) -> u64 {
    let start = ALLOC_EVENTS.load(Ordering::SeqCst);
    f();
    ALLOC_EVENTS.load(Ordering::SeqCst) - start
}

/// Unkeyed FIFO pressure: node 0 stages `k` three-word messages on one
/// edge in `init`; the bandwidth cap of 1 then drains them over `k`
/// rounds. Exercises the plain slab FIFO (no combiner) and the
/// per-round delivery loop at depth.
struct Burst {
    k: usize,
    received: u64,
}

impl Program for Burst {
    type Output = u64;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.node() == 0 {
            for i in 0..self.k {
                ctx.send(1, Message::words(&[i as Word, 1, 2]));
            }
        }
    }

    fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        self.received += inbox.len() as u64;
    }

    fn finish(self) -> u64 {
        self.received
    }
}

/// Keyed combiner churn: node 0 stays non-quiescent for `k` rounds and
/// each round stages *two* keyed messages with the same key (so the
/// second merges into the first in place), the key cycling over 8
/// values. Every message exercises the slot-map insert → merge →
/// remove cycle; the min-combiner keeps outputs deterministic.
struct Trickle {
    left: u64,
    best: u64,
}

impl Program for Trickle {
    type Output = u64;

    fn init(&mut self, _ctx: &mut Ctx<'_>) {}

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (_, msg) in inbox {
            self.best = self.best.min(msg.word(1));
        }
        if self.left > 0 {
            self.left -= 1;
            let key = self.left % 8;
            ctx.send(1, Message::words(&[key, self.left, 7]));
            ctx.send(1, Message::words(&[key, self.left + 1, 9]));
        }
    }

    fn is_quiescent(&self) -> bool {
        self.left == 0
    }

    fn combine_key(&self, msg: &Message) -> Option<Word> {
        Some(msg.word(0))
    }

    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        Message::words(&[
            queued.word(0),
            queued.word(1).min(incoming.word(1)),
            queued.word(2).min(incoming.word(2)),
        ])
    }

    fn finish(self) -> u64 {
        self.best
    }
}

fn run_burst<E: Executor>(exec: &mut E, k: usize) {
    let (out, stats) = exec.run(|v, _| Burst {
        k: if v == 0 { k } else { 0 },
        received: 0,
    });
    assert_eq!(out[1], k as u64, "burst lost messages");
    assert_eq!(stats.messages, k as u64);
}

fn run_trickle<E: Executor>(exec: &mut E, k: usize) {
    let (out, stats) = exec.run(|v, _| Trickle {
        left: if v == 0 { k as u64 } else { 0 },
        best: u64::MAX,
    });
    assert_eq!(out[1], 0, "trickle min never arrived");
    assert_eq!(stats.messages, 2 * k as u64);
    assert_eq!(stats.messages_combined, k as u64, "combiner never merged");
}

/// Warms both workload sizes (so every arena — slab slots, slot-map
/// tables, touched-edge buckets, staging vectors — is at the high
/// water of the *larger* size), then asserts the big run allocates no
/// more than the small one. `SLACK` absorbs incidental one-off events
/// (e.g. lazy thread-local or OS buffers) without masking real
/// per-message traffic: a single word per message would add thousands.
const SMALL: usize = 500;
const LARGE: usize = 5000;
const SLACK: u64 = 16;

fn guard<E: Executor>(exec: &mut E, engine_name: &str) {
    for (workload, run) in [
        ("burst", run_burst as fn(&mut E, usize)),
        ("trickle", run_trickle as fn(&mut E, usize)),
    ] {
        run(exec, SMALL);
        run(exec, LARGE);
        run(exec, SMALL);
        let small = alloc_events_during(|| run(exec, SMALL));
        let large = alloc_events_during(|| run(exec, LARGE));
        assert!(
            large <= small + SLACK,
            "{engine_name}/{workload}: {LARGE}-message run performed {large} allocation \
             events vs {small} for the {SMALL}-message run — the hot path is allocating \
             per message (see DESIGN.md, \"Memory layout & the zero-alloc data path\")"
        );
    }
}

/// One relax sub-run: node 0 seeds key 0, the table pools recycle the
/// slot/stamp/weight storage (epoch reset, no refill) on a warmed
/// executor.
fn run_relax<E: Executor>(exec: &mut E) {
    let (out, _) = exec.run(|v, _| {
        RelaxProgram::new(
            7,
            1,
            INF,
            u64::MAX,
            if v == 0 { vec![0] } else { Vec::new() },
        )
    });
    assert_eq!(out[1].dist(0), Some(1), "relax never reached node 1");
}

/// Composite-session guard (the run-session layer): SLT-style
/// workloads issue hundreds of heterogeneous sub-runs against one
/// executor. With memoized execution plans, epoch-reset arenas, and
/// pooled relax tables, a *warmed* session pays only the inherent
/// bookkeeping of the `run` API per sub-run (the program and output
/// vectors plus worker hand-off) — never per-sub-run *setup*: shard
/// plans, locality BFS, slab geometry, or slot-table refills. The
/// delta method again: measure `REPS` warmed reps, then `2 × REPS`,
/// and cap the marginal cost of the extra reps. Rebuilding any
/// topology-derived structure per sub-run costs several allocations
/// per rep and fails the cap.
const REPS: usize = 32;
/// Marginal allocation-event budget per rep, message-only composite
/// (two sub-runs: trickle + burst). Inherent cost: ~2 events per
/// sub-run (programs + outputs) plus worker hand-off on the engine.
const PER_REP_MSG: u64 = 10;
/// Budget with the relax sub-run included (three sub-runs, plus the
/// seed vector at node 0).
const PER_REP_RELAX: u64 = 16;

fn composite_guard<E: Executor>(exec: &mut E, engine_name: &str, with_relax: bool) {
    fn reps<E: Executor>(exec: &mut E, r: usize, with_relax: bool) {
        for _ in 0..r {
            run_trickle(exec, 16);
            run_burst(exec, 16);
            if with_relax {
                run_relax(exec);
            }
        }
    }
    reps(exec, 2, with_relax); // warm every pool to high water
    let base = alloc_events_during(|| reps(exec, REPS, with_relax));
    let double = alloc_events_during(|| reps(exec, 2 * REPS, with_relax));
    let marginal = double.saturating_sub(base); // cost of REPS extra reps
    let budget = if with_relax {
        PER_REP_RELAX
    } else {
        PER_REP_MSG
    } * REPS as u64;
    assert!(
        marginal <= budget,
        "{engine_name}/composite(relax={with_relax}): {} extra reps cost {marginal} \
         allocation events (budget {budget}) — a sub-run is paying setup again \
         (see DESIGN.md, \"Run lifecycle & the plan cache\")",
        REPS,
    );
}

#[test]
fn steady_state_message_path_is_allocation_free() {
    let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();

    let mut sim = Simulator::new(&g);
    guard(&mut sim, "simulator");

    let mut eng = Engine::with_threads(&g, 1);
    guard(&mut eng, "engine(1)");

    let mut eng2 = Engine::with_threads(&g, 2);
    guard(&mut eng2, "engine(2)");

    // Composite sessions: the relax-inclusive variant stays on
    // single-threaded executors (the table pools fall back to a fresh
    // allocation under lock contention — correct, but not countable);
    // the multi-threaded engine runs the message-only composite.
    composite_guard(&mut sim, "simulator", true);
    composite_guard(&mut eng, "engine(1)", true);
    composite_guard(&mut eng2, "engine(2)", false);
}
