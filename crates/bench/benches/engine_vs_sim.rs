//! Round-loop throughput: parallel engine vs sequential simulator.
//!
//! Times BFS-tree construction (latency-bound: few rounds, heavy
//! per-round fan-out) and pipelined broadcast (bandwidth-bound: many
//! rounds of cap-limited traffic) on sparse Erdős–Rényi graphs of
//! 10k–100k nodes. Round/message counts are identical across engines
//! by construction; only wall-clock differs.
//!
//! ```text
//! cargo bench -p lightnet-bench --bench engine_vs_sim
//! ```

use congest::collective::{broadcast, Item};
use congest::tree::build_bfs_tree;
use congest::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::Engine;
use lightgraph::generators;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_sim/bfs");
    group.sample_size(10);
    for &n in &[10_000usize, 30_000, 100_000] {
        let g = generators::gnp_sparse(n, (8.0 / n as f64).min(1.0), 100, 1);
        group.bench_with_input(BenchmarkId::new("sim", n), &g, |b, g| {
            b.iter(|| {
                let mut sim = Simulator::new(g);
                build_bfs_tree(&mut sim, 0)
            })
        });
        group.bench_with_input(BenchmarkId::new("engine", n), &g, |b, g| {
            b.iter(|| {
                let mut eng = Engine::new(g);
                build_bfs_tree(&mut eng, 0)
            })
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_sim/broadcast");
    group.sample_size(10);
    for &n in &[10_000usize, 30_000] {
        let g = generators::gnp_sparse(n, (8.0 / n as f64).min(1.0), 100, 2);
        let items: Vec<Item> = (0..256).map(|i| (i, [i * 2, i * 3])).collect();
        group.bench_with_input(BenchmarkId::new("sim", n), &g, |b, g| {
            let mut sim = Simulator::new(g);
            let (tau, _) = build_bfs_tree(&mut sim, 0);
            b.iter(|| broadcast(&mut sim, &tau, items.clone()))
        });
        group.bench_with_input(BenchmarkId::new("engine", n), &g, |b, g| {
            let mut eng = Engine::new(g);
            let (tau, _) = build_bfs_tree(&mut eng, 0);
            b.iter(|| broadcast(&mut eng, &tau, items.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs, bench_broadcast);
criterion_main!(benches);
