//! Criterion wall-clock benches, one group per Table-1 row plus the
//! Euler tour (Lemma 2). These time the *simulation* of the distributed
//! algorithms end-to-end on fixed instances; the experiment binary
//! (`experiments`) reports the CONGEST-round counts that correspond to
//! the paper's complexity column.

use congest::tree::build_bfs_tree;
use congest::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dist_mst::{boruvka::distributed_mst, euler::distributed_euler_tour};
use lightgraph::generators;
use lightnet::{doubling_spanner, light_spanner, net, shallow_light_tree};
use sparse_spanner::baswana_sen::baswana_sen;

fn bench_light_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/row1-light-spanner");
    group.sample_size(10);
    for &n in &[48usize, 96] {
        let g = generators::Family::ErdosRenyi.generate(n, 3);
        group.bench_with_input(BenchmarkId::new("k2", n), &g, |b, g| {
            b.iter(|| {
                let mut sim = Simulator::new(g);
                let (tau, _) = build_bfs_tree(&mut sim, 0);
                light_spanner(&mut sim, &tau, 0, 2, 0.25, 1)
            })
        });
        group.bench_with_input(BenchmarkId::new("baswana-sen-baseline", n), &g, |b, g| {
            b.iter(|| {
                let mut sim = Simulator::new(g);
                baswana_sen(&mut sim, 2, 1)
            })
        });
    }
    group.finish();
}

fn bench_slt(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/row2-slt");
    group.sample_size(10);
    for &n in &[48usize, 96] {
        let g = generators::Family::ErdosRenyi.generate(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut sim = Simulator::new(g);
                let (tau, _) = build_bfs_tree(&mut sim, 0);
                shallow_light_tree(&mut sim, &tau, 0, 0.5, 1)
            })
        });
    }
    group.finish();
}

fn bench_nets(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/row3-nets");
    group.sample_size(10);
    for &n in &[48usize, 96] {
        let g = generators::Family::Geometric.generate(n, 7);
        let scale = lightgraph::dijkstra::weighted_diameter_approx(&g) / 6;
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut sim = Simulator::new(g);
                let (tau, _) = build_bfs_tree(&mut sim, 0);
                net(&mut sim, &tau, scale.max(1), 0.5, 1)
            })
        });
    }
    group.finish();
}

fn bench_doubling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/row4-doubling-spanner");
    group.sample_size(10);
    for &n in &[32usize, 64] {
        let g = generators::Family::Geometric.generate(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut sim = Simulator::new(g);
                let (tau, _) = build_bfs_tree(&mut sim, 0);
                doubling_spanner(&mut sim, &tau, 0, 0.5, 1)
            })
        });
    }
    group.finish();
}

fn bench_euler(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma2/euler-tour");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        let g = generators::Family::ErdosRenyi.generate(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut sim = Simulator::new(g);
                let (tau, _) = build_bfs_tree(&mut sim, 0);
                let m = distributed_mst(&mut sim, &tau, 0, 1);
                distributed_euler_tour(&mut sim, &tau, &m, 0)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_light_spanner,
    bench_slt,
    bench_nets,
    bench_doubling,
    bench_euler
);
criterion_main!(benches);
