//! Experiment harness reproducing Table 1 of *Distributed Construction
//! of Light Networks*.
//!
//! Each `run_e*` function regenerates one experiment — the workload, the
//! parameter sweep, the baselines, and the table rows — and returns the
//! rows so both the `experiments` binary and the Criterion benches can
//! drive them. `EXPERIMENTS.md` records paper-vs-measured.

use congest::tree::build_bfs_tree;
use congest::{Executor, Simulator};
use engine::Engine;
use lightgraph::{generators, metrics, mst, Graph, NodeId};
use lightnet::{
    doubling_spanner, estimate_mst_weight, kry_slt, light_slt, light_spanner, net, net_quality,
    shallow_light_tree,
};
use sparse_spanner::{baswana_sen::baswana_sen, greedy::greedy_2k_minus_1};

/// A generic table row: label plus named numeric columns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (instance / parameters).
    pub label: String,
    /// `(column name, value)` pairs.
    pub cols: Vec<(&'static str, f64)>,
}

/// Renders rows as a markdown table.
pub fn render(title: &str, rows: &[Row]) -> String {
    let mut out = format!("\n### {title}\n\n");
    if rows.is_empty() {
        return out;
    }
    out.push_str("| instance |");
    for (name, _) in &rows[0].cols {
        out.push_str(&format!(" {name} |"));
    }
    out.push_str("\n|---|");
    for _ in &rows[0].cols {
        out.push_str("---|");
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("| {} |", r.label));
        for (_, v) in &r.cols {
            if v.fract() == 0.0 && v.abs() < 1e12 {
                out.push_str(&format!(" {} |", *v as i64));
            } else {
                out.push_str(&format!(" {v:.3} |"));
            }
        }
        out.push('\n');
    }
    out
}

fn sim_with_tau(g: &Graph, rt: NodeId) -> (Simulator<'_>, congest::tree::BfsTree) {
    let mut sim = Simulator::new(g);
    let (tau, _) = build_bfs_tree(&mut sim, rt);
    (sim, tau)
}

// ---------------------------------------------------------------------
// Backend dispatch: run any experiment on either execution engine.
// ---------------------------------------------------------------------

/// Which execution engine drives a run. Rounds and messages are
/// engine-independent (the parallel engine is bit-identical to the
/// simulator); only wall-clock differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The sequential reference simulator (`congest::Simulator`).
    Sim,
    /// The parallel deterministic engine (`engine::Engine`).
    Engine,
}

impl Backend {
    /// Both backends, for sweeps.
    pub const ALL: [Backend; 2] = [Backend::Sim, Backend::Engine];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Engine => "engine",
        }
    }
}

/// A computation generic over the executor, dispatched by [`run_on`].
///
/// (A trait rather than a closure because `Executor::run` is generic,
/// so executors cannot be trait objects.)
pub trait BackendJob {
    /// Result type.
    type Out;
    /// Runs the job on a concrete executor.
    fn run<E: Executor>(self, exec: &mut E) -> Self::Out;
}

/// Runs `job` over `g` on the chosen backend.
pub fn run_on<J: BackendJob>(g: &Graph, backend: Backend, job: J) -> J::Out {
    match backend {
        Backend::Sim => job.run(&mut Simulator::new(g)),
        Backend::Engine => job.run(&mut Engine::new(g)),
    }
}

/// Throughput comparison of the two backends: wall-clock for a BFS
/// tree plus a distributed MST on sparse Erdős–Rényi graphs, with the
/// (identical) round counts as a cross-check. Drives the
/// `experiments -- throughput` mode; the Criterion bench
/// `engine_vs_sim` covers the same axis with proper sampling.
pub fn run_throughput(sizes: &[usize], seed: u64) -> Vec<Row> {
    struct BfsMst {
        seed: u64,
    }
    impl BackendJob for BfsMst {
        type Out = congest::RunStats;
        fn run<E: Executor>(self, exec: &mut E) -> congest::RunStats {
            let (tau, _) = build_bfs_tree(exec, 0);
            let _ = dist_mst::boruvka::distributed_mst(exec, &tau, 0, self.seed);
            exec.total()
        }
    }

    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::gnp_sparse(n, (8.0 / n as f64).min(1.0), 100, seed);
        let mut cols: Vec<(&'static str, f64)> = Vec::new();
        let mut stats = Vec::new();
        for backend in Backend::ALL {
            let start = std::time::Instant::now();
            let s = run_on(&g, backend, BfsMst { seed });
            let ms = start.elapsed().as_secs_f64() * 1e3;
            cols.push((
                match backend {
                    Backend::Sim => "sim-ms",
                    Backend::Engine => "engine-ms",
                },
                ms,
            ));
            stats.push(s);
        }
        assert_eq!(stats[0], stats[1], "backends diverged on n={n}");
        cols.push(("rounds", stats[0].rounds as f64));
        cols.push(("messages", stats[0].messages as f64));
        rows.push(Row {
            label: format!("erdos-renyi n={n}"),
            cols,
        });
    }
    rows
}

/// E1 (Table 1 row 1, Theorem 2): light spanners for general graphs,
/// vs the greedy (quality-optimal) and Baswana–Sen (no lightness)
/// baselines.
pub fn run_e1(sizes: &[usize], ks: &[usize], seed: u64) -> Vec<Row> {
    let eps = 0.25;
    let mut rows = Vec::new();
    for family in [
        generators::Family::ErdosRenyi,
        generators::Family::TreeChords,
    ] {
        for &n in sizes {
            let g = family.generate(n, seed);
            for &k in ks {
                let (mut sim, tau) = sim_with_tau(&g, 0);
                let r = light_spanner(&mut sim, &tau, 0, k, eps, seed);
                let h = g.edge_subgraph_dedup(r.edges.iter().copied());
                let q = metrics::spanner_quality(&g, &h);

                let greedy = g.edge_subgraph(greedy_2k_minus_1(&g, k));
                let gl = metrics::lightness(&g, &greedy);

                let mut bs_sim = Simulator::new(&g);
                let bs = baswana_sen(&mut bs_sim, k, seed);
                let bsl = metrics::lightness(&g, &g.edge_subgraph_dedup(bs.edges.iter().copied()));

                rows.push(Row {
                    label: format!("{} n={} k={}", family.name(), g.n(), k),
                    cols: vec![
                        ("stretch", q.stretch),
                        ("stretch-bound", (2 * k - 1) as f64 * (1.0 + eps)),
                        ("edges", q.edges as f64),
                        ("lightness", q.lightness),
                        ("k·n^(1/k)", k as f64 * (g.n() as f64).powf(1.0 / k as f64)),
                        ("greedy-light", gl),
                        ("BS-light", bsl),
                        ("rounds", r.stats.rounds as f64),
                    ],
                });
            }
        }
    }
    rows
}

/// E1 round-scaling series: rounds vs `n^{1/2 + 1/(4k+2)}`.
pub fn run_e1_rounds(sizes: &[usize], k: usize, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::Family::ErdosRenyi.generate(n, seed);
        let (mut sim, tau) = sim_with_tau(&g, 0);
        let r = light_spanner(&mut sim, &tau, 0, k, 0.25, seed);
        let target = (g.n() as f64).powf(0.5 + 1.0 / (4 * k + 2) as f64);
        rows.push(Row {
            label: format!("erdos-renyi n={}", g.n()),
            cols: vec![
                ("rounds", r.stats.rounds as f64),
                ("n^(1/2+1/(4k+2))", target),
                ("ratio", r.stats.rounds as f64 / target),
            ],
        });
    }
    rows
}

/// E2 (Table 1 row 2, Theorem 1): SLT tradeoff vs the KRY95 optimum.
pub fn run_e2(n: usize, eps_sweep: &[f64], seed: u64) -> Vec<Row> {
    // the comb exposes the SLT tension: the MST (unit spine) has root
    // stretch ≈ 8 while the SPT (direct shortcuts) is ~n/16 times
    // heavier than the MST
    let g = generators::comb(n, 8);
    let _ = seed;
    let rt = 0;
    let mut rows = Vec::new();
    for &eps in eps_sweep {
        let (mut sim, tau) = sim_with_tau(&g, rt);
        let slt = shallow_light_tree(&mut sim, &tau, rt, eps, seed);
        let tree = g.edge_subgraph_dedup(slt.edges.iter().copied());
        let kry = g.edge_subgraph_dedup(kry_slt(&g, rt, eps));
        rows.push(Row {
            label: format!("comb n={} eps={}", g.n(), eps),
            cols: vec![
                ("root-stretch", metrics::root_stretch(&g, &tree, rt)),
                ("lightness", metrics::lightness(&g, &tree)),
                ("kry-stretch", metrics::root_stretch(&g, &kry, rt)),
                ("kry-lightness", metrics::lightness(&g, &kry)),
                ("breakpoints", slt.breakpoints as f64),
                ("rounds", slt.stats.rounds as f64),
            ],
        });
    }
    rows
}

/// E2 inverse regime (§4.4): lightness `1+γ`, stretch `O(1/γ)`.
pub fn run_e2_inverse(n: usize, gammas: &[f64], seed: u64) -> Vec<Row> {
    let g = generators::comb(n, 8);
    let mut rows = Vec::new();
    for &gamma in gammas {
        let (edges, stats) = light_slt(&g, 0, gamma, seed);
        let tree = g.edge_subgraph_dedup(edges);
        rows.push(Row {
            label: format!("comb n={} gamma={}", g.n(), gamma),
            cols: vec![
                ("lightness", metrics::lightness(&g, &tree)),
                ("1+gamma", 1.0 + gamma),
                ("root-stretch", metrics::root_stretch(&g, &tree, 0)),
                ("rounds", stats.rounds as f64),
            ],
        });
    }
    rows
}

/// E3 (Table 1 row 3, Theorem 3): nets — exact covering/separation vs
/// the `((1+δ)∆, ∆/(1+δ))` bounds, plus round scaling.
pub fn run_e3(sizes: &[usize], deltas: &[f64], seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::Family::Geometric.generate(n, seed);
        let scale = lightgraph::dijkstra::weighted_diameter_approx(&g) / 6;
        for &delta in deltas {
            let (mut sim, tau) = sim_with_tau(&g, 0);
            let r = net(&mut sim, &tau, scale.max(1), delta, seed);
            let (cover, sep) = net_quality(&g, &r.points);
            rows.push(Row {
                label: format!("geometric n={} delta={}", g.n(), delta),
                cols: vec![
                    ("points", r.points.len() as f64),
                    ("cover", cover as f64),
                    ("cover-bound", (scale.max(1) as f64) * (1.0 + delta)),
                    (
                        "sep",
                        if r.points.len() > 1 {
                            sep as f64
                        } else {
                            f64::NAN
                        },
                    ),
                    ("sep-bound", (scale.max(1) as f64) / (1.0 + delta)),
                    ("iters", r.iterations as f64),
                    ("rounds", r.stats.rounds as f64),
                    ("sqrt-n", (g.n() as f64).sqrt()),
                ],
            });
        }
    }
    rows
}

/// E4 (Table 1 row 4, Theorem 5): doubling spanners — lightness must
/// depend on ε but stay ~log n in n.
pub fn run_e4(sizes: &[usize], epsilons: &[f64], seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::Family::Geometric.generate(n, seed);
        for &eps in epsilons {
            let (mut sim, tau) = sim_with_tau(&g, 0);
            let r = doubling_spanner(&mut sim, &tau, 0, eps, seed);
            let h = g.edge_subgraph_dedup(r.edges.iter().copied());
            let q = metrics::spanner_quality(&g, &h);
            rows.push(Row {
                label: format!("geometric n={} eps={}", g.n(), eps),
                cols: vec![
                    ("stretch", q.stretch),
                    ("1+eps-target", 1.0 + eps),
                    ("edges", q.edges as f64),
                    ("lightness", q.lightness),
                    ("scales", r.scales as f64),
                    ("rounds", r.stats.rounds as f64),
                ],
            });
        }
    }
    rows
}

/// E5 (Lemma 2, §3): Euler-tour round scaling given the MST fragments.
pub fn run_e5(sizes: &[usize], seed: u64) -> Vec<Row> {
    use dist_mst::{boruvka::distributed_mst, euler::distributed_euler_tour};
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::Family::ErdosRenyi.generate(n, seed);
        let (mut sim, tau) = sim_with_tau(&g, 0);
        let m = distributed_mst(&mut sim, &tau, 0, seed);
        let tour = distributed_euler_tour(&mut sim, &tau, &m, 0);
        assert_eq!(tour.total_length, 2 * m.weight);
        rows.push(Row {
            label: format!("erdos-renyi n={}", g.n()),
            cols: vec![
                ("mst-rounds", m.stats.rounds as f64),
                ("tour-rounds", tour.stats.rounds as f64),
                ("sqrt-n", (g.n() as f64).sqrt()),
                (
                    "tour/sqrt-n",
                    tour.stats.rounds as f64 / (g.n() as f64).sqrt(),
                ),
                ("fragments", m.fragment_count() as f64),
            ],
        });
    }
    rows
}

/// E6 (Theorem 7, §8): MST-weight sandwich from net cardinalities.
pub fn run_e6(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for family in generators::Family::ALL {
        let g = family.generate(48, seed);
        let l = mst::kruskal(&g).weight;
        let (mut sim, tau) = sim_with_tau(&g, 0);
        let est = estimate_mst_weight(&mut sim, &tau, seed);
        rows.push(Row {
            label: format!("{} n={}", family.name(), g.n()),
            cols: vec![
                ("L (MST)", l as f64),
                ("psi", est.psi as f64),
                ("psi/L", est.psi as f64 / l as f64),
                ("alpha*16*log n", est.alpha * 16.0 * (g.n() as f64).log2()),
                ("scales", est.scales.len() as f64),
                ("rounds", est.stats.rounds as f64),
            ],
        });
    }
    rows
}

/// Ablation: two-phase break-point selection vs the sequential rule
/// (DESIGN.md §7) — the constant-factor lightness loss must be small.
pub fn run_slt_ablation(seed: u64) -> Vec<Row> {
    let g = generators::comb(96, 8);
    let _ = seed;
    let mut rows = Vec::new();
    for &eps in &[0.25, 0.5, 1.0] {
        let (mut sim, tau) = sim_with_tau(&g, 0);
        let two_phase = shallow_light_tree(&mut sim, &tau, 0, eps, seed);
        let tree = g.edge_subgraph_dedup(two_phase.edges.iter().copied());
        let kry = g.edge_subgraph_dedup(kry_slt(&g, 0, eps));
        let (l2, l1) = (metrics::lightness(&g, &tree), metrics::lightness(&g, &kry));
        rows.push(Row {
            label: format!("eps={eps}"),
            cols: vec![
                ("two-phase-lightness", l2),
                ("sequential-lightness", l1),
                ("factor", l2 / l1),
            ],
        });
    }
    rows
}
