//! The experiment driver: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p lightnet-bench --bin experiments            # all
//! cargo run --release -p lightnet-bench --bin experiments -- e1 e5  # subset
//! cargo run --release -p lightnet-bench --bin experiments -- quick  # smaller sweeps
//! ```

use lightnet_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let want = |name: &str| {
        args.is_empty() || args.iter().all(|a| a == "quick") || args.iter().any(|a| a == name)
    };
    let seed = 20200803; // PODC 2020 started August 3rd

    if want("e1") {
        let sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256] };
        println!(
            "{}",
            render(
                "E1 — light spanners for general graphs (Theorem 2)",
                &run_e1(sizes, &[2, 3], seed)
            )
        );
        let rsizes: &[usize] = if quick {
            &[64, 128, 256]
        } else {
            &[64, 128, 256, 512]
        };
        println!(
            "{}",
            render(
                "E1b — spanner round scaling (k = 2)",
                &run_e1_rounds(rsizes, 2, seed)
            )
        );
    }
    if want("e2") {
        println!(
            "{}",
            render(
                "E2 — shallow-light trees vs the KRY95 optimum (Theorem 1)",
                &run_e2(160, &[0.25, 0.5, 1.0], seed)
            )
        );
        println!(
            "{}",
            render(
                "E2b — inverse regime via [BFN16] (Lemma 5): lightness 1+γ",
                &run_e2_inverse(160, &[0.25, 0.5, 0.75], seed)
            )
        );
        println!(
            "{}",
            render(
                "E2c — two-phase selection ablation",
                &run_slt_ablation(seed)
            )
        );
    }
    if want("e3") {
        let sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256] };
        println!(
            "{}",
            render(
                "E3 — nets (Theorem 3)",
                &run_e3(sizes, &[0.25, 0.5, 1.0], seed)
            )
        );
    }
    if want("e4") {
        let sizes: &[usize] = if quick { &[48, 96] } else { &[48, 96, 192] };
        println!(
            "{}",
            render(
                "E4 — light spanners for doubling graphs (Theorem 5)",
                &run_e4(sizes, &[0.5, 0.25], seed)
            )
        );
    }
    if want("e5") {
        let sizes: &[usize] = if quick {
            &[64, 256, 1024]
        } else {
            &[64, 128, 256, 512, 1024]
        };
        println!(
            "{}",
            render(
                "E5 — Euler tour of the MST (Lemma 2) round scaling",
                &run_e5(sizes, seed)
            )
        );
    }
    if want("throughput") {
        let sizes: &[usize] = if quick {
            &[1000, 4000]
        } else {
            &[1000, 4000, 16000]
        };
        println!(
            "{}",
            render(
                "Throughput — sequential simulator vs parallel engine (BFS + MST)",
                &run_throughput(sizes, seed)
            )
        );
    }
    if want("e6") {
        println!(
            "{}",
            render(
                "E6 — MST-weight estimation from nets (Theorem 7, §8)",
                &run_e6(seed)
            )
        );
    }
}
