//! Distributed Baswana–Sen (2k−1)-spanner for weighted graphs \[BS07\].
//!
//! §5 of the paper uses this algorithm for the low-weight bucket `E′`
//! ("in O(k) rounds we get a (2k−1)-spanner of `G′`, where the expected
//! number of edges is O(k · n^{1+1/k})"). It is also an experiment
//! baseline: a sparse spanner with *no lightness guarantee*.
//!
//! The algorithm runs `k` phases of cluster sampling. Each phase costs
//! `O(1)` rounds (one neighbor exchange); sampling uses a common seed,
//! so the decision "is cluster c sampled in phase i" is locally
//! computable by every vertex.

use congest::{Ctx, Executor, Message, Program, RunStats};
use lightgraph::{EdgeId, NodeId, Weight};
use std::collections::HashMap;

const TAG_CLUSTER: u64 = 40;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Result of the Baswana–Sen construction.
#[derive(Debug, Clone)]
pub struct BsSpanner {
    /// Spanner edge ids (deduplicated, sorted).
    pub edges: Vec<EdgeId>,
    /// Rounds/messages consumed.
    pub stats: RunStats,
}

/// One-round exchange of `(clustered?, center)` with all neighbors.
struct ClusterExchange {
    center: Option<u64>,
    heard: HashMap<NodeId, Option<u64>>,
}

impl Program for ClusterExchange {
    type Output = HashMap<NodeId, Option<u64>>;
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let (flag, c) = match self.center {
            Some(c) => (1, c),
            None => (0, 0),
        };
        ctx.send_all(Message::words(&[TAG_CLUSTER, flag, c]));
    }
    fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_CLUSTER);
            let center = (msg.word(1) == 1).then(|| msg.word(2));
            self.heard.insert(*from, center);
        }
    }
    fn finish(self) -> Self::Output {
        self.heard
    }
}

/// Runs distributed Baswana–Sen with parameter `k ≥ 1` on the
/// simulator's graph, returning a (2k−1)-spanner with expected
/// `O(k · n^{1+1/k})` edges in `O(k)` rounds.
///
/// `seed` drives cluster sampling; the construction is deterministic in
/// it. Stretch `2k−1` holds for every run (the randomness only affects
/// the size).
pub fn baswana_sen(sim: &mut impl Executor, k: usize, seed: u64) -> BsSpanner {
    assert!(k >= 1, "stretch parameter k must be at least 1");
    let start = sim.total();
    let g = sim.graph();
    let n = g.n();
    let m = g.m();
    let p = (n.max(2) as f64).powf(-1.0 / k as f64);

    // center[v] = Some(center id) while v is clustered.
    let mut center: Vec<Option<u64>> = (0..n).map(|v| Some(v as u64)).collect();
    // active[e] per vertex view: both endpoints must consider an edge
    // active for it to be relaxed; each vertex prunes independently.
    let mut active: Vec<Vec<bool>> = (0..n).map(|v| vec![true; g.degree(v)]).collect();
    let mut chosen: Vec<bool> = vec![false; g.m()];

    for phase in 1..=k {
        // (a) exchange cluster ids.
        let center_ref = &center;
        let (nbr, _) = sim.run(|v, _| ClusterExchange {
            center: center_ref[v],
            heard: HashMap::new(),
        });
        let g = sim.graph();
        // (b) sampling decision, locally computable from the seed.
        // The last phase samples nothing, forcing every clustered
        // vertex to connect to all adjacent clusters.
        let sampled = |c: u64| -> bool {
            phase < k
                && (splitmix64(seed ^ (phase as u64) << 24 ^ c) as f64) < p * (u64::MAX as f64)
        };
        // (c) local decisions (free).
        for v in 0..n {
            let Some(cv) = center[v] else { continue };
            if sampled(cv) {
                continue;
            }
            // lightest active edge per adjacent (clustered) cluster
            let mut best: HashMap<u64, (Weight, EdgeId, usize)> = HashMap::new();
            for (i, &(u, w, e)) in g.neighbors(v).iter().enumerate() {
                if !active[v][i] {
                    continue;
                }
                if let Some(Some(cu)) = nbr[v].get(&u) {
                    if *cu == cv {
                        active[v][i] = false; // intra-cluster
                        continue;
                    }
                    let cand = (w, e, i);
                    let entry = best.entry(*cu).or_insert(cand);
                    if (cand.0, cand.1) < (entry.0, entry.1) {
                        *entry = cand;
                    }
                }
            }
            // lightest edge into a *sampled* adjacent cluster, if any
            let join = best
                .iter()
                .filter(|&(&c, _)| sampled(c))
                .map(|(&c, &(w, e, i))| ((w, e), c, i))
                .min();
            match join {
                Some(((jw, je), jc, ji)) => {
                    chosen[je] = true;
                    center[v] = Some(jc);
                    active[v][ji] = false;
                    // connect to every strictly lighter cluster, then
                    // drop those edges
                    for (&c, &(w, e, i)) in &best {
                        if c == jc {
                            active[v][i] = false;
                            continue;
                        }
                        if (w, e) < (jw, je) {
                            chosen[e] = true;
                            active[v][i] = false;
                        }
                    }
                }
                None => {
                    // no sampled neighbor cluster: connect to all
                    // adjacent clusters and retire
                    for (&_c, &(_w, e, i)) in &best {
                        chosen[e] = true;
                        active[v][i] = false;
                    }
                    center[v] = None;
                    for a in &mut active[v] {
                        *a = false;
                    }
                }
            }
        }
    }

    // Any edge still active on both sides connects two vertices of the
    // same final cluster hierarchy that never got separated — add the
    // remaining inter-cluster lightest edges handled above; edges
    // between two retired vertices were covered when the first endpoint
    // retired (it added its lightest edge per cluster, and a retired
    // neighbor was in *some* cluster at that time).
    let edges: Vec<EdgeId> = (0..m).filter(|&e| chosen[e]).collect();
    let stats = sim.total().since(start);
    BsSpanner { edges, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::Simulator;
    use lightgraph::{generators, metrics, Graph};

    fn check(g: &Graph, k: usize, seed: u64) -> BsSpanner {
        let mut sim = Simulator::new(g);
        let sp = baswana_sen(&mut sim, k, seed);
        let h = g.edge_subgraph_dedup(sp.edges.iter().copied());
        let stretch = metrics::max_stretch(g, &h);
        assert!(
            stretch <= (2 * k - 1) as f64 + 1e-9,
            "stretch {stretch} exceeds {} (k={k})",
            2 * k - 1
        );
        sp
    }

    #[test]
    fn stretch_bound_holds_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(50, 0.2, 40, seed);
            for k in 1..=4 {
                check(&g, k, seed * 10 + k as u64);
            }
        }
    }

    #[test]
    fn stretch_bound_holds_on_dense_graph() {
        let g = generators::complete(30, 50, 7);
        for k in 2..=3 {
            check(&g, k, k as u64);
        }
    }

    #[test]
    fn k1_returns_whole_graph() {
        let g = generators::erdos_renyi(20, 0.3, 10, 1);
        let sp = check(&g, 1, 1);
        assert_eq!(sp.edges.len(), g.m(), "k=1 must keep every edge");
    }

    #[test]
    fn sparsifies_dense_graphs() {
        let g = generators::complete(64, 100, 3);
        let sp = check(&g, 3, 3);
        // m = 2016; a 5-spanner should drop most of it. Expected size
        // O(k n^{1+1/k}) ≈ 3*64^{4/3} ≈ 768; allow slack.
        assert!(
            sp.edges.len() < g.m() / 2,
            "spanner has {} of {} edges",
            sp.edges.len(),
            g.m()
        );
    }

    #[test]
    fn runs_in_o_k_rounds() {
        let g = generators::erdos_renyi(60, 0.15, 30, 5);
        let mut sim = Simulator::new(&g);
        let sp = baswana_sen(&mut sim, 4, 5);
        assert!(sp.stats.rounds <= 4 * 3, "BS must cost O(k) rounds");
    }
}
