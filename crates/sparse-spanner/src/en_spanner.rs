//! The Elkin–Neiman unweighted spanner \[EN17b\] — the algorithm §5
//! simulates on cluster graphs.
//!
//! Every vertex `x` draws `r(x)` from an exponential distribution with
//! rate `β = ln(c·n)/k`; `m(x)` starts at `r(x)` with source `s(x) = x`,
//! and for `k` rounds every vertex adopts the maximum of
//! `m(neighbor) − 1` over its closed neighborhood. After `k` rounds,
//! for every source `y` whose message reached `x` with value
//! `≥ m(x) − 1`, `x` adds one edge to a neighbor that delivered it.
//!
//! Stretch `2k−1` is *guaranteed* provided `r(x) < k` for all `x`
//! (checked locally; the paper conditions its analysis on this event,
//! which holds with probability ≥ 1 − 1/c); the size `O(n^{1+1/k})`
//! holds in expectation.
//!
//! This module provides the pure logic on explicit adjacency lists: the
//! sequential runner used by tests and baselines, and the
//! sampling/update/selection pieces that `lightnet::light_spanner`
//! re-uses to drive the distributed cluster-graph simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential radii for the EN17b algorithm: `r(x) ~ Exp(β)` with
/// `β = ln(c·n)/k`, `c = 3`. Deterministic in `seed`.
///
/// Returns `(radii, ok)` where `ok` is the event `∀x: r(x) < k` that
/// the stretch analysis is conditioned on; callers re-draw on `!ok`
/// (expected `O(1)` retries).
pub fn sample_radii(n: usize, k: usize, seed: u64) -> (Vec<f64>, bool) {
    assert!(k >= 1);
    let beta = ((3 * n.max(2)) as f64).ln() / k as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let radii: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -u.ln() / beta
        })
        .collect();
    let ok = radii.iter().all(|&r| r < k as f64);
    (radii, ok)
}

/// The per-round state of one vertex in the EN17b propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnState {
    /// Current value `m(x)`.
    pub m: f64,
    /// Source vertex `s(x)` whose (decremented) radius `m` carries.
    pub s: usize,
}

/// One synchronous EN17b update: every vertex adopts the maximum of its
/// own state and `m(v) − 1` over incoming neighbor states. Returns the
/// new states given this round's incoming `(neighbor state)` lists.
pub fn en_update(own: &[EnState], incoming: &[Vec<EnState>]) -> Vec<EnState> {
    own.iter()
        .zip(incoming)
        .map(|(me, inc)| {
            let mut best = *me;
            for n in inc {
                let cand = EnState { m: n.m, s: n.s };
                if cand.m > best.m || (cand.m == best.m && cand.s < best.s) {
                    best = cand;
                }
            }
            best
        })
        .collect()
}

/// Sequential EN17b on an explicit unweighted graph given as adjacency
/// lists. Returns spanner edges as `(u, v)` pairs with `u < v`.
///
/// Re-draws radii until the stretch precondition `∀x: r(x) < k` holds
/// (geometric number of retries).
pub fn en_spanner(adj: &[Vec<usize>], k: usize, seed: u64) -> Vec<(usize, usize)> {
    let n = adj.len();
    let mut attempt = 0u64;
    let radii = loop {
        let (r, ok) = sample_radii(n, k, seed.wrapping_add(attempt));
        if ok {
            break r;
        }
        attempt += 1;
        assert!(
            attempt < 64,
            "radius sampling failed 64 times — bad parameters?"
        );
    };

    // m/s propagation for k rounds. States the neighbors *sent* last
    // round are their values minus one.
    let mut state: Vec<EnState> = (0..n).map(|x| EnState { m: radii[x], s: x }).collect();
    // received[x] = set of (source, best decremented value, via) with
    // maximum value per source — needed for the edge-selection rule.
    let mut best_via: Vec<std::collections::HashMap<usize, (f64, usize)>> =
        vec![std::collections::HashMap::new(); n];
    for _ in 0..k {
        let sent: Vec<EnState> = state
            .iter()
            .map(|st| EnState {
                m: st.m - 1.0,
                s: st.s,
            })
            .collect();
        let mut incoming: Vec<Vec<EnState>> = vec![Vec::new(); n];
        for x in 0..n {
            for &y in &adj[x] {
                incoming[x].push(sent[y]);
                let entry = best_via[x].entry(sent[y].s).or_insert((sent[y].m, y));
                if sent[y].m > entry.0 {
                    *entry = (sent[y].m, y);
                }
            }
        }
        state = en_update(&state, &incoming);
    }

    // Edge selection: for every source y whose message reached x with
    // value ≥ m(x) − 1, add one edge towards a neighbor that sent it.
    let mut edges: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for x in 0..n {
        for (&_src, &(val, via)) in &best_via[x] {
            if val >= state[x].m - 1.0 {
                edges.insert((x.min(via), x.max(via)));
            }
        }
    }
    let mut out: Vec<(usize, usize)> = edges.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightgraph::{generators, metrics, Graph};

    fn to_adj(g: &Graph) -> Vec<Vec<usize>> {
        (0..g.n())
            .map(|v| g.neighbors(v).iter().map(|&(u, _, _)| u).collect())
            .collect()
    }

    fn unweighted(g: &Graph) -> Graph {
        Graph::from_edges(g.n(), g.edges().iter().map(|e| (e.u, e.v, 1))).unwrap()
    }

    #[test]
    fn stretch_holds_on_unweighted_graphs() {
        for seed in 0..3 {
            let g = unweighted(&generators::erdos_renyi(60, 0.15, 1, seed));
            let adj = to_adj(&g);
            for k in 2..=4 {
                let edges = en_spanner(&adj, k, seed * 7 + k as u64);
                let mut h = Graph::new(g.n());
                for &(u, v) in &edges {
                    h.add_edge(u, v, 1).unwrap();
                }
                let s = metrics::max_stretch(&g, &h);
                assert!(
                    s <= (2 * k - 1) as f64 + 1e-9,
                    "stretch {s} > {} for k={k} seed={seed}",
                    2 * k - 1
                );
            }
        }
    }

    #[test]
    fn sparsifies_dense_unweighted_graphs() {
        let g = unweighted(&generators::complete(60, 1, 1));
        let adj = to_adj(&g);
        let edges = en_spanner(&adj, 3, 9);
        assert!(
            edges.len() < g.m() / 2,
            "{} of {} edges kept",
            edges.len(),
            g.m()
        );
    }

    #[test]
    fn radii_respect_precondition_flag() {
        let (r, ok) = sample_radii(100, 3, 42);
        assert_eq!(r.len(), 100);
        if ok {
            assert!(r.iter().all(|&x| x < 3.0));
        }
        // determinism
        assert_eq!(sample_radii(100, 3, 42).0, r);
    }

    #[test]
    fn en_update_prefers_larger_m_then_smaller_source() {
        let own = vec![EnState { m: 1.0, s: 5 }];
        let inc = vec![vec![EnState { m: 2.0, s: 9 }, EnState { m: 2.0, s: 3 }]];
        let out = en_update(&own, &inc);
        assert_eq!(out[0], EnState { m: 2.0, s: 3 });
    }

    #[test]
    fn connected_input_yields_connected_spanner() {
        let g = unweighted(&generators::erdos_renyi(40, 0.3, 1, 4));
        let adj = to_adj(&g);
        let edges = en_spanner(&adj, 2, 11);
        let mut h = Graph::new(g.n());
        for &(u, v) in &edges {
            h.add_edge(u, v, 1).unwrap();
        }
        assert!(h.is_connected(), "finite stretch requires connectivity");
    }
}
