//! The greedy (2k−1)-spanner of Althöfer et al. \[ADD+93\] — the
//! sequential quality baseline.
//!
//! Filtser–Solomon \[FS16\] showed the greedy spanner is *existentially
//! optimal*: its size `O(n^{1+1/k})` and lightness `O(n^{1/k})` (for
//! stretch `(2k−1)·(1+ε)`) match the best possible. The experiments use
//! it as the quality yardstick the distributed algorithm is compared
//! against (the paper's §1: "the greedy algorithm has inherently large
//! running time" — it is sequential and needs `m` shortest-path
//! queries, which is exactly why the distributed construction exists).

use lightgraph::{dijkstra, EdgeId, Graph, Weight};

/// Builds the greedy `t`-spanner: edges in `(weight, id)` order; an edge
/// `(u,v)` enters iff the current spanner distance exceeds `t · w`.
///
/// `t` is given as a rational `t_num / t_den` to keep the comparison
/// exact in integers.
pub fn greedy_spanner(g: &Graph, t_num: u64, t_den: u64) -> Vec<EdgeId> {
    assert!(t_den > 0 && t_num >= t_den, "stretch must be at least 1");
    let mut order: Vec<EdgeId> = (0..g.m()).collect();
    order.sort_by_key(|&e| (g.edge(e).w, e));
    let mut h = Graph::new(g.n());
    let mut chosen = Vec::new();
    for e in order {
        let edge = g.edge(e);
        // bounded search: we only care whether d_H(u,v) <= t*w
        let limit: Weight = edge.w.saturating_mul(t_num) / t_den;
        let sp = dijkstra::bounded_shortest_paths(&h, edge.u, limit);
        if sp.dist[edge.v] > limit {
            h.add_edge(edge.u, edge.v, edge.w)
                .expect("edge from valid graph");
            chosen.push(e);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Convenience wrapper for the classical integer stretch `2k − 1`.
pub fn greedy_2k_minus_1(g: &Graph, k: usize) -> Vec<EdgeId> {
    greedy_spanner(g, (2 * k - 1) as u64, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightgraph::{generators, metrics};

    #[test]
    fn stretch_bound_is_respected() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(40, 0.3, 30, seed);
            for k in 1..=3 {
                let edges = greedy_2k_minus_1(&g, k);
                let h = g.edge_subgraph(edges);
                let s = metrics::max_stretch(&g, &h);
                assert!(s <= (2 * k - 1) as f64 + 1e-9, "k={k} stretch {s}");
            }
        }
    }

    #[test]
    fn k1_keeps_all_edges_of_metric_graphs() {
        // with stretch 1, an edge is skipped only if an equally light
        // path already exists
        let g = generators::path(10, 5);
        let edges = greedy_2k_minus_1(&g, 1);
        assert_eq!(edges.len(), g.m());
    }

    #[test]
    fn greedy_contains_the_mst() {
        let g = generators::erdos_renyi(35, 0.25, 25, 7);
        let mst = lightgraph::mst::kruskal(&g);
        let edges = greedy_2k_minus_1(&g, 3);
        for e in mst.edges {
            assert!(
                edges.contains(&e),
                "greedy spanner must contain MST edge {e}"
            );
        }
    }

    #[test]
    fn fractional_stretch() {
        let g = generators::complete(25, 40, 2);
        // stretch 1.5
        let edges = greedy_spanner(&g, 3, 2);
        let h = g.edge_subgraph(edges);
        let s = metrics::max_stretch(&g, &h);
        assert!(s <= 1.5 + 1e-9);
    }

    #[test]
    fn sparsifies_complete_graphs() {
        let g = generators::complete(40, 60, 5);
        let edges = greedy_2k_minus_1(&g, 3);
        assert!(edges.len() < g.m() / 2);
    }
}
