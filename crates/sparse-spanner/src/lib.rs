//! Sparse-spanner substrates and baselines.
//!
//! * [`mod@baswana_sen`] — distributed Baswana–Sen (2k−1)-spanner \[BS07\],
//!   used by §5 for the low-weight bucket and as a no-lightness
//!   baseline,
//! * [`mod@en_spanner`] — the Elkin–Neiman unweighted spanner \[EN17b\] that
//!   §5 simulates on cluster graphs (sampling, update rule, selection
//!   rule, and a sequential runner),
//! * [`greedy`] — the greedy (2k−1)-spanner \[ADD+93\], the existentially
//!   optimal sequential baseline \[FS16\].

pub mod baswana_sen;
pub mod en_spanner;
pub mod greedy;

pub use baswana_sen::{baswana_sen, BsSpanner};
pub use en_spanner::{en_spanner, en_update, sample_radii, EnState};
pub use greedy::{greedy_2k_minus_1, greedy_spanner};
