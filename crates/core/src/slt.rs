//! Shallow-Light Trees (§4, Theorem 1).
//!
//! A `(1+ε, 1+O(1/ε))`-SLT combines the MST `T` with an approximate
//! shortest-path tree `T_rt`:
//!
//! 1. compute the MST, its Euler tour `L` (§3), and an approximate SPT,
//! 2. select *break points* on `L` in two phases — a parallel
//!    sequential scan inside `√n`-sized tour intervals (BP₁) and a
//!    centralized filtering of the interval heads at `rt` (BP₂), both
//!    enforcing the gap rule `d_L(prev, x) > ε·d_{T_rt}(rt, x)`,
//! 3. build `H = T ∪ ⋃_{b∈BP} P_b` where `P_b` is the `T_rt` path from
//!    `rt` to `b` (realized by marking the vertices whose `T_rt` subtree
//!    contains a break point),
//! 4. return another approximate SPT, computed *inside `H`*.
//!
//! Corollary 3 gives `w(H) ≤ (1 + 4/ε)·w(T)`; Lemma 4 gives root
//! stretch `1 + O(ε)`. The inverse tradeoff (lightness `1+γ`, stretch
//! `O(1/γ)`) is obtained by the \[BFN16\] reweighting reduction
//! ([`light_slt`], §4.4, Lemma 5).

use crate::tour_sweep::{tour_sweep, Direction, TourRouting};
use congest::collective;
use congest::obs;
use congest::tree::{build_bfs_tree, BfsTree};
use congest::{Ctx, Executor, Message, Program, RunStats, Simulator};
use dist_mst::boruvka::distributed_mst;
use dist_mst::euler::distributed_euler_tour;
use dist_sssp::landmark::{approx_spt, SptConfig};
use lightgraph::{EdgeId, Graph, NodeId, Weight};
use std::sync::Arc;

/// Result of the distributed SLT construction.
#[derive(Debug, Clone)]
pub struct SltResult {
    /// The root.
    pub root: NodeId,
    /// Edge ids (in the input graph) of the final tree `T_SLT`.
    pub edges: Vec<EdgeId>,
    /// Number of break points selected (BP₁ + BP₂).
    pub breakpoints: usize,
    /// Rounds/messages of the whole construction (MST + tour + SPTs +
    /// selection + H + final SPT).
    pub stats: RunStats,
}

const TAG_MARK: u64 = 60;

/// Upward marking of `A_BP` on the approximate SPT: every vertex whose
/// `T_rt` subtree contains a break point adds its parent edge.
struct MarkUp {
    parent: Option<NodeId>,
    marked: bool,
}

impl Program for MarkUp {
    type Output = bool;
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.marked {
            if let Some(p) = self.parent {
                ctx.send(p, Message::words(&[TAG_MARK]));
            }
        }
    }
    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        if !inbox.is_empty() && !self.marked {
            self.marked = true;
            if let Some(p) = self.parent {
                ctx.send(p, Message::words(&[TAG_MARK]));
            }
        }
    }
    /// Marks are idempotent: co-queued duplicates collapse to one.
    /// (Each node marks at most once, so this fires only under caps
    /// larger than the mark fan-in — declared for completeness; the
    /// SLT's message volume lives in its `approx_spt` phases, whose
    /// multi-source relaxation combiner does the heavy lifting.)
    fn combine_key(&self, msg: &Message) -> Option<congest::Word> {
        debug_assert_eq!(msg.word(0), TAG_MARK);
        Some(TAG_MARK)
    }
    fn combine(&self, queued: &Message, _incoming: &Message) -> Message {
        queued.clone()
    }
    fn finish(self) -> bool {
        self.marked
    }
}

/// The break-point gap rule (Equation (2)).
fn joins(r_x: Weight, r_prev: Weight, d_rt: Weight, epsilon: f64) -> bool {
    (r_x - r_prev) as f64 > epsilon * d_rt as f64
}

/// Builds a `(1 + O(ε), 1 + O(1/ε))`-SLT rooted at `rt`.
///
/// `epsilon ∈ (0, 1]` trades root stretch (`1 + O(ε)`) against
/// lightness (`1 + O(1/ε)`); for the inverse regime use [`light_slt`].
///
/// # Panics
/// Panics if the graph is disconnected or `epsilon` is not positive.
pub fn shallow_light_tree(
    sim: &mut impl Executor,
    tau: &BfsTree,
    rt: NodeId,
    epsilon: f64,
    seed: u64,
) -> SltResult {
    shallow_light_tree_with(sim, tau, rt, epsilon, seed, None, None)
}

/// [`shallow_light_tree`] with explicit approximate-SPT knobs: both
/// internal [`approx_spt`] phases (the SPT of `G` and the final SPT
/// inside `H`) use `spt_landmarks` / `spt_hop_bound` in place of the
/// adaptive defaults (see [`SptConfig`]) — the deterministic ablation
/// surface the `scenario` runner exposes as `landmarks` / `hop_bound`.
pub fn shallow_light_tree_with(
    sim: &mut impl Executor,
    tau: &BfsTree,
    rt: NodeId,
    epsilon: f64,
    seed: u64,
    spt_landmarks: Option<usize>,
    spt_hop_bound: Option<u64>,
) -> SltResult {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let spt_cfg = |s: u64| SptConfig {
        landmarks: spt_landmarks,
        hop_bound: spt_hop_bound,
        ..SptConfig::new(s)
    };
    let start = sim.total();
    // Owned copy: the phases below borrow `g` across `&mut sim` runs
    // (see `distributed_mst` for the rationale).
    let g_owned = sim.graph().clone();
    let g = &g_owned;
    let n = g.n();
    if n <= 1 {
        return SltResult {
            root: rt,
            edges: Vec::new(),
            breakpoints: 0,
            stats: RunStats::default(),
        };
    }

    // (1) MST, Euler tour, approximate SPT.
    let mst = obs::span(sim, "mst", |sim| distributed_mst(sim, tau, rt, seed));
    let tour = obs::span(sim, "tour", |sim| {
        distributed_euler_tour(sim, tau, &mst, rt)
    });
    let routing = TourRouting::new(&tour);
    let spt = obs::span(sim, "spt", |sim| {
        approx_spt(sim, tau, rt, &spt_cfg(seed ^ 0x51f7))
    });

    let (seq, times) = tour.assemble();
    let times = Arc::new(times);
    let alpha = (n as f64).sqrt().ceil() as usize;

    // (2a) BP₁: parallel sequential scans inside the intervals.
    let dist = Arc::new(spt.dist.clone());
    let seq_rc = Arc::new(seq.clone());
    let eps = epsilon;
    let (sweep_out, _) = obs::span(sim, "bp1", |sim| {
        tour_sweep(
            sim,
            &routing,
            Direction::LeftToRight,
            |p| p % alpha == 0,
            |p| [times[p], 0],
            |v| {
                let times = Arc::clone(&times);
                let dist = Arc::clone(&dist);
                let seq = Arc::clone(&seq_rc);
                move |pos: usize, tok: [u64; 2]| {
                    debug_assert_eq!(seq[pos], v);
                    if joins(times[pos], tok[0], dist[v], eps) {
                        [times[pos], 0]
                    } else {
                        tok
                    }
                }
            },
        )
    });
    // derive BP₁ membership locally (same rule the sweep applied)
    let mut is_bp = vec![false; n];
    for (v, recs) in sweep_out.iter().enumerate() {
        for &(pos, tok) in recs {
            if joins(times[pos], tok[0], spt.dist[v], eps) {
                is_bp[v] = true;
            }
        }
    }

    // (2b) BP₂: heads upcast (position, R, d_rt) through the eager
    // merged gather (positions are unique keys); rt filters with the
    // same sequential rule and unicasts each selected position to the
    // vertex that owns it — `Σ depth` deliveries instead of the
    // `|BP₂| · n` the old broadcast paid.
    let dist_ref = &spt.dist;
    let seq_ref = &seq;
    let bp2 = obs::span(sim, "bp2", |sim| {
        let (heads, _) = collective::gather_merged(sim, tau, |v| {
            routing.positions[v]
                .iter()
                .filter(|&&p| p % alpha == 0)
                .map(|&p| (p as u64, [times[p], dist_ref[v]]))
                .collect()
        });
        let mut bp2: Vec<u64> = Vec::new();
        let mut last_r: Weight = 0; // x_0 = rt joins BP₂ first
        for (&pos, &[r, d]) in &heads {
            if pos == 0 {
                bp2.push(0);
                last_r = r;
                continue;
            }
            if joins(r, last_r, d, eps) {
                bp2.push(pos);
                last_r = r;
            }
        }
        let items: Vec<(NodeId, collective::Item)> = bp2
            .iter()
            .map(|&p| (seq_ref[p as usize], (p, [1, 0])))
            .collect();
        let (recv, _) = collective::downcast(sim, tau, items);
        debug_assert!(bp2
            .iter()
            .all(|&p| recv[seq_ref[p as usize]].iter().any(|&(k, _)| k == p)));
        bp2
    });
    for &p in &bp2 {
        is_bp[seq[p as usize]] = true;
    }
    is_bp[rt] = true;
    let breakpoints = is_bp.iter().filter(|&&b| b).count();

    // (3) H = T ∪ paths: mark A_BP up the SPT and add parent edges.
    let is_bp_ref = &is_bp;
    let spt_parent = &spt.parent;
    let (marked, _) = obs::span(sim, "mark", |sim| {
        sim.run(|v, _| MarkUp {
            parent: spt_parent[v],
            marked: is_bp_ref[v],
        })
    });
    let mut h_edges: Vec<EdgeId> = mst.mst_edges.clone();
    for v in 0..n {
        if v != rt && marked[v] {
            if let Some(p) = spt.parent[v] {
                let e = g
                    .neighbors(v)
                    .iter()
                    .find(|&&(u, _, _)| u == p)
                    .map(|&(_, _, e)| e)
                    .expect("SPT edge exists");
                h_edges.push(e);
            }
        }
    }

    // (4) final approximate SPT inside H. The span measures the
    // sub-executor, so nested `approx_spt` spans attribute the H-run;
    // `H` spans the same vertex set as `G`, so the per-node counters
    // charge straight back alongside the stats.
    let (h_graph, id_map) = g.edge_subgraph_with_map(h_edges);
    let mut h_sim = sim.sub(&h_graph);
    let final_spt = obs::span(&mut h_sim, "final_spt", |h_sim| {
        let (h_tau, _) = build_bfs_tree(h_sim, rt);
        approx_spt(h_sim, &h_tau, rt, &spt_cfg(seed ^ 0x7e57))
    });
    let h_total = h_sim.total();
    let h_frontier = h_sim.frontier_total();
    sim.charge(h_total);
    sim.charge_frontier(h_frontier);
    if let Some(ns) = h_sim.node_stats() {
        sim.charge_node_stats(ns);
    }
    let mut edges: Vec<EdgeId> = final_spt
        .tree_edges(&h_graph)
        .into_iter()
        .map(|e| id_map[e])
        .collect();
    edges.sort_unstable();

    let stats = sim.total().since(start);
    SltResult {
        root: rt,
        edges,
        breakpoints,
        stats,
    }
}

/// The inverse tradeoff (§4.4): lightness `1 + γ`, root stretch
/// `O(1/γ)`, via the \[BFN16\] reweighting reduction (Lemma 5).
///
/// MST edges are scaled down by `δ = γ/5` (5 bounds the base
/// algorithm's lightness at ε = 1), the base SLT runs on the reweighted
/// graph, and the MST is added back. Reweighting needs only `δ`,
/// `w(e)`, and MST membership — all locally known — so it ports to
/// CONGEST directly, as the paper notes.
pub fn light_slt(g: &Graph, rt: NodeId, gamma: f64, seed: u64) -> (Vec<EdgeId>, RunStats) {
    assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
    let delta = gamma / 5.0;
    let scale: u64 = 1 << 16;
    let mst = lightgraph::mst::kruskal(g);
    let in_mst: std::collections::HashSet<EdgeId> = mst.edges.iter().copied().collect();
    let mut g2 = Graph::new(g.n());
    for (id, e) in g.edges().iter().enumerate() {
        let w = if in_mst.contains(&id) {
            (((e.w * scale) as f64) * delta).ceil() as Weight
        } else {
            e.w * scale
        };
        g2.add_edge(e.u, e.v, w.max(1))
            .expect("valid reweighted edge");
    }
    let mut sim = Simulator::new(&g2);
    let (tau, _) = build_bfs_tree(&mut sim, rt);
    let base = shallow_light_tree(&mut sim, &tau, rt, 1.0, seed);
    let mut edges = base.edges;
    edges.extend(&mst.edges);
    edges.sort_unstable();
    edges.dedup();
    (edges, sim.total())
}

/// Sequential Khuller–Raghavachari–Young SLT \[KRY95\] — the optimal
/// tradeoff baseline: lightness `1 + 2/ε`, root stretch `1 + ε`
/// (stated there as lightness `α`, stretch `1 + 2/(α−1)`).
pub fn kry_slt(g: &Graph, rt: NodeId, epsilon: f64) -> Vec<EdgeId> {
    let n = g.n();
    if n <= 1 {
        return Vec::new();
    }
    let mst = lightgraph::mst::kruskal(g);
    let t = lightgraph::tree::RootedTree::from_edge_ids(g, &mst.edges, rt);
    let tour = t.euler_tour();
    let spt = lightgraph::dijkstra::shortest_paths(g, rt);

    // sequential break-point scan over the whole tour
    let mut h_edges: Vec<EdgeId> = mst.edges.clone();
    let mut last_r: Weight = 0;
    for j in 1..tour.len() {
        let v = tour.seq[j];
        if joins(tour.times[j], last_r, spt.dist[v], epsilon) {
            last_r = tour.times[j];
            if let Some(path) = spt.path_to(v) {
                h_edges.extend(path);
            }
        }
    }
    let (h, map) = g.edge_subgraph_with_map(h_edges);
    let final_spt = lightgraph::dijkstra::shortest_paths(&h, rt);
    let mut out: Vec<EdgeId> = (0..n)
        .filter_map(|v| final_spt.parent[v].map(|(_, e)| map[e]))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightgraph::{generators, metrics};

    fn check_slt(g: &Graph, rt: NodeId, eps: f64, seed: u64) -> (f64, f64) {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);
        let r = shallow_light_tree(&mut sim, &tau, rt, eps, seed);
        assert_eq!(r.edges.len(), g.n() - 1, "SLT must be a spanning tree");
        let h = g.edge_subgraph_dedup(r.edges.iter().copied());
        assert!(h.is_connected());
        let stretch = metrics::root_stretch(g, &h, rt);
        let light = metrics::lightness(g, &h);
        // Lemma 4 + final SPT: stretch ≤ (1+ε)(1+25ε) ≈ 1 + O(ε);
        // Corollary 3: lightness ≤ 1 + 4/ε (we allow 2x slack for the
        // approximate SPT's ε and integer rounding).
        assert!(
            stretch <= 1.0 + 60.0 * eps,
            "root stretch {stretch} too large for eps {eps}"
        );
        assert!(
            light <= 1.0 + 8.0 / eps + 0.1,
            "lightness {light} too large for eps {eps}"
        );
        (stretch, light)
    }

    #[test]
    fn slt_bounds_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(60, 0.12, 40, seed);
            check_slt(&g, 0, 0.5, seed);
        }
    }

    #[test]
    fn slt_bounds_across_epsilon() {
        let g = generators::caterpillar(15, 3, 4);
        for &eps in &[0.25, 0.5, 1.0] {
            check_slt(&g, 0, eps, 7);
        }
    }

    #[test]
    fn slt_on_structured_graphs() {
        check_slt(&generators::grid(7, 7, 20, 1), 0, 0.5, 1);
        check_slt(&generators::random_geometric(50, 0.3, 2), 3, 0.5, 2);
        check_slt(&generators::star(30, 9, 3), 0, 0.5, 3);
    }

    #[test]
    fn tradeoff_moves_in_the_right_direction() {
        // smaller eps => better stretch; larger eps => better lightness
        let g = generators::caterpillar(20, 3, 9);
        let (s_small, _l_small) = check_slt(&g, 0, 0.2, 5);
        let (_s_big, l_big) = check_slt(&g, 0, 1.0, 5);
        let (_, l_small) = check_slt(&g, 0, 0.2, 5);
        let (s_big, _) = check_slt(&g, 0, 1.0, 5);
        assert!(
            s_small <= s_big + 1e-9,
            "stretch should improve with smaller eps"
        );
        assert!(
            l_big <= l_small + 1e-9,
            "lightness should improve with larger eps"
        );
    }

    #[test]
    fn light_slt_inverse_tradeoff() {
        let g = generators::caterpillar(15, 3, 11);
        for &gamma in &[0.25, 0.5] {
            let (edges, _) = light_slt(&g, 0, gamma, 13);
            let h = g.edge_subgraph_dedup(edges.iter().copied());
            let light = metrics::lightness(&g, &h);
            let stretch = metrics::root_stretch(&g, &h, 0);
            assert!(
                light <= 1.0 + gamma + 0.05,
                "lightness {light} exceeds 1+γ for γ={gamma}"
            );
            assert!(
                stretch <= 1.0 + 120.0 / gamma,
                "stretch {stretch} not O(1/γ) for γ={gamma}"
            );
        }
    }

    #[test]
    fn kry_baseline_tradeoff() {
        let g = generators::caterpillar(15, 3, 17);
        for &eps in &[0.25, 0.5, 1.0] {
            let edges = kry_slt(&g, 0, eps);
            let h = g.edge_subgraph_dedup(edges.iter().copied());
            assert_eq!(h.m(), g.n() - 1);
            let stretch = metrics::root_stretch(&g, &h, 0);
            let light = metrics::lightness(&g, &h);
            assert!(stretch <= 1.0 + 30.0 * eps, "KRY stretch {stretch}");
            assert!(light <= 1.0 + 4.0 / eps, "KRY lightness {light}");
        }
    }

    #[test]
    fn slt_on_tiny_graphs() {
        let g = Graph::from_edges(2, [(0, 1, 5)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = shallow_light_tree(&mut sim, &tau, 0, 0.5, 1);
        assert_eq!(r.edges, vec![0]);
    }
}
