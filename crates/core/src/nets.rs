//! Distributed nets for weighted graphs (§6, Theorem 3).
//!
//! An `(α, β)`-net is `α`-covering (every vertex has a net point within
//! `α`) and `β`-separated (net points are pairwise more than `β`
//! apart). The algorithm is the MIS-flavoured iteration of §6:
//!
//! 1. sample a permutation π (a broadcast seed),
//! 2. compute LE lists of the active vertices w.r.t. an auxiliary
//!    `(1+δ)`-approximation `H` (\[FL16\] substitute, see `dist-sssp`),
//! 3. every active vertex that is first in π within its `∆`-ball
//!    (w.r.t. `H`) joins the net,
//! 4. a bounded multi-source exploration from the new net points
//!    deactivates every vertex within `(1+δ)·∆`,
//! 5. repeat until no active vertices remain — `O(log n)` iterations
//!    w.h.p. (the killing argument of §6).
//!
//! The result is a `((1+δ)·∆, ∆/(1+δ))`-net, exactly as in Theorem 3.

use congest::collective;
use congest::obs;
use congest::tree::BfsTree;
use congest::{Executor, RunStats};
use dist_sssp::bellman::multi_source_bounded;
use dist_sssp::le_lists::le_lists;
use lightgraph::{NodeId, Weight};

/// Result of the net construction.
#[derive(Debug, Clone)]
pub struct NetResult {
    /// The net points, sorted.
    pub points: Vec<NodeId>,
    /// Iterations until all vertices became inactive.
    pub iterations: usize,
    /// Rounds/messages of the construction.
    pub stats: RunStats,
}

/// Builds a `((1+δ)·∆, ∆/(1+δ))`-net (Theorem 3).
///
/// `delta > 0` is the slack the paper introduces to tolerate the
/// auxiliary graph's approximation; `big_delta` is `∆`. All randomness
/// derives from `seed`, so the construction is deterministic under the
/// `congest::exec` engine contract — identical points, iterations and
/// `RunStats` on the simulator and the parallel engine (property-tested
/// in `crates/engine/tests/equivalence.rs`; reachable from the
/// `scenario` runner as `nets`, keys `net_delta`/`net_slack`).
///
/// # Panics
/// Panics if the iteration count exceeds `20·log₂n + 20` — the
/// `O(log n)` bound holds w.h.p., so this indicates a seed catastrophe
/// rather than an expected outcome.
pub fn net(
    sim: &mut impl Executor,
    tau: &BfsTree,
    big_delta: Weight,
    delta: f64,
    seed: u64,
) -> NetResult {
    assert!(delta > 0.0, "delta must be positive");
    assert!(big_delta >= 1, "the net scale must be at least 1");
    let start = sim.total();
    let n = sim.graph().n();
    let mut active = vec![true; n];
    let mut points: Vec<NodeId> = Vec::new();
    let deact_bound = ((big_delta as f64) * (1.0 + delta)).ceil() as Weight;
    let max_iters = 20 * (usize::BITS - n.max(2).leading_zeros()) as usize + 20;

    let mut iterations = 0;
    while active.iter().any(|&a| a) {
        iterations += 1;
        assert!(
            iterations <= max_iters,
            "net construction exceeded {max_iters} iterations"
        );
        // (1)-(2) permutation + LE lists w.r.t. the auxiliary H.
        let le = obs::span(sim, "le_lists", |sim| {
            le_lists(
                sim,
                tau,
                &active,
                big_delta,
                delta,
                seed ^ (iterations as u64) << 13,
            )
        });
        // (3) join test (local).
        let new_points: Vec<NodeId> = (0..n)
            .filter(|&v| active[v] && le.is_local_minimum(v, big_delta))
            .collect();
        debug_assert!(
            !new_points.is_empty(),
            "some active vertex is always the global π-minimum of its ball"
        );
        // (4) deactivation by bounded multi-source exploration.
        let ms = obs::span(sim, "deactivate", |sim| {
            multi_source_bounded(sim, &new_points, deact_bound, u64::MAX)
        });
        for v in 0..n {
            if active[v] && ms.nearest(v).is_some() {
                active[v] = false;
            }
        }
        points.extend(&new_points);
        // (5) global termination census: any active vertex left?
        let active_ref = &active;
        let (census, _) = obs::span(sim, "census", |sim| {
            collective::converge_max(sim, tau, |v| vec![(0, [active_ref[v] as u64, 0])])
        });
        if census[&0][0] == 0 {
            break;
        }
    }

    points.sort_unstable();
    let stats = sim.total().since(start);
    NetResult {
        points,
        iterations,
        stats,
    }
}

/// Checks the net properties exactly (sequential oracle used by tests
/// and experiments): returns `(max covering radius, min pairwise
/// separation)` of `points` in `g`.
pub fn net_quality(g: &lightgraph::Graph, points: &[NodeId]) -> (Weight, Weight) {
    use lightgraph::dijkstra;
    assert!(!points.is_empty());
    let mut cover: Weight = 0;
    let mut nearest = vec![lightgraph::INF; g.n()];
    for &p in points {
        let sp = dijkstra::shortest_paths(g, p);
        for v in 0..g.n() {
            nearest[v] = nearest[v].min(sp.dist[v]);
        }
    }
    for v in 0..g.n() {
        cover = cover.max(nearest[v]);
    }
    let mut sep = lightgraph::INF;
    for (i, &p) in points.iter().enumerate() {
        let sp = dijkstra::shortest_paths(g, p);
        for &q in &points[i + 1..] {
            sep = sep.min(sp.dist[q]);
        }
    }
    (cover, sep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::generators;

    fn check_net(g: &lightgraph::Graph, big_delta: Weight, delta: f64, seed: u64) -> NetResult {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = net(&mut sim, &tau, big_delta, delta, seed);
        assert!(!r.points.is_empty());
        let (cover, sep) = net_quality(g, &r.points);
        let alpha = ((big_delta as f64) * (1.0 + delta)).ceil() as Weight + 1;
        assert!(
            cover <= alpha,
            "covering radius {cover} exceeds (1+δ)∆ = {alpha}"
        );
        if r.points.len() > 1 {
            let beta = ((big_delta as f64) / (1.0 + delta)).floor() as Weight;
            assert!(sep >= beta, "separation {sep} below ∆/(1+δ) = {beta}");
        }
        r
    }

    #[test]
    fn net_properties_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(50, 0.12, 30, seed);
            check_net(&g, 25, 0.5, seed);
            check_net(&g, 60, 0.25, seed);
        }
    }

    #[test]
    fn net_properties_on_structured_graphs() {
        check_net(&generators::path(40, 5), 20, 0.5, 1);
        check_net(&generators::grid(7, 7, 10, 2), 15, 0.5, 2);
        check_net(&generators::random_geometric(50, 0.3, 3), 100_000, 0.5, 3);
        check_net(&generators::star(25, 8, 4), 4, 0.5, 4);
    }

    #[test]
    fn tiny_scale_makes_everyone_a_net_point() {
        // ∆ below the minimum distance: every vertex is its own ball's
        // minimum, so the net is V.
        let g = generators::path(10, 10);
        let r = check_net(&g, 5, 0.5, 5);
        assert_eq!(r.points.len(), 10);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn huge_scale_yields_single_point() {
        let g = generators::path(10, 1);
        let r = check_net(&g, 1000, 0.5, 6);
        assert_eq!(r.points.len(), 1);
    }

    #[test]
    fn iterations_are_logarithmic() {
        let g = generators::erdos_renyi(100, 0.08, 20, 7);
        let r = check_net(&g, 15, 0.5, 7);
        assert!(
            r.iterations <= 30,
            "{} iterations is beyond the O(log n) expectation",
            r.iterations
        );
    }
}
