//! # lightnet — Distributed Construction of Light Networks
//!
//! A from-scratch Rust reproduction of *Distributed Construction of
//! Light Networks* (Michael Elkin, Arnold Filtser, Ofer Neiman;
//! PODC 2020, arXiv:1905.02592), running on a faithful CONGEST-model
//! simulator (the [`congest`] crate). This crate hosts the paper's four
//! primary contributions (Table 1):
//!
//! | Object | Module | Guarantee |
//! |---|---|---|
//! | Light spanner (general graphs) | [`light_spanner()`] | `(2k−1)(1+ε)` stretch, `O(k·n^{1+1/k})` edges, `O(k·n^{1/k})` lightness |
//! | Shallow-Light Tree | [`slt`] | root stretch `1+O(ε)`, lightness `1+O(1/ε)` (and the inverse regime via \[BFN16\]) |
//! | `(α, β)`-nets | [`nets`] | `((1+δ)∆, ∆/(1+δ))`-net |
//! | Doubling-graph spanner | [`doubling`] | `(1+O(ε))` stretch, lightness `ε^{-O(ddim)}·log n` |
//!
//! plus the §8 lower-bound reduction ([`lower_bound`]) and the Euler
//! tour sweep machinery ([`tour_sweep`]) shared by §4 and §5.
//!
//! # Example
//!
//! ```
//! use congest::{Simulator, tree::build_bfs_tree};
//! use lightgraph::{generators, metrics};
//! use lightnet::slt::shallow_light_tree;
//!
//! let g = generators::erdos_renyi(48, 0.15, 40, 7);
//! let mut sim = Simulator::new(&g);
//! let (tau, _) = build_bfs_tree(&mut sim, 0);
//! let slt = shallow_light_tree(&mut sim, &tau, 0, 0.5, 7);
//! let tree = g.edge_subgraph_dedup(slt.edges.iter().copied());
//! assert!(metrics::root_stretch(&g, &tree, 0) < 1.0 + 60.0 * 0.5);
//! assert!(metrics::lightness(&g, &tree) < 1.0 + 8.0 / 0.5);
//! println!("SLT in {} CONGEST rounds", slt.stats.rounds);
//! ```

pub mod doubling;
pub mod light_spanner;
pub mod lower_bound;
pub mod nets;
pub mod slt;
pub mod tour_sweep;

pub use doubling::{doubling_spanner, DoublingSpanner};
pub use light_spanner::{light_spanner, LightSpannerResult};
pub use lower_bound::{estimate_mst_weight, MstWeightEstimate};
pub use nets::{net, net_quality, NetResult};
pub use slt::{kry_slt, light_slt, shallow_light_tree, shallow_light_tree_with, SltResult};
