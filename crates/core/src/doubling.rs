//! Light spanners for doubling graphs (§7, Theorem 5).
//!
//! For every distance scale `∆ = (1+ε)^i` up to the MST weight:
//! construct a net with covering radius `ε∆/2` (Theorem 3 with
//! `δ = 1/2`), then connect every pair of net points within `2∆` by an
//! (approximate) shortest path, using bounded multi-source explorations
//! with path reporting (the \[EN16\] path-reporting hopset substitute —
//! the actual paths enter the spanner, and the packing property bounds
//! how many explorations cross any vertex).
//!
//! Quality (Theorem 5): stretch `1 + O(ε)` by the scale induction,
//! lightness `ε^{-O(ddim)}·log n` by the packing argument, size
//! `n·ε^{-O(ddim)}·log n`.

use crate::nets::net;
use congest::obs;
use congest::tree::BfsTree;
use congest::{Executor, RunStats};
use dist_mst::boruvka::distributed_mst;
use dist_sssp::bellman::multi_source_bounded;
use lightgraph::{EdgeId, NodeId, Weight};
use std::collections::HashSet;

/// Result of the doubling-spanner construction.
#[derive(Debug, Clone)]
pub struct DoublingSpanner {
    /// Spanner edge ids (sorted, deduplicated).
    pub edges: Vec<EdgeId>,
    /// Number of distance scales processed.
    pub scales: usize,
    /// Rounds/messages of the whole construction.
    pub stats: RunStats,
}

/// Builds a `(1 + O(ε))`-spanner for (doubling) graphs.
///
/// The stretch constant is the paper's `c ≤ 30` (§7.2); callers wanting
/// a strict `1+ε` guarantee should pass `ε/30`. Lightness and size are
/// only *bounded* when the input has small doubling dimension; the
/// algorithm itself runs on any graph.
///
/// Deterministic under the `congest::exec` engine contract — identical
/// edges, scales and `RunStats` on the simulator and the parallel
/// engine (property-tested in `crates/engine/tests/equivalence.rs`;
/// reachable from the `scenario` runner as `doubling`).
pub fn doubling_spanner(
    sim: &mut impl Executor,
    tau: &BfsTree,
    rt: NodeId,
    epsilon: f64,
    seed: u64,
) -> DoublingSpanner {
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0,1]");
    let start = sim.total();
    // Owned copy: the per-scale loop borrows `g` across `&mut sim`
    // phases (see `distributed_mst` for the rationale).
    let g_owned = sim.graph().clone();
    let g = &g_owned;
    let n = g.n();
    if n <= 1 {
        return DoublingSpanner {
            edges: Vec::new(),
            scales: 0,
            stats: RunStats::default(),
        };
    }

    // The MST weight bounds the largest useful scale; the distributed
    // MST also serves as the connectivity backbone of the spanner (the
    // lightness budget always affords it: it costs lightness 1).
    let mst = obs::span(sim, "mst", |sim| distributed_mst(sim, tau, rt, seed));
    let l_total = mst.weight as f64;
    let w_min = g.min_weight().max(1) as f64;

    let mut chosen: HashSet<EdgeId> = mst.mst_edges.iter().copied().collect();
    let mut scales = 0;
    let mut delta_scale = w_min / (1.0 + epsilon);
    while delta_scale <= l_total * (1.0 + epsilon) {
        scales += 1;
        let big_delta = delta_scale;
        delta_scale *= 1.0 + epsilon;

        // Net with covering radius ε∆/2: Theorem 3 with δ = 1/2 and
        // parameter ∆' = ε∆/3, giving ((3/2)·∆', ∆'·(2/3)) =
        // (ε∆/2, 2ε∆/9)-net.
        let net_param = ((epsilon * big_delta) / 3.0).ceil().max(1.0) as Weight;
        let net_r = obs::span(sim, "net", |sim| {
            net(sim, tau, net_param, 0.5, seed ^ (scales as u64) << 7)
        });

        // Connect net points within 2∆ by real shortest paths.
        let bound = (2.0 * big_delta).ceil() as Weight;
        let ms = obs::span(sim, "connect", |sim| {
            multi_source_bounded(sim, &net_r.points, bound, u64::MAX)
        });
        let net_set: HashSet<NodeId> = net_r.points.iter().copied().collect();
        for &v in &net_r.points {
            // v sees every source u that reached it within 2∆
            let sources: Vec<NodeId> = ms
                .reached(v)
                .map(|(u, _, _)| u)
                .filter(|&u| u < v && net_set.contains(&u))
                .collect();
            for u in sources {
                if let Some(path) = ms.path_from(u, v) {
                    for pair in path.windows(2) {
                        let e = g
                            .neighbors(pair[0])
                            .iter()
                            .find(|&&(x, _, _)| x == pair[1])
                            .map(|&(_, _, e)| e)
                            .expect("path uses real edges");
                        chosen.insert(e);
                    }
                }
            }
        }
    }

    let mut edges: Vec<EdgeId> = chosen.into_iter().collect();
    edges.sort_unstable();
    let stats = sim.total().since(start);
    DoublingSpanner {
        edges,
        scales,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::{generators, metrics};

    fn check(
        g: &lightgraph::Graph,
        eps: f64,
        seed: u64,
    ) -> (metrics::SpannerQuality, DoublingSpanner) {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = doubling_spanner(&mut sim, &tau, 0, eps, seed);
        let h = g.edge_subgraph_dedup(r.edges.iter().copied());
        let q = metrics::spanner_quality(g, &h);
        assert!(
            q.stretch <= 1.0 + 30.0 * eps + 1e-9,
            "stretch {} exceeds 1 + 30ε for ε={eps}",
            q.stretch
        );
        (q, r)
    }

    #[test]
    fn stretch_on_geometric_graphs() {
        let g = generators::random_geometric(40, 0.35, 1);
        check(&g, 0.5, 1);
        check(&g, 0.25, 1);
    }

    #[test]
    fn stretch_on_grids_and_paths() {
        check(&generators::grid(6, 6, 8, 2), 0.5, 2);
        check(&generators::path(30, 5), 0.5, 3);
    }

    #[test]
    fn smaller_epsilon_gives_better_stretch_more_weight() {
        let g = generators::random_geometric(36, 0.4, 4);
        let (q_coarse, _) = check(&g, 1.0, 4);
        let (q_fine, _) = check(&g, 0.125, 4);
        assert!(q_fine.stretch <= q_coarse.stretch + 1e-9);
        assert!(q_fine.lightness + 1e-9 >= q_coarse.lightness);
    }

    #[test]
    fn lightness_is_bounded_on_doubling_inputs() {
        // On a plane-like instance the lightness must not explode with n.
        let g1 = generators::random_geometric(30, 0.4, 5);
        let g2 = generators::random_geometric(60, 0.3, 5);
        let (q1, _) = check(&g1, 0.5, 5);
        let (q2, _) = check(&g2, 0.5, 5);
        // ε^{-O(ddim)}·log n with ddim ≈ 2: generous absolute cap, and
        // sublinear growth between the two sizes.
        assert!(q1.lightness < 60.0, "lightness {} too large", q1.lightness);
        assert!(q2.lightness < 80.0, "lightness {} too large", q2.lightness);
    }

    #[test]
    fn spanner_contains_connectivity() {
        let g = generators::random_geometric(30, 0.35, 6);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = doubling_spanner(&mut sim, &tau, 0, 0.5, 6);
        let h = g.edge_subgraph_dedup(r.edges.iter().copied());
        assert!(h.is_connected());
        assert!(r.scales > 0);
    }
}
