//! Light spanners for general graphs (§5, Theorem 2).
//!
//! The spanner is a union over `O(log n)` weight buckets:
//!
//! * `E′` (edges of weight `≤ L/n`, `L = 2·w(MST)`): the distributed
//!   Baswana–Sen spanner — the bucket is so light that sparsity alone
//!   bounds its weight,
//! * bucket `E_i` (weights in `(L/(1+ε)^{i+1}, L/(1+ε)^i]`): the graph
//!   is partitioned into clusters of weak diameter `ε·w_i` using the
//!   Euler tour of the MST, and the Elkin–Neiman unweighted spanner
//!   \[EN17b\] is *simulated on the cluster graph* `G_i` whose vertices
//!   are clusters and whose edges come from `E_i`,
//! * plus the MST itself.
//!
//! The simulation has two regimes, exactly as in §5:
//!
//! * **Case 1** (few clusters, `|C_i| ≲ n^{k/(2k+1)}`): cluster ids are
//!   tour-time buckets `⌈R_x/(ε w_i)⌉`; each EN17b iteration is one
//!   *local* max, one *convergecast* of per-cluster maxima to `rt`, and
//!   one *broadcast* of the updated `(s, m)` table — `O(|C_i| + D)`
//!   rounds per iteration (Lemma 1).
//! * **Case 2** (many clusters): cluster centers are tour positions cut
//!   every `ε·w_i` of tour length *and* every `⌈εn/(1+ε)^i⌉` positions
//!   (so communication intervals have bounded hop length); each EN17b
//!   iteration runs token sweeps *inside the intervals* — left-to-right
//!   to distribute the cluster state, right-to-left to accumulate the
//!   neighborhood maximum — plus one neighbor exchange. `O(interval)`
//!   rounds per iteration, independent of the global cluster count.
//!
//! One deviation from the letter of the paper, recorded in DESIGN.md:
//! in Case 2 the final edge-selection dedup is per *vertex* rather than
//! per cluster (the paper pipelines a per-cluster dedup through the
//! interval; we bound duplicates empirically instead — stretch is
//! unaffected, size grows only marginally on our instances).

use crate::tour_sweep::{tour_sweep, Direction, TourRouting};
use congest::collective;
use congest::tree::BfsTree;
use congest::{pack2, Ctx, Executor, Message, Program, RunStats, Word};
use dist_mst::boruvka::distributed_mst;
use dist_mst::euler::distributed_euler_tour;
use lightgraph::{EdgeId, NodeId, Weight};
use sparse_spanner::baswana_sen::baswana_sen;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

const TAG_STATE: u64 = 70;

/// Result of the light-spanner construction.
#[derive(Debug, Clone)]
pub struct LightSpannerResult {
    /// Spanner edge ids (sorted, deduplicated; includes the MST).
    pub edges: Vec<EdgeId>,
    /// Buckets simulated with global coordination (Case 1).
    pub case1_buckets: usize,
    /// Buckets simulated with interval coordination (Case 2).
    pub case2_buckets: usize,
    /// Rounds/messages of the whole construction.
    pub stats: RunStats,
}

/// EN17b cluster state: `m` (stored shifted so it is always positive —
/// positive IEEE doubles order like their bit patterns) and source `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClusterState {
    m: f64,
    s: u64,
}

fn enc(m: f64, shift: f64) -> Word {
    let v = m + shift;
    debug_assert!(v >= 0.0, "shifted m must be positive for bit-ordering");
    v.to_bits()
}

fn dec(bits: Word, shift: f64) -> f64 {
    f64::from_bits(bits) - shift
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential radii for a set of cluster ids, re-drawn until all are
/// `< k` (the EN17b stretch precondition; locally checkable by every
/// vertex given the broadcast seed).
fn cluster_radii(clusters: &[u64], k: usize, seed: u64) -> HashMap<u64, f64> {
    let beta = ((3 * clusters.len().max(2)) as f64).ln() / k as f64;
    let mut attempt = 0u64;
    loop {
        let radii: HashMap<u64, f64> = clusters
            .iter()
            .map(|&c| {
                let u = ((splitmix64(seed ^ attempt << 40 ^ c) >> 11) as f64 / (1u64 << 53) as f64)
                    .max(f64::EPSILON);
                (c, -u.ln() / beta)
            })
            .collect();
        if radii.values().all(|&r| r < k as f64) {
            return radii;
        }
        attempt += 1;
        assert!(attempt < 64, "radius sampling failed repeatedly");
    }
}

/// One-round exchange of `(cluster, m, s)` with all neighbors.
struct StateExchange {
    payload: [Word; 3],
    heard: HashMap<NodeId, [Word; 3]>,
}

impl Program for StateExchange {
    type Output = HashMap<NodeId, [Word; 3]>;
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let [a, b, c] = self.payload;
        ctx.send_all(Message::words(&[TAG_STATE, a, b, c]));
    }
    fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_STATE);
            self.heard
                .insert(*from, [msg.word(1), msg.word(2), msg.word(3)]);
        }
    }
    fn finish(self) -> Self::Output {
        self.heard
    }
}

fn exchange_states(
    sim: &mut impl Executor,
    payload: impl Fn(NodeId) -> [Word; 3],
) -> Vec<HashMap<NodeId, [Word; 3]>> {
    let (out, _) = sim.run(|v, _| StateExchange {
        payload: payload(v),
        heard: HashMap::new(),
    });
    out
}

struct BucketContext<'a> {
    bucket_edges: Vec<Vec<(NodeId, Weight, EdgeId)>>,
    cluster_of: Vec<u64>,
    k: usize,
    shift: f64,
    tau: &'a BfsTree,
}

/// Case 1: EN17b on the cluster graph with global (convergecast +
/// broadcast) coordination.
fn simulate_case1(
    sim: &mut impl Executor,
    ctx: &BucketContext<'_>,
    seed: u64,
    chosen: &mut HashSet<EdgeId>,
) {
    let n = ctx.cluster_of.len();
    let shift = ctx.shift;
    // active clusters = those with bucket edges
    let mut active: Vec<u64> = (0..n)
        .filter(|&v| !ctx.bucket_edges[v].is_empty())
        .map(|v| ctx.cluster_of[v])
        .collect();
    active.sort_unstable();
    active.dedup();
    if active.is_empty() {
        return;
    }
    let radii = cluster_radii(&active, ctx.k, seed);
    let mut table: BTreeMap<u64, ClusterState> = active
        .iter()
        .map(|&c| (c, ClusterState { m: radii[&c], s: c }))
        .collect();

    // broadcast the radius seed (1 item) — every vertex derives the
    // initial table locally.
    let (r0, _) = collective::broadcast(sim, ctx.tau, vec![(0, [seed, 0])]);
    debug_assert!(r0.iter().all(|r| r.len() == 1));

    for _round in 0..ctx.k {
        // broadcast the current table
        let items: Vec<collective::Item> = table
            .iter()
            .map(|(&c, st)| (c, [enc(st.m, shift), st.s]))
            .collect();
        let (recv, _) = collective::broadcast(sim, ctx.tau, items);
        debug_assert!(recv.iter().all(|r| r.len() == table.len()));
        // local max over neighbor clusters, convergecast per own cluster
        let table_ref = &table;
        let cluster_of = &ctx.cluster_of;
        let bucket_edges = &ctx.bucket_edges;
        let (maxima, _) = collective::converge(
            sim,
            ctx.tau,
            |v| {
                let a = cluster_of[v];
                let mut best: Option<ClusterState> = None;
                for &(u, _, _) in &bucket_edges[v] {
                    let b = cluster_of[u];
                    if b == a {
                        continue;
                    }
                    if let Some(st) = table_ref.get(&b) {
                        let cand = ClusterState {
                            m: st.m - 1.0,
                            s: st.s,
                        };
                        if best
                            .map(|cur| cand.m > cur.m || (cand.m == cur.m && cand.s < cur.s))
                            .unwrap_or(true)
                        {
                            best = Some(cand);
                        }
                    }
                }
                best.map(|st| vec![(a, [enc(st.m, shift), st.s])])
                    .unwrap_or_default()
            },
            |_, a, b| {
                if a[0] > b[0] || (a[0] == b[0] && a[1] <= b[1]) {
                    a
                } else {
                    b
                }
            },
        );
        // rt merges and the next iteration's broadcast distributes it
        for (&c, &[mb, s]) in &maxima {
            let cand = ClusterState {
                m: dec(mb, shift),
                s,
            };
            let cur = table.get_mut(&c).expect("active cluster");
            if cand.m > cur.m || (cand.m == cur.m && cand.s < cur.s) {
                *cur = cand;
            }
        }
    }

    // final table broadcast + edge selection convergecast
    let items: Vec<collective::Item> = table
        .iter()
        .map(|(&c, st)| (c, [enc(st.m, shift), st.s]))
        .collect();
    let (recv, _) = collective::broadcast(sim, ctx.tau, items);
    debug_assert!(recv.iter().all(|r| r.len() == table.len()));
    let table_ref = &table;
    let cluster_of = &ctx.cluster_of;
    let bucket_edges = &ctx.bucket_edges;
    let (selected, _) = collective::converge_min(sim, ctx.tau, |v| {
        let a = cluster_of[v];
        let Some(my) = table_ref.get(&a) else {
            return Vec::new();
        };
        let mut items = Vec::new();
        for &(u, w, e) in &bucket_edges[v] {
            let b = cluster_of[u];
            if b == a {
                continue;
            }
            if let Some(st) = table_ref.get(&b) {
                if st.m >= my.m - 1.0 {
                    items.push((pack2(a, st.s), [w, e as u64]));
                }
            }
        }
        items
    });
    // rt broadcasts the chosen edges so endpoints learn membership
    let chosen_items: Vec<collective::Item> =
        selected.iter().map(|(&key, &val)| (key, val)).collect();
    let (recv, _) = collective::broadcast(sim, ctx.tau, chosen_items);
    debug_assert!(recv.iter().all(|r| r.len() == selected.len()));
    for &[_, e] in selected.values() {
        chosen.insert(e as EdgeId);
    }
}

/// Case 2: EN17b with interval-local coordination along the Euler tour.
#[allow(clippy::too_many_arguments)]
fn simulate_case2(
    sim: &mut impl Executor,
    ctx: &BucketContext<'_>,
    routing: &TourRouting,
    center_of: &[usize],
    first_app: &[usize],
    seed: u64,
    chosen: &mut HashSet<EdgeId>,
) {
    let n = ctx.cluster_of.len();
    let shift = ctx.shift;
    let is_center = {
        let mut v = vec![false; routing.len()];
        for p in 0..routing.len() {
            v[center_of[p]] = true;
        }
        v
    };

    let mut active: Vec<u64> = (0..n)
        .filter(|&v| !ctx.bucket_edges[v].is_empty())
        .map(|v| ctx.cluster_of[v])
        .collect();
    active.sort_unstable();
    active.dedup();
    if active.is_empty() {
        return;
    }
    let radii = cluster_radii(&active, ctx.k, seed);
    let mut state: HashMap<u64, ClusterState> = active
        .iter()
        .map(|&c| (c, ClusterState { m: radii[&c], s: c }))
        .collect();
    let (r0, _) = collective::broadcast(sim, ctx.tau, vec![(0, [seed, 0])]);
    debug_assert!(r0.iter().all(|r| r.len() == 1));

    let neutral: [Word; 2] = [0, u64::MAX];
    let better = |a: [Word; 2], b: [Word; 2]| -> [Word; 2] {
        if a[0] > b[0] || (a[0] == b[0] && a[1] <= b[1]) {
            a
        } else {
            b
        }
    };

    // vertex-level knowledge of its own cluster's state, refreshed by
    // the LTR sweep each iteration
    let mut known: Vec<Option<ClusterState>> = (0..n)
        .map(|v| state.get(&ctx.cluster_of[v]).copied())
        .collect();

    for round in 0..=ctx.k {
        // (a) LTR sweep distributing center state through intervals
        let state_rc = Arc::new(state.clone());
        let is_center_ref = &is_center;
        let (_ltr, _) = tour_sweep(
            sim,
            routing,
            Direction::LeftToRight,
            |p| is_center_ref[p],
            |p| {
                state_rc
                    .get(&(p as u64))
                    .map(|st| [enc(st.m, shift), st.s])
                    .unwrap_or(neutral)
            },
            |_| move |_p: usize, t: [u64; 2]| t,
        );
        // each vertex refreshes its own-cluster knowledge: its first
        // appearance lies in its cluster's interval (free: the value it
        // just received there / the orchestrator mirror)
        for v in 0..n {
            known[v] = state.get(&ctx.cluster_of[v]).copied();
        }
        if round == ctx.k {
            break; // final dissemination only
        }
        // (b) neighbor exchange of (cluster, m, s); a large uniform
        // shift keeps the encoded m positive even for absent states
        let cluster_of = &ctx.cluster_of;
        let known_ref = &known;
        let heard = exchange_states(sim, |v| {
            let st = known_ref[v].unwrap_or(ClusterState {
                m: -1.0e9,
                s: u64::MAX,
            });
            [cluster_of[v], enc(st.m, 1.0e9), st.s]
        });
        // (c) local candidate per vertex
        let cand: Vec<[Word; 2]> = (0..n)
            .map(|v| {
                let a = ctx.cluster_of[v];
                let mut best = neutral;
                for &(u, _, _) in &ctx.bucket_edges[v] {
                    if let Some(&[bc, mb, s]) = heard[v].get(&u) {
                        if bc != a && s != u64::MAX {
                            let m = dec(mb, 1.0e9) - 1.0;
                            if m > -1.0e8 {
                                best = better(best, [enc(m, shift), s]);
                            }
                        }
                    }
                }
                best
            })
            .collect();
        // (d) RTL sweep accumulating the candidates towards centers
        let contribution = |p: usize| -> [Word; 2] {
            let v = routing.owner[p];
            if first_app[v] == p && ctx.cluster_of[v] == center_of[p] as u64 {
                cand[v]
            } else {
                neutral
            }
        };
        let cand_rc = Arc::new(cand.clone());
        let first_app_rc = Arc::new(first_app.to_vec());
        let cluster_rc = Arc::new(ctx.cluster_of.to_vec());
        let center_rc = Arc::new(center_of.to_vec());
        let (rtl, _) = tour_sweep(
            sim,
            routing,
            Direction::RightToLeft,
            |p| is_center_ref[p],
            contribution,
            |v| {
                let cand = Arc::clone(&cand_rc);
                let first_app = Arc::clone(&first_app_rc);
                let cluster = Arc::clone(&cluster_rc);
                let center = Arc::clone(&center_rc);
                move |p: usize, t: [u64; 2]| {
                    let mine = if first_app[v] == p && cluster[v] == center[p] as u64 {
                        cand[v]
                    } else {
                        [0, u64::MAX]
                    };
                    if mine[0] > t[0] || (mine[0] == t[0] && mine[1] <= t[1]) {
                        mine
                    } else {
                        t
                    }
                }
            },
        );
        // (e) centers merge: incoming token at center position +
        // the center owner's own contribution
        let mut best_at: HashMap<u64, [Word; 2]> = HashMap::new();
        for recs in &rtl {
            for &(p, t) in recs {
                if is_center[p] {
                    let e = best_at.entry(p as u64).or_insert(neutral);
                    *e = better(*e, t);
                }
            }
        }
        for p in 0..routing.len() {
            if is_center[p] {
                let c = contribution(p);
                let e = best_at.entry(p as u64).or_insert(neutral);
                *e = better(*e, c);
            }
        }
        for (&c, &[mb, s]) in &best_at {
            if s == u64::MAX {
                continue;
            }
            if let Some(cur) = state.get_mut(&c) {
                let cand = ClusterState {
                    m: dec(mb, shift),
                    s,
                };
                if cand.m > cur.m || (cand.m == cur.m && cand.s < cur.s) {
                    *cur = cand;
                }
            }
        }
    }

    // Selection: one more exchange with the final states, then the
    // per-cluster dedup the paper performs by convergecasting candidate
    // edges through the communication interval ("each vertex receiving
    // edges from A×B will forward only a single such edge"). The dedup
    // itself is the same min-reduction as the sweeps above; its round
    // cost — one interval traversal plus the per-cluster edge count at
    // the bottleneck — is charged explicitly below.
    let cluster_of = &ctx.cluster_of;
    let known_ref = &known;
    let heard = exchange_states(sim, |v| {
        let st = known_ref[v].unwrap_or(ClusterState {
            m: -1.0e9,
            s: u64::MAX,
        });
        [cluster_of[v], enc(st.m, 1.0e9), st.s]
    });
    let mut per_cluster_source: HashMap<(u64, u64), (Weight, EdgeId)> = HashMap::new();
    let mut interval_len: HashMap<u64, u64> = HashMap::new();
    for p in 0..routing.len() {
        *interval_len.entry(center_of[p] as u64).or_insert(0) += 1;
    }
    for v in 0..n {
        let a = ctx.cluster_of[v];
        let Some(my) = known[v] else { continue };
        for &(u, w, e) in &ctx.bucket_edges[v] {
            if let Some(&[bc, mb, s]) = heard[v].get(&u) {
                if bc != a && s != u64::MAX {
                    let m = dec(mb, 1.0e9);
                    if m >= my.m - 1.0 {
                        let entry = per_cluster_source.entry((a, s)).or_insert((w, e));
                        if (w, e) < *entry {
                            *entry = (w, e);
                        }
                    }
                }
            }
        }
    }
    let mut per_cluster_count: HashMap<u64, u64> = HashMap::new();
    for (&(a, _), &(_, e)) in &per_cluster_source {
        *per_cluster_count.entry(a).or_insert(0) += 1;
        chosen.insert(e);
    }
    let max_interval = interval_len.values().copied().max().unwrap_or(0);
    let max_selected = per_cluster_count.values().copied().max().unwrap_or(0);
    sim.charge(RunStats {
        rounds: max_interval + max_selected,
        messages: per_cluster_source.len() as u64,
        ..RunStats::default()
    });
}

/// Builds a `(2k−1)(1+O(ε))`-spanner with `O(k·n^{1+1/k})` edges and
/// lightness `O(k·n^{1/k})` (Theorem 2).
pub fn light_spanner(
    sim: &mut impl Executor,
    tau: &BfsTree,
    rt: NodeId,
    k: usize,
    epsilon: f64,
    seed: u64,
) -> LightSpannerResult {
    assert!(k >= 1, "k must be at least 1");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    let start = sim.total();
    // Owned copy: bucket processing borrows `g` across `&mut sim`
    // phases (see `distributed_mst` for the rationale).
    let g_owned = sim.graph().clone();
    let g = &g_owned;
    let n = g.n();
    if n <= 1 {
        return LightSpannerResult {
            edges: Vec::new(),
            case1_buckets: 0,
            case2_buckets: 0,
            stats: RunStats::default(),
        };
    }

    // MST + Euler tour (times R_x per appearance).
    let mst = distributed_mst(sim, tau, rt, seed);
    let tour = distributed_euler_tour(sim, tau, &mst, rt);
    let routing = TourRouting::new(&tour);
    let (seq, times) = tour.assemble();
    let l_total = tour.total_length.max(1);
    let mut chosen: HashSet<EdgeId> = mst.mst_edges.iter().copied().collect();

    // first appearance of each vertex
    let mut first_app = vec![usize::MAX; n];
    for (p, &v) in seq.iter().enumerate() {
        first_app[v] = first_app[v].min(p);
    }

    // E′: Baswana–Sen on the light edges.
    let light_cut = l_total / (n as u64).max(1);
    let light_ids: Vec<EdgeId> = (0..g.m()).filter(|&e| g.edge(e).w <= light_cut).collect();
    if !light_ids.is_empty() {
        let (sub, map) = g.edge_subgraph_with_map(light_ids.iter().copied());
        let mut sub_sim = sim.sub(&sub);
        let bs = baswana_sen(&mut sub_sim, k, seed ^ 0xb5);
        let sub_total = sub_sim.total();
        let sub_frontier = sub_sim.frontier_total();
        sim.charge(sub_total);
        sim.charge_frontier(sub_frontier);
        chosen.extend(bs.edges.iter().map(|&e| map[e]));
    }

    // bucket the remaining edges
    let imax = ((n as f64).ln() / (1.0 + epsilon).ln()).ceil() as usize;
    let mut buckets: Vec<Vec<EdgeId>> = vec![Vec::new(); imax + 1];
    for e in 0..g.m() {
        let w = g.edge(e).w;
        if w <= light_cut || w > l_total {
            continue;
        }
        let i = (((l_total as f64) / (w as f64)).ln() / (1.0 + epsilon).ln()).floor() as usize;
        buckets[i.min(imax)].push(e);
    }

    let case_threshold = (n as f64).powf(k as f64 / (2 * k + 1) as f64);
    let mut case1_buckets = 0;
    let mut case2_buckets = 0;

    for (i, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let wi = (l_total as f64) / (1.0 + epsilon).powi(i as i32);
        let cluster_width = (epsilon * wi).max(1.0);
        // per-vertex bucket adjacency
        let mut bucket_edges: Vec<Vec<(NodeId, Weight, EdgeId)>> = vec![Vec::new(); n];
        for &e in bucket {
            let edge = g.edge(e);
            bucket_edges[edge.u].push((edge.v, edge.w, e));
            bucket_edges[edge.v].push((edge.u, edge.w, e));
        }
        let shift = (k + 2) as f64;
        let few_clusters = (1.0 + epsilon).powi(i as i32) / epsilon <= case_threshold;
        if few_clusters {
            case1_buckets += 1;
            // cluster id = ⌈R_x / (ε w_i)⌉ for the first appearance
            let cluster_of: Vec<u64> = (0..n)
                .map(|v| (times[first_app[v]] as f64 / cluster_width).ceil() as u64)
                .collect();
            let bctx = BucketContext {
                bucket_edges,
                cluster_of,
                k,
                shift,
                tau,
            };
            simulate_case1(sim, &bctx, seed ^ (i as u64) << 32, &mut chosen);
        } else {
            case2_buckets += 1;
            // centers: tour-length cuts and index cuts
            let q = ((epsilon * n as f64) / (1.0 + epsilon).powi(i as i32))
                .ceil()
                .max(1.0) as usize;
            let len = routing.len();
            let mut center_of = vec![0usize; len];
            let mut last_center = 0usize;
            for p in 0..len {
                let is_center = p == 0
                    || p % q == 0
                    || (times[p - 1] as f64 / cluster_width).floor()
                        < (times[p] as f64 / cluster_width).floor();
                if is_center {
                    last_center = p;
                }
                center_of[p] = last_center;
            }
            let cluster_of: Vec<u64> = (0..n).map(|v| center_of[first_app[v]] as u64).collect();
            let bctx = BucketContext {
                bucket_edges,
                cluster_of,
                k,
                shift,
                tau,
            };
            simulate_case2(
                sim,
                &bctx,
                &routing,
                &center_of,
                &first_app,
                seed ^ (i as u64) << 32,
                &mut chosen,
            );
        }
    }

    let mut edges: Vec<EdgeId> = chosen.into_iter().collect();
    edges.sort_unstable();
    let stats = sim.total().since(start);
    LightSpannerResult {
        edges,
        case1_buckets,
        case2_buckets,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::{generators, metrics};

    fn check(
        g: &lightgraph::Graph,
        k: usize,
        eps: f64,
        seed: u64,
    ) -> (metrics::SpannerQuality, LightSpannerResult) {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = light_spanner(&mut sim, &tau, 0, k, eps, seed);
        let h = g.edge_subgraph_dedup(r.edges.iter().copied());
        assert!(h.is_connected(), "spanner contains the MST");
        let q = metrics::spanner_quality(g, &h);
        let bound = (2 * k - 1) as f64 * (1.0 + 5.0 * eps) + 1e-9;
        assert!(
            q.stretch <= bound,
            "stretch {} exceeds {bound} (k={k}, eps={eps})",
            q.stretch
        );
        let light_bound = 30.0 * k as f64 * (g.n() as f64).powf(1.0 / k as f64);
        assert!(
            q.lightness <= light_bound,
            "lightness {} exceeds O(k n^(1/k)) = {light_bound}",
            q.lightness
        );
        (q, r)
    }

    #[test]
    fn quality_on_random_graphs() {
        for seed in 0..2 {
            let g = generators::erdos_renyi(60, 0.15, 60, seed);
            check(&g, 2, 0.25, seed);
            check(&g, 3, 0.25, seed);
        }
    }

    #[test]
    fn quality_on_geometric_and_chord_graphs() {
        let g = generators::random_geometric(50, 0.3, 3);
        check(&g, 2, 0.25, 3);
        let g2 = generators::tree_plus_chords(60, 30, 80, 4);
        check(&g2, 2, 0.25, 4);
    }

    #[test]
    fn both_cases_are_exercised() {
        // Case 1 needs edges with weight comparable to L = 2·w(MST):
        // a unit-weight path (MST weight n−1) plus chords near L, plus
        // mid-weight chords for Case 2.
        let n = 48;
        let mut g = generators::path(n, 1);
        let l = 2 * (n as u64 - 1);
        for (i, (u, v)) in [(0usize, 40usize), (3, 30), (7, 44), (11, 37)]
            .iter()
            .enumerate()
        {
            g.add_edge(*u, *v, l - 4 - i as u64).unwrap(); // heaviest bucket
        }
        for (i, (u, v)) in [(2usize, 20usize), (5, 25), (9, 33), (14, 41)]
            .iter()
            .enumerate()
        {
            g.add_edge(*u, *v, 8 + i as u64).unwrap(); // mid buckets
        }
        let (_, r) = check(&g, 2, 0.25, 5);
        assert!(r.case1_buckets > 0, "no Case-1 bucket exercised");
        assert!(r.case2_buckets > 0, "no Case-2 bucket exercised");
    }

    #[test]
    fn sparsity_beats_dense_input() {
        // With a narrow weight range most edges land in the E′ bucket,
        // where Baswana–Sen does the sparsification.
        let g = generators::complete(60, 3, 6);
        let (q, _) = check(&g, 3, 0.25, 6);
        assert!(
            q.edges < 2 * g.m() / 3,
            "spanner kept {} of {} edges",
            q.edges,
            g.m()
        );
    }

    #[test]
    fn k1_has_stretch_one_plus_eps() {
        let g = generators::erdos_renyi(30, 0.2, 20, 7);
        let (q, _) = check(&g, 1, 0.25, 7);
        assert!(q.stretch <= 1.0 + 5.0 * 0.25);
    }
}
