//! The lower-bound reduction (§8, Theorem 7).
//!
//! Das Sarma et al. \[SHK+12\] showed that approximating the MST weight to
//! within polynomial factors needs `Ω̃(√n)` rounds; since SLTs and light
//! spanners certify such an approximation (Theorem 6), so do they. For
//! nets, Theorem 7 exhibits an explicit reduction: computing
//! `(α·2^i, 2^i)`-nets for every scale `i` yields the estimator
//!
//! ```text
//! Ψ = Σ_i n_i · α · 2^{i+1},   n_i = |N_i|,
//! ```
//!
//! with `L ≤ Ψ ≤ O(α·log n)·L`. This module reproduces the estimator on
//! top of the §6 net construction so the sandwich can be verified
//! empirically — the artifact behind the `Ω̃(√n + D)` net lower bound.

use crate::nets::net;
use congest::tree::BfsTree;
use congest::{Executor, RunStats};
use lightgraph::Weight;

/// Result of the MST-weight estimation from nets.
#[derive(Debug, Clone)]
pub struct MstWeightEstimate {
    /// The estimator `Ψ`.
    pub psi: Weight,
    /// `(scale 2^i, |N_i|)` per scale, until a single net point remains.
    pub scales: Vec<(Weight, usize)>,
    /// The effective covering parameter `α = (1+δ)` of the nets used.
    pub alpha: f64,
    /// Rounds/messages of all net constructions.
    pub stats: RunStats,
}

/// Estimates the MST weight via net cardinalities (Theorem 7's
/// reduction), using `δ = 1/2` nets (`α = 3/2`).
///
/// Guarantee (proved in §8): `L ≤ Ψ ≤ O(α log n) · L` where `L` is the
/// MST weight.
pub fn estimate_mst_weight(sim: &mut impl Executor, tau: &BfsTree, seed: u64) -> MstWeightEstimate {
    let start = sim.total();
    let delta = 0.5;
    let alpha = 1.0 + delta;
    let mut scales = Vec::new();
    let mut psi: Weight = 0;
    let mut scale: Weight = 1;
    let mut i = 0u64;
    loop {
        let r = net(sim, tau, scale, delta, seed ^ i << 9);
        let ni = r.points.len();
        // Ψ accumulates n_i · α · 2^{i+1}
        psi += ((ni as f64) * alpha * (2 * scale) as f64).ceil() as Weight;
        scales.push((scale, ni));
        if ni <= 1 {
            break;
        }
        scale *= 2;
        i += 1;
        assert!(i < 64, "scale overflow — weights beyond poly(n)?");
    }
    let stats = sim.total().since(start);
    MstWeightEstimate {
        psi,
        scales,
        alpha,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::{generators, mst};

    fn check(g: &lightgraph::Graph, seed: u64) {
        let l = mst::kruskal(g).weight;
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let est = estimate_mst_weight(&mut sim, &tau, seed);
        assert!(est.psi >= l, "Ψ = {} below the MST weight {l}", est.psi);
        let log_n = (g.n().max(2) as f64).log2();
        let upper = (est.alpha * 16.0 * log_n * l as f64).ceil() as Weight + 16;
        assert!(
            est.psi <= upper,
            "Ψ = {} exceeds O(α log n)·L = {upper} (L = {l})",
            est.psi
        );
        // net cardinality is non-increasing in the scale
        for w in est.scales.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1, "cardinality should shrink with scale");
        }
    }

    #[test]
    fn sandwich_on_random_graphs() {
        for seed in 0..2 {
            check(&generators::erdos_renyi(40, 0.15, 30, seed), seed);
        }
    }

    #[test]
    fn sandwich_on_structured_graphs() {
        check(&generators::path(30, 7), 1);
        check(&generators::grid(6, 6, 12, 2), 2);
        check(&generators::star(25, 9, 3), 3);
    }
}
