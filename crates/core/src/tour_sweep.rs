//! Token sweeps along the Euler tour.
//!
//! Both §4 (break-point selection inside the `√n`-sized intervals) and
//! §5 Case 2 (cluster-interval coordination) run sequential scans along
//! consecutive Euler-tour positions, *in parallel in every interval*.
//! Consecutive tour positions are hosted on tree-adjacent vertices, so
//! tokens travel on real graph edges; each directed tree edge carries
//! exactly one interval's stream, so the bandwidth cap is respected.

use congest::{Ctx, Executor, Message, Program, RunStats, Word};
use dist_mst::euler::DistEulerTour;
use lightgraph::NodeId;
use std::collections::HashMap;

const TAG_TOKEN: u64 = 50;

/// A two-word token carried through the sweep.
pub type Token = [Word; 2];

/// Sweep direction along the tour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Tokens start at interval heads and flow towards larger
    /// positions, stopping before the next head.
    LeftToRight,
    /// Tokens start at interval tails (the position before the next
    /// head) and flow towards smaller positions, stopping *at* the
    /// interval head (which receives but does not forward).
    RightToLeft,
}

/// Routing table for sweeps: owner of every tour position. Each vertex
/// can derive its own successors locally from its child structure and
/// appearance list; we assemble the global table once on their behalf.
#[derive(Debug, Clone)]
pub struct TourRouting {
    /// `owner[j]` = vertex hosting tour position `j`.
    pub owner: Vec<NodeId>,
    /// Positions owned by each vertex, ascending.
    pub positions: Vec<Vec<usize>>,
}

impl TourRouting {
    /// Builds the routing table from a distributed Euler tour.
    pub fn new(tour: &DistEulerTour) -> Self {
        let (seq, _) = tour.assemble();
        let mut positions = vec![Vec::new(); tour.appearances.len()];
        for (j, &v) in seq.iter().enumerate() {
            positions[v].push(j);
        }
        TourRouting {
            owner: seq,
            positions,
        }
    }

    /// Number of tour positions (`2n − 1`).
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the tour is empty.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }
}

type Step<'a> = Box<dyn FnMut(usize, Token) -> Token + Send + 'a>;

struct SweepProgram<'a> {
    /// For each owned position that forwards: the successor position
    /// and its owner.
    next: HashMap<usize, Option<(usize, NodeId)>>,
    /// Tokens to emit at init (at sweep origins owned here).
    initial: Vec<(usize, Token)>,
    step: Step<'a>,
    received: Vec<(usize, Token)>,
}

impl<'a> SweepProgram<'a> {
    fn emit(&mut self, ctx: &mut Ctx<'_>, pos: usize, token: Token) {
        if let Some(Some((next_pos, owner))) = self.next.get(&pos) {
            ctx.send(
                *owner,
                Message::words(&[TAG_TOKEN, *next_pos as u64, token[0], token[1]]),
            );
        }
    }
}

impl<'a> Program for SweepProgram<'a> {
    type Output = Vec<(usize, Token)>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        for (pos, token) in self.initial.clone() {
            self.emit(ctx, pos, token);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (_, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_TOKEN);
            let pos = msg.word(1) as usize;
            let incoming = [msg.word(2), msg.word(3)];
            self.received.push((pos, incoming));
            let outgoing = (self.step)(pos, incoming);
            self.emit(ctx, pos, outgoing);
        }
    }

    fn finish(self) -> Self::Output {
        self.received
    }
}

/// Token sweep over tour intervals delimited by `is_start` positions.
///
/// * [`Direction::LeftToRight`]: every head `j` (with `is_start(j)`)
///   emits `init(j)`; positions `j+1, j+2, …` up to the next head each
///   receive the token, record it, and forward `step(position, token)`.
/// * [`Direction::RightToLeft`]: every interval's last position emits
///   `init`, flowing down to the head (inclusive).
///
/// All intervals run in parallel; rounds ≈ max interval length.
/// Returns per-vertex `(position, incoming token)` observations.
pub fn tour_sweep<F>(
    sim: &mut impl Executor,
    routing: &TourRouting,
    direction: Direction,
    is_start: impl Fn(usize) -> bool,
    init: impl Fn(usize) -> Token,
    mut make_step: impl FnMut(NodeId) -> F,
) -> (Vec<Vec<(usize, Token)>>, RunStats)
where
    F: FnMut(usize, Token) -> Token + Send + 'static,
{
    let len = routing.len();
    if len == 0 {
        return (
            vec![Vec::new(); routing.positions.len()],
            RunStats::default(),
        );
    }
    let last = len - 1;
    // origin(p): does position p emit at init?
    // successor(p): Some(next position) if p forwards its token.
    let origin = |p: usize| -> bool {
        match direction {
            Direction::LeftToRight => is_start(p),
            // tail of an interval: the next position is a head (or end)
            Direction::RightToLeft => !is_start(p) && (p == last || is_start(p + 1)),
        }
    };
    let successor = |p: usize| -> Option<usize> {
        match direction {
            Direction::LeftToRight => (p < last && !is_start(p + 1)).then(|| p + 1),
            Direction::RightToLeft => {
                // forward towards smaller positions; heads stop.
                (!is_start(p) && p > 0).then(|| p - 1)
            }
        }
    };

    sim.run(|v, _| {
        let mut next = HashMap::new();
        let mut initial = Vec::new();
        for &p in &routing.positions[v] {
            next.insert(p, successor(p).map(|q| (q, routing.owner[q])));
            if origin(p) {
                initial.push((p, init(p)));
            }
        }
        SweepProgram {
            next,
            initial,
            step: Box::new(make_step(v)),
            received: Vec::new(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use dist_mst::{boruvka::distributed_mst, euler::distributed_euler_tour};
    use lightgraph::generators;

    fn routing_for(g: &lightgraph::Graph) -> (TourRouting, lightgraph::Graph) {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let mst = distributed_mst(&mut sim, &tau, 0, 1);
        let tour = distributed_euler_tour(&mut sim, &tau, &mst, 0);
        (TourRouting::new(&tour), g.clone())
    }

    #[test]
    fn left_to_right_visits_every_interval_position_once() {
        let g = generators::erdos_renyi(30, 0.15, 20, 3);
        let (routing, g) = routing_for(&g);
        let len = routing.len();
        let alpha = 7usize;
        let mut sim = Simulator::new(&g);
        // token counts hops from the interval head
        let (out, stats) = tour_sweep(
            &mut sim,
            &routing,
            Direction::LeftToRight,
            |p| p % alpha == 0,
            |_| [0, 0],
            |_| |_pos: usize, t: Token| [t[0] + 1, 0],
        );
        // every non-head position receives exactly once, with hop count
        // = offset - 1 ... token at position p is the value forwarded by
        // p-1: head sends [0,0]; p = head+1 receives [0,0]; step adds 1.
        let mut seen = vec![0usize; len];
        for (v, recs) in out.iter().enumerate() {
            for &(p, t) in recs {
                assert_eq!(routing.owner[p], v);
                seen[p] += 1;
                assert_eq!(t[0] as usize, (p % alpha) - 1, "position {p}");
            }
        }
        for p in 0..len {
            let expect = usize::from(p % alpha != 0);
            assert_eq!(seen[p], expect, "position {p}");
        }
        assert!(stats.rounds <= alpha as u64 + 2);
    }

    #[test]
    fn right_to_left_reaches_interval_heads() {
        let g = generators::path(16, 2);
        let (routing, g) = routing_for(&g);
        let len = routing.len();
        let alpha = 5usize;
        let mut sim = Simulator::new(&g);
        let (out, _) = tour_sweep(
            &mut sim,
            &routing,
            Direction::RightToLeft,
            |p| p % alpha == 0,
            |p| [p as u64, 0],
            |_| |_pos: usize, t: Token| t,
        );
        // each head receives the tail position of its interval
        let mut got: HashMap<usize, u64> = HashMap::new();
        for recs in &out {
            for &(p, t) in recs {
                if p % alpha == 0 {
                    got.insert(p, t[0]);
                }
            }
        }
        for head in (0..len).step_by(alpha) {
            let tail = (head + alpha - 1).min(len - 1);
            if tail == head {
                continue; // single-position interval: no token
            }
            assert_eq!(got.get(&head).copied(), Some(tail as u64), "head {head}");
        }
    }

    #[test]
    fn sweep_charges_interval_length_rounds() {
        let g = generators::path(64, 1);
        let (routing, g) = routing_for(&g);
        let mut sim = Simulator::new(&g);
        let (_, stats) = tour_sweep(
            &mut sim,
            &routing,
            Direction::LeftToRight,
            |p| p == 0,
            |_| [0, 0],
            |_| |_p: usize, t: Token| t,
        );
        // one interval spanning the whole tour: 2n-2 sequential hops
        assert!(stats.rounds >= (2 * 64 - 3) as u64);
    }
}
