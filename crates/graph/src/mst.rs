//! Kruskal's minimum spanning tree — the sequential reference.
//!
//! The distributed MST in the `dist-mst` crate must produce a spanning
//! tree of exactly this weight (the tree itself may differ when weights
//! are not unique; ties are broken by `(weight, edge id)` to make the
//! *reference* deterministic).

use crate::union_find::UnionFind;
use crate::{EdgeId, Graph, Weight};

/// A spanning forest produced by [`kruskal`].
#[derive(Debug, Clone)]
pub struct Mst {
    /// Ids (into [`Graph::edges`]) of the chosen edges, sorted ascending.
    pub edges: Vec<EdgeId>,
    /// Total weight of the chosen edges.
    pub weight: Weight,
    /// Whether the forest spans a single component.
    pub is_spanning_tree: bool,
}

/// Kruskal's algorithm with `(weight, edge id)` tie-breaking.
///
/// On a connected graph the result is a spanning tree with `n - 1` edges;
/// on a disconnected graph it is a minimum spanning forest and
/// [`Mst::is_spanning_tree`] is `false`.
pub fn kruskal(g: &Graph) -> Mst {
    let mut order: Vec<EdgeId> = (0..g.m()).collect();
    order.sort_by_key(|&e| (g.edge(e).w, e));
    let mut uf = UnionFind::new(g.n());
    let mut edges = Vec::with_capacity(g.n().saturating_sub(1));
    let mut weight: Weight = 0;
    for e in order {
        let edge = g.edge(e);
        if uf.union(edge.u, edge.v) {
            edges.push(e);
            weight += edge.w;
        }
    }
    edges.sort_unstable();
    let is_spanning_tree = g.n() <= 1 || edges.len() == g.n() - 1;
    Mst {
        edges,
        weight,
        is_spanning_tree,
    }
}

/// Checks that `edge_ids` forms a spanning tree of `g` and returns its
/// weight, or `None` if it is not a spanning tree.
pub fn spanning_tree_weight(g: &Graph, edge_ids: &[EdgeId]) -> Option<Weight> {
    if g.n() > 0 && edge_ids.len() != g.n() - 1 {
        return None;
    }
    let mut uf = UnionFind::new(g.n());
    let mut weight = 0;
    for &e in edge_ids {
        let edge = g.edge(e);
        if !uf.union(edge.u, edge.v) {
            return None; // cycle
        }
        weight += edge.w;
    }
    (uf.components() <= 1 || g.n() == 0).then_some(weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn mst_of_triangle_drops_heaviest() {
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 2), (0, 2, 10)]).unwrap();
        let mst = kruskal(&g);
        assert_eq!(mst.weight, 3);
        assert_eq!(mst.edges, vec![0, 1]);
        assert!(mst.is_spanning_tree);
    }

    #[test]
    fn mst_of_disconnected_graph_is_forest() {
        let g = Graph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let mst = kruskal(&g);
        assert!(!mst.is_spanning_tree);
        assert_eq!(mst.edges.len(), 2);
    }

    #[test]
    fn spanning_tree_weight_validates() {
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 2), (0, 2, 10)]).unwrap();
        assert_eq!(spanning_tree_weight(&g, &[0, 1]), Some(3));
        assert_eq!(spanning_tree_weight(&g, &[0]), None); // too few
        let g2 = Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]).unwrap();
        assert_eq!(spanning_tree_weight(&g2, &[0, 1, 2]), None); // cycle
    }

    #[test]
    fn mst_weight_is_minimal_by_brute_force() {
        let g = generators::erdos_renyi(8, 0.5, 20, 3);
        let mst = kruskal(&g);
        // brute force over all spanning trees is too big; instead check the
        // cut property: for each non-tree edge, it is the heaviest on the
        // cycle it closes (up to ties).
        let tree = g.edge_subgraph(mst.edges.iter().copied());
        for (id, e) in g.edges().iter().enumerate() {
            if mst.edges.contains(&id) {
                continue;
            }
            // path in tree between endpoints
            let sp = crate::dijkstra::shortest_paths(&tree, e.u);
            let mut cur = e.v;
            let mut max_on_path = 0;
            while let Some((p, pe)) = sp.parent[cur] {
                max_on_path = max_on_path.max(tree.edge(pe).w);
                cur = p;
            }
            assert!(e.w >= max_on_path, "cycle property violated");
        }
    }
}
