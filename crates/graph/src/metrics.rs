//! Quality metrics for spanners and shallow-light trees: stretch,
//! lightness, and root-stretch, as defined in the paper's introduction.

use crate::{dijkstra, mst, Graph, NodeId, INF};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ratio of two weights as `f64` (`inf` if the denominator is 0).
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::INFINITY
    } else {
        num as f64 / den as f64
    }
}

/// Lightness of `h` with respect to `g`: `w(h) / w(MST(g))`.
///
/// # Panics
/// Panics if `g` is disconnected (lightness is defined w.r.t. the MST).
pub fn lightness(g: &Graph, h: &Graph) -> f64 {
    let m = mst::kruskal(g);
    assert!(
        m.is_spanning_tree,
        "lightness requires a connected base graph"
    );
    ratio(h.total_weight(), m.weight)
}

/// Certified maximum stretch of the subgraph `h` w.r.t. `g`, computed
/// over *all edges* of `g`.
///
/// For any subgraph `H ⊆ G`, `max_{u,v} d_H(u,v)/d_G(u,v)` is attained on
/// an edge of `G`, so this is the exact worst-case stretch. Runs one
/// Dijkstra in `h` per distinct edge endpoint — use on test-sized graphs.
pub fn max_stretch(g: &Graph, h: &Graph) -> f64 {
    assert_eq!(g.n(), h.n());
    let mut worst: f64 = 1.0;
    let mut sources: Vec<NodeId> = g.edges().iter().map(|e| e.u).collect();
    sources.sort_unstable();
    sources.dedup();
    for u in sources {
        let sp = dijkstra::shortest_paths(h, u);
        for &(v, w, _) in g.neighbors(u) {
            if sp.dist[v] >= INF {
                return f64::INFINITY;
            }
            worst = worst.max(ratio(sp.dist[v], w));
        }
    }
    worst
}

/// Sampled maximum stretch over `samples` random vertex pairs — cheaper
/// than [`max_stretch`], used by the large benchmark sweeps.
pub fn sampled_stretch(g: &Graph, h: &Graph, samples: usize, seed: u64) -> f64 {
    assert_eq!(g.n(), h.n());
    if g.n() < 2 {
        return 1.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst: f64 = 1.0;
    for _ in 0..samples {
        let u = rng.gen_range(0..g.n());
        let dg = dijkstra::shortest_paths(g, u);
        let dh = dijkstra::shortest_paths(h, u);
        let v = rng.gen_range(0..g.n());
        if u == v || dg.dist[v] == 0 || dg.dist[v] >= INF {
            continue;
        }
        if dh.dist[v] >= INF {
            return f64::INFINITY;
        }
        worst = worst.max(ratio(dh.dist[v], dg.dist[v]));
    }
    worst
}

/// Maximum stretch of distances *from the root* in the subgraph `h`
/// (used for SLTs): `max_v d_H(rt, v) / d_G(rt, v)`.
pub fn root_stretch(g: &Graph, h: &Graph, root: NodeId) -> f64 {
    assert_eq!(g.n(), h.n());
    let dg = dijkstra::shortest_paths(g, root);
    let dh = dijkstra::shortest_paths(h, root);
    let mut worst: f64 = 1.0;
    for v in 0..g.n() {
        if v == root || dg.dist[v] >= INF {
            continue;
        }
        if dh.dist[v] >= INF {
            return f64::INFINITY;
        }
        worst = worst.max(ratio(dh.dist[v], dg.dist[v]));
    }
    worst
}

/// Summary of a spanner's quality, bundling the three Table-1 columns.
#[derive(Debug, Clone, Copy)]
pub struct SpannerQuality {
    /// Certified (or sampled) maximum stretch.
    pub stretch: f64,
    /// Number of edges in the spanner.
    pub edges: usize,
    /// `w(H) / w(MST)`.
    pub lightness: f64,
}

/// Computes exact quality metrics (use on test-sized graphs).
pub fn spanner_quality(g: &Graph, h: &Graph) -> SpannerQuality {
    SpannerQuality {
        stretch: max_stretch(g, h),
        edges: h.m(),
        lightness: lightness(g, h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn identity_spanner_has_stretch_one() {
        let g = generators::erdos_renyi(30, 0.2, 50, 1);
        assert_eq!(max_stretch(&g, &g), 1.0);
    }

    #[test]
    fn mst_stretch_is_finite_and_at_least_one() {
        let g = generators::erdos_renyi(30, 0.2, 50, 2);
        let m = mst::kruskal(&g);
        let t = g.edge_subgraph(m.edges.iter().copied());
        let s = max_stretch(&g, &t);
        assert!((1.0..f64::INFINITY).contains(&s));
        assert!((lightness(&g, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_subgraph_has_infinite_stretch() {
        let g = generators::erdos_renyi(10, 0.5, 10, 3);
        let h = Graph::new(10); // no edges
        assert_eq!(max_stretch(&g, &h), f64::INFINITY);
        assert_eq!(root_stretch(&g, &h, 0), f64::INFINITY);
    }

    #[test]
    fn root_stretch_of_spt_is_one() {
        let g = generators::erdos_renyi(30, 0.2, 50, 4);
        let sp = dijkstra::shortest_paths(&g, 0);
        let ids: Vec<_> = (0..g.n())
            .filter_map(|v| sp.parent[v].map(|(_, e)| e))
            .collect();
        let t = g.edge_subgraph(ids);
        assert!((root_stretch(&g, &t, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_stretch_lower_bounds_max_stretch() {
        let g = generators::erdos_renyi(25, 0.3, 40, 5);
        let m = mst::kruskal(&g);
        let t = g.edge_subgraph(m.edges.iter().copied());
        let full = max_stretch(&g, &t);
        let sampled = sampled_stretch(&g, &t, 40, 7);
        assert!(sampled <= full + 1e-9);
        assert!(sampled >= 1.0);
    }

    #[test]
    fn quality_bundle() {
        let g = generators::erdos_renyi(20, 0.4, 30, 6);
        let q = spanner_quality(&g, &g);
        assert_eq!(q.edges, g.m());
        assert_eq!(q.stretch, 1.0);
        assert!(q.lightness >= 1.0);
    }
}
