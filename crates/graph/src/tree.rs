//! Rooted spanning trees and the *sequential* Euler tour of Section 3.
//!
//! The distributed Euler tour in `dist-mst` must reproduce exactly the
//! sequence and visit times computed here.

use crate::{EdgeId, Graph, NodeId, Weight};

/// A spanning tree of a [`Graph`], rooted at [`RootedTree::root`].
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: NodeId,
    /// `parent[v] = (parent vertex, weight, edge id)`; `None` for the root.
    parent: Vec<Option<(NodeId, Weight, EdgeId)>>,
    /// Children of each vertex, sorted by vertex id (the paper fixes the
    /// traversal order "using their id").
    children: Vec<Vec<NodeId>>,
    /// Vertices in BFS order from the root.
    order: Vec<NodeId>,
    depth_hops: Vec<usize>,
    dist_to_root: Vec<Weight>,
}

impl RootedTree {
    /// Builds a rooted tree from `n - 1` tree edges of `g`.
    ///
    /// # Panics
    /// Panics if the edges do not form a spanning tree of `g` containing
    /// the root.
    pub fn from_edge_ids(g: &Graph, edge_ids: &[EdgeId], root: NodeId) -> Self {
        let n = g.n();
        let mut adj: Vec<Vec<(NodeId, Weight, EdgeId)>> = vec![Vec::new(); n];
        for &id in edge_ids {
            let e = g.edge(id);
            adj[e.u].push((e.v, e.w, id));
            adj[e.v].push((e.u, e.w, id));
        }
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut depth_hops = vec![0usize; n];
        let mut dist_to_root = vec![0 as Weight; n];
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, w, id) in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some((u, w, id));
                    children[u].push(v);
                    depth_hops[v] = depth_hops[u] + 1;
                    dist_to_root[v] = dist_to_root[u] + w;
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(order.len(), n, "edges do not span the graph from the root");
        for c in &mut children {
            c.sort_unstable();
        }
        RootedTree {
            root,
            parent,
            children,
            order,
            depth_hops,
            dist_to_root,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// `(parent, edge weight, edge id)` of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, Weight, EdgeId)> {
        self.parent[v]
    }

    /// Children of `v`, sorted by id.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Vertices in BFS order from the root (useful for bottom-up passes:
    /// iterate in reverse).
    pub fn bfs_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of tree edges on the root–`v` path.
    pub fn depth_hops(&self, v: NodeId) -> usize {
        self.depth_hops[v]
    }

    /// Weighted distance from the root to `v` *in the tree*.
    pub fn dist_to_root(&self, v: NodeId) -> Weight {
        self.dist_to_root[v]
    }

    /// Total weight of the tree.
    pub fn weight(&self) -> Weight {
        self.parent.iter().flatten().map(|&(_, w, _)| w).sum()
    }

    /// Edge ids of the tree, in no particular order.
    pub fn edge_ids(&self) -> Vec<EdgeId> {
        self.parent.iter().flatten().map(|&(_, _, id)| id).collect()
    }

    /// Weighted tree distance between `u` and `v` (via their lowest common
    /// ancestor; O(depth) per query).
    pub fn distance(&self, u: NodeId, v: NodeId) -> Weight {
        let (mut a, mut b) = (u, v);
        let (mut da, mut db) = (0 as Weight, 0 as Weight);
        while self.depth_hops[a] > self.depth_hops[b] {
            let (p, w, _) = self.parent[a].expect("non-root has parent");
            da += w;
            a = p;
        }
        while self.depth_hops[b] > self.depth_hops[a] {
            let (p, w, _) = self.parent[b].expect("non-root has parent");
            db += w;
            b = p;
        }
        while a != b {
            let (pa, wa, _) = self.parent[a].expect("non-root has parent");
            let (pb, wb, _) = self.parent[b].expect("non-root has parent");
            da += wa;
            db += wb;
            a = pa;
            b = pb;
        }
        da + db
    }

    /// The path from the root to `v` as a list of vertices
    /// `[root, ..., v]`.
    pub fn root_path(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _, _)) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Computes the Euler tour (preorder traversal with returns) of the
    /// tree, exactly as defined in Section 3 of the paper.
    pub fn euler_tour(&self) -> EulerTour {
        let n = self.n();
        let mut seq = Vec::with_capacity(2 * n - 1);
        let mut times = Vec::with_capacity(2 * n - 1);
        let mut appearances: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Explicit stack to avoid recursion depth limits on path graphs.
        // Frame = (vertex, next child index).
        let mut time: Weight = 0;
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        appearances[self.root].push(seq.len());
        seq.push(self.root);
        times.push(0);
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci < self.children[v].len() {
                let c = self.children[v][*ci];
                *ci += 1;
                let (_, w, _) = self.parent[c].expect("child has parent");
                time += w;
                appearances[c].push(seq.len());
                seq.push(c);
                times.push(time);
                stack.push((c, 0));
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    let (_, w, _) = self.parent[v].expect("non-root has parent");
                    time += w;
                    appearances[p].push(seq.len());
                    seq.push(p);
                    times.push(time);
                }
            }
        }
        EulerTour {
            seq,
            times,
            appearances,
        }
    }
}

/// An Euler tour `L = {x_0, ..., x_{2n-2}}` of a rooted tree, with the
/// weighted visit times `R_x` of Section 3.
#[derive(Debug, Clone)]
pub struct EulerTour {
    /// `seq[i]` is the vertex visited at position `i`; `seq.len() == 2n-1`.
    pub seq: Vec<NodeId>,
    /// `times[i] = R_{x_i}`, the weighted distance travelled along the
    /// tour up to position `i`. `times[2n-2] == 2 * w(T)`.
    pub times: Vec<Weight>,
    /// For each vertex `v`, the positions `i` with `seq[i] == v`
    /// (the set `L(v)` of the paper), in increasing order.
    pub appearances: Vec<Vec<usize>>,
}

impl EulerTour {
    /// Number of tour positions (`2n - 1`).
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the tour is empty (only for the empty tree).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Total weighted length of the tour (`2 * w(T)`).
    pub fn total_length(&self) -> Weight {
        *self.times.last().unwrap_or(&0)
    }

    /// Tour distance `d_L(x_i, x_j) = |R_{x_i} - R_{x_j}|`.
    pub fn tour_distance(&self, i: usize, j: usize) -> Weight {
        self.times[i].abs_diff(self.times[j])
    }

    /// First appearance (position) of vertex `v`.
    pub fn first_appearance(&self, v: NodeId) -> usize {
        self.appearances[v][0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst;

    /// The example tree from the figure in Section 3 of the paper:
    /// root a with children b (w=2) and c..; we encode
    /// a=0, b=1, c=2, d=3, e=4, f=5, g=6 with
    /// edges a-b(2), a-c? ... The figure gives weights 2,2,4,3,3,1 and
    /// visit times 0,2,4,6,7,8,10,13,17,21,24,27,30.
    /// We reconstruct a consistent tree: a-b(2); b-c(2)? Instead of
    /// guessing the garbled figure we verify tour *invariants* on several
    /// hand-built trees, and check the exact sequence on a small one.
    fn small_tree() -> (Graph, RootedTree) {
        // root 0; children 1 (w=2), 2 (w=3); 1 has child 3 (w=1).
        let g = Graph::from_edges(4, [(0, 1, 2), (1, 3, 1), (0, 2, 3)]).unwrap();
        let m = mst::kruskal(&g);
        let t = RootedTree::from_edge_ids(&g, &m.edges, 0);
        (g, t)
    }

    #[test]
    fn exact_tour_of_small_tree() {
        let (_, t) = small_tree();
        let tour = t.euler_tour();
        // preorder with returns, children by id:
        // 0 (t=0) -> 1 (2) -> 3 (3) -> back 1 (4) -> back 0 (6) -> 2 (9) -> back 0 (12)
        assert_eq!(tour.seq, vec![0, 1, 3, 1, 0, 2, 0]);
        assert_eq!(tour.times, vec![0, 2, 3, 4, 6, 9, 12]);
        assert_eq!(tour.total_length(), 2 * t.weight());
    }

    #[test]
    fn tour_has_2n_minus_1_entries_and_degree_appearances() {
        let (g, t) = small_tree();
        let tour = t.euler_tour();
        assert_eq!(tour.len(), 2 * g.n() - 1);
        // appearances: root deg+1, others deg (in the tree)
        let tree_graph = g.edge_subgraph(t.edge_ids());
        for v in 0..g.n() {
            let expect = if v == t.root() {
                tree_graph.degree(v) + 1
            } else {
                tree_graph.degree(v)
            };
            assert_eq!(tour.appearances[v].len(), expect, "vertex {v}");
        }
    }

    #[test]
    fn consecutive_tour_entries_are_tree_neighbors() {
        let g = crate::generators::erdos_renyi(40, 0.15, 50, 11);
        let m = mst::kruskal(&g);
        let t = RootedTree::from_edge_ids(&g, &m.edges, 0);
        let tour = t.euler_tour();
        for i in 1..tour.len() {
            let (a, b) = (tour.seq[i - 1], tour.seq[i]);
            let step = tour.times[i] - tour.times[i - 1];
            // a and b must be parent/child with edge weight == step
            let ok = t
                .parent(a)
                .map(|(p, w, _)| p == b && w == step)
                .unwrap_or(false)
                || t.parent(b)
                    .map(|(p, w, _)| p == a && w == step)
                    .unwrap_or(false);
            assert!(ok, "positions {} and {} not tree-adjacent", i - 1, i);
        }
    }

    #[test]
    fn tree_distance_matches_dijkstra_on_tree() {
        let g = crate::generators::erdos_renyi(30, 0.2, 30, 5);
        let m = mst::kruskal(&g);
        let t = RootedTree::from_edge_ids(&g, &m.edges, 3);
        let tg = g.edge_subgraph(t.edge_ids());
        let ap = crate::dijkstra::all_pairs(&tg);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(t.distance(u, v), ap[u][v], "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn root_path_starts_at_root_ends_at_v() {
        let (_, t) = small_tree();
        assert_eq!(t.root_path(3), vec![0, 1, 3]);
        assert_eq!(t.root_path(0), vec![0]);
    }

    #[test]
    fn dist_to_root_matches_distance() {
        let (_, t) = small_tree();
        for v in 0..t.n() {
            assert_eq!(t.dist_to_root(v), t.distance(t.root(), v));
        }
    }

    #[test]
    fn tour_of_single_vertex() {
        let g = Graph::new(1);
        let t = RootedTree::from_edge_ids(&g, &[], 0);
        let tour = t.euler_tour();
        assert_eq!(tour.seq, vec![0]);
        assert_eq!(tour.total_length(), 0);
    }

    #[test]
    fn tour_of_path_graph_walks_out_and_back() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let t = RootedTree::from_edge_ids(&g, &[0, 1, 2], 0);
        let tour = t.euler_tour();
        assert_eq!(tour.seq, vec![0, 1, 2, 3, 2, 1, 0]);
        assert_eq!(tour.times, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
