//! Weighted-graph substrate for the light-networks reproduction.
//!
//! This crate contains everything the distributed algorithms of
//! *Distributed Construction of Light Networks* (Elkin, Filtser, Neiman;
//! PODC 2020) need from a classical (sequential) graph library:
//!
//! * [`Graph`] — an undirected weighted graph with integer weights,
//! * [`generators`] — seeded random instance generators (Erdős–Rényi,
//!   random geometric, grids, trees with chords, …),
//! * [`dijkstra`] — exact shortest paths used as the correctness oracle,
//! * [`mst`] — Kruskal's minimum spanning tree (the sequential reference
//!   the distributed MST of `dist-mst` is checked against),
//! * [`tree`] — rooted-tree utilities including the *sequential* Euler
//!   tour that Section 3 of the paper distributes,
//! * [`metrics`] — stretch and lightness measurements for spanners and
//!   shallow-light trees,
//! * [`doubling`] — doubling-dimension estimation (Section 7).
//!
//! # Example
//!
//! ```
//! use lightgraph::{generators, dijkstra, mst};
//!
//! let g = generators::erdos_renyi(64, 0.1, 100, 7);
//! let dist = dijkstra::shortest_paths(&g, 0).dist;
//! let tree = mst::kruskal(&g);
//! assert!(tree.weight <= g.total_weight());
//! assert!(dist.iter().all(|&d| d < lightgraph::INF));
//! ```

pub mod dijkstra;
pub mod doubling;
pub mod generators;
pub mod metrics;
pub mod mst;
pub mod tree;
pub mod union_find;

mod graph;

pub use graph::{Edge, EdgeId, Graph, GraphError, NodeId, Weight, INF};
