//! Seeded random instance generators.
//!
//! Every generator is deterministic in its seed, always returns a
//! *connected* graph (the algorithms in the paper assume connectivity),
//! and uses integer weights in `[1, max_w]` (§2: minimum weight 1,
//! maximum poly(n)).

use crate::union_find::UnionFind;
use crate::{Graph, NodeId, Weight};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A uniformly random spanning tree skeleton (random attachment order),
/// guaranteeing connectivity of graphs built on top of it.
fn random_tree_edges(n: usize, max_w: Weight, rng: &mut StdRng) -> Vec<(NodeId, NodeId, Weight)> {
    let mut perm: Vec<NodeId> = (0..n).collect();
    perm.shuffle(rng);
    (1..n)
        .map(|i| {
            let parent = perm[rng.gen_range(0..i)];
            (perm[i], parent, rng.gen_range(1..=max_w))
        })
        .collect()
}

/// Connected Erdős–Rényi graph: a random spanning tree plus each other
/// pair independently with probability `p`, weights uniform in
/// `[1, max_w]`.
pub fn erdos_renyi(n: usize, p: f64, max_w: Weight, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!(max_w >= 1);
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    let mut present = std::collections::HashSet::new();
    for (u, v, w) in random_tree_edges(n, max_w, &mut r) {
        present.insert((u.min(v), u.max(v)));
        g.add_edge(u, v, w).expect("tree edge valid");
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !present.contains(&(u, v)) && r.gen_bool(p) {
                g.add_edge(u, v, r.gen_range(1..=max_w))
                    .expect("valid edge");
            }
        }
    }
    g
}

/// Connected sparse Erdős–Rényi graph in `O(n + m)` expected time:
/// a random spanning tree plus geometric-skip sampling over the
/// non-tree pairs (the classic fast-G(n,p) trick — instead of testing
/// every pair, jump `⌊ln u / ln(1−p)⌋` pairs ahead per accepted edge).
///
/// Produces the same *distribution family* as [`erdos_renyi`] but a
/// different per-seed stream, so use it where scale matters (the
/// `scenario` runner's 10⁵⁺-node sweeps) and [`erdos_renyi`] where
/// seeds are pinned in tests. Skipped pairs that collide with a tree
/// edge are dropped, matching [`erdos_renyi`]'s dedup behavior.
pub fn gnp_sparse(n: usize, p: f64, max_w: Weight, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!(max_w >= 1);
    assert!((0.0..=1.0).contains(&p), "probability p must be in [0, 1]");
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    let mut present = std::collections::HashSet::new();
    for (u, v, w) in random_tree_edges(n, max_w, &mut r) {
        present.insert((u.min(v), u.max(v)));
        g.add_edge(u, v, w).expect("tree edge valid");
    }
    if p <= 0.0 || n < 2 {
        return g;
    }
    // Walk pairs (u, v), u < v, lexicographically with an incremental
    // cursor; geometric skips keep the whole sweep O(n + m) amortized.
    let ln_q = (1.0 - p).ln();
    let mut u = 0usize;
    let mut v = 1usize;
    'sweep: loop {
        let mut skip = if ln_q == f64::NEG_INFINITY {
            0 // p == 1: take every pair
        } else {
            let x: f64 = r.gen_range(f64::EPSILON..1.0);
            (x.ln() / ln_q).floor() as usize
        };
        // advance the cursor `skip` pairs
        loop {
            let remaining_in_row = n - v;
            if skip < remaining_in_row {
                v += skip;
                break;
            }
            skip -= remaining_in_row;
            u += 1;
            if u >= n - 1 {
                break 'sweep;
            }
            v = u + 1;
        }
        if present.insert((u, v)) {
            g.add_edge(u, v, r.gen_range(1..=max_w))
                .expect("valid edge");
        }
        // step to the next pair
        v += 1;
        if v >= n {
            u += 1;
            if u >= n - 1 {
                break;
            }
            v = u + 1;
        }
    }
    g
}

/// Random tree plus `chords` extra random edges; the canonical
/// "spanner-hostile" family (the MST is light, chords are heavy).
pub fn tree_plus_chords(n: usize, chords: usize, max_w: Weight, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    let mut present = std::collections::HashSet::new();
    for (u, v, w) in random_tree_edges(n, max_w, &mut r) {
        present.insert((u.min(v), u.max(v)));
        g.add_edge(u, v, w).expect("tree edge valid");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < chords && attempts < 100 * chords.max(1) && n >= 2 {
        attempts += 1;
        let u = r.gen_range(0..n);
        let v = r.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            g.add_edge(u, v, r.gen_range(1..=max_w))
                .expect("valid edge");
            added += 1;
        }
    }
    g
}

/// Scale applied to unit-square coordinates so that geometric weights are
/// integral.
pub const GEO_SCALE: f64 = 1_000_000.0;

/// Random geometric graph on the unit square (doubling dimension ≈ 2):
/// `n` uniform points, an edge between every pair within Euclidean
/// distance `radius`, weight = scaled Euclidean distance. If the radius
/// graph is disconnected, a Euclidean MST over the points is added, so
/// the result is always connected and still metric.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut r = rng(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
    graph_from_points(&pts, radius)
}

/// Euclidean distance between two points.
fn geo_dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Scaled integral weight of a geometric edge.
fn geo_weight(d: f64) -> Weight {
    ((d * GEO_SCALE).round() as u64).max(1)
}

/// The canonical stitch-edge comparison order `(d, u, v)`: a *strict*
/// total order on candidate edges (no two edges share `(u, v)`), so the
/// component-stitching MST is unique and every correct MST algorithm —
/// the reference's Kruskal and the grid version's Borůvka — returns the
/// same edge set, ties (e.g. coincident points) included.
fn stitch_cmp(a: &(f64, NodeId, NodeId), b: &(f64, NodeId, NodeId)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
}

/// Buckets points into a square grid of `cell`-sized cells.
fn bucket_points(
    pts: &[(f64, f64)],
    cell: f64,
) -> std::collections::HashMap<(i64, i64), Vec<NodeId>> {
    let mut cells: std::collections::HashMap<(i64, i64), Vec<NodeId>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        // `as i64` saturates on overflow/NaN, which preserves adjacency:
        // two points within `cell` of each other always land in the same
        // or neighboring (possibly both-saturated) cells.
        let key = ((x / cell).floor() as i64, (y / cell).floor() as i64);
        cells.entry(key).or_default().push(i);
    }
    cells
}

/// A positive, finite grid cell size for the radius pass. Degenerate
/// radii (`<= 0`, infinite, NaN) only have to keep coincident points in
/// a shared cell (radius 0) or nothing at all, so any sane constant
/// works; the per-pair `d <= radius` test does the real filtering.
fn radius_cell(pts: &[(f64, f64)], radius: f64) -> f64 {
    if radius > 0.0 && radius.is_finite() {
        radius
    } else if radius == f64::INFINITY {
        // complete graph: one cell must hold every point
        point_span(pts).max(1.0) * 2.0
    } else {
        1.0
    }
}

/// Side length of the points' bounding square (0 if fewer than 2 points).
fn point_span(pts: &[(f64, f64)]) -> f64 {
    let mut min = (f64::INFINITY, f64::INFINITY);
    let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in pts {
        min = (min.0.min(x), min.1.min(y));
        max = (max.0.max(x), max.1.max(y));
    }
    if pts.is_empty() {
        0.0
    } else {
        (max.0 - min.0).max(max.1 - min.1)
    }
}

/// Builds the geometric graph for an explicit point set in
/// `O(n log n + m)` expected time via grid bucketing: points are hashed
/// into `radius`-sized cells and only the 3×3 cell neighborhood of each
/// point is scanned, so the all-pairs loop of
/// [`graph_from_points_reference`] is never materialized. Disconnected
/// radius graphs are stitched by a cell-aware Borůvka nearest-neighbor
/// pass instead of the reference's `O(n²)` Kruskal.
///
/// The output is *identical* to [`graph_from_points_reference`] —
/// same edge list, same insertion order, same weights — which the
/// property tests in `tests/geometric_equivalence.rs` lock down:
///
/// 1. every pair within Euclidean distance `radius` becomes an edge,
///    inserted in `(u, v)` lexicographic order, weight = scaled
///    distance ([`GEO_SCALE`], minimum 1);
/// 2. if the radius graph is disconnected, the unique MST of the
///    component contraction under the strict `(d, u, v)` order is
///    appended, also in `(u, v)` lexicographic order — the graph is
///    always connected and still metric.
pub fn graph_from_points(pts: &[(f64, f64)], radius: f64) -> Graph {
    let n = pts.len();
    let mut g = Graph::new(n);
    if n == 0 {
        return g;
    }
    let cell = radius_cell(pts, radius);
    let cells = bucket_points(pts, cell);
    let mut uf = UnionFind::new(n);
    let mut nbrs: Vec<(NodeId, Weight)> = Vec::new();
    for u in 0..n {
        let (x, y) = pts[u];
        let (cx, cy) = ((x / cell).floor() as i64, (y / cell).floor() as i64);
        nbrs.clear();
        // Saturated keys (subnormal `cell` sizes overflow the i64 cast)
        // can alias several of the 9 neighbor offsets to one cell; dedup
        // so aliased cells are scanned once, never inserting duplicate
        // parallel edges.
        let mut keys: Vec<(i64, i64)> = Vec::with_capacity(9);
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                keys.push((cx.saturating_add(dx), cy.saturating_add(dy)));
            }
        }
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let Some(members) = cells.get(&key) else {
                continue;
            };
            for &v in members {
                if v > u {
                    let d = geo_dist(pts[u], pts[v]);
                    if d <= radius {
                        nbrs.push((v, geo_weight(d)));
                    }
                }
            }
        }
        nbrs.sort_unstable();
        for &(v, w) in &nbrs {
            g.add_edge(u, v, w).expect("valid edge");
            uf.union(u, v);
        }
    }
    for (u, v, d) in grid_stitch(pts, radius, &mut uf) {
        g.add_edge(u, v, geo_weight(d)).expect("valid edge");
    }
    g
}

/// The retained `O(n²)` all-pairs reference for [`graph_from_points`]:
/// same canonical output (see there), built the obvious slow way — an
/// all-pairs radius loop plus Kruskal over all cross-component pairs
/// under the `(d, u, v)` order. Kept as the oracle for the
/// grid-bucketing equivalence property tests and for small explicit
/// point sets where clarity beats speed.
pub fn graph_from_points_reference(pts: &[(f64, f64)], radius: f64) -> Graph {
    let n = pts.len();
    let mut g = Graph::new(n);
    let mut uf = UnionFind::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = geo_dist(pts[u], pts[v]);
            if d <= radius {
                g.add_edge(u, v, geo_weight(d)).expect("valid edge");
                uf.union(u, v);
            }
        }
    }
    if uf.components() > 1 {
        let mut pairs: Vec<(f64, NodeId, NodeId)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if !uf.connected(u, v) {
                    pairs.push((geo_dist(pts[u], pts[v]), u, v));
                }
            }
        }
        pairs.sort_by(stitch_cmp);
        let mut bridges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for (d, u, v) in pairs {
            if uf.union(u, v) {
                bridges.push((u, v, d));
            }
        }
        bridges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        for (u, v, d) in bridges {
            g.add_edge(u, v, geo_weight(d)).expect("valid edge");
        }
    }
    g
}

/// Cells of the Chebyshev ring at distance `k` around `(cx, cy)`.
fn ring_cells(cx: i64, cy: i64, k: i64) -> Vec<(i64, i64)> {
    if k == 0 {
        return vec![(cx, cy)];
    }
    let mut out = Vec::with_capacity(8 * k as usize);
    for x in (cx - k)..=(cx + k) {
        out.push((x, cy - k));
        out.push((x, cy + k));
    }
    for y in (cy - k + 1)..=(cy + k - 1) {
        out.push((cx - k, y));
        out.push((cx + k, y));
    }
    out
}

/// Cell-aware Borůvka stitching: computes the unique MST of the
/// component contraction (inter-component edge order `(d, u, v)`, see
/// [`graph_from_points`]) without touching all `O(n²)` pairs. Each
/// round, every component except the largest finds its minimum outgoing
/// edge by expanding-ring nearest-foreign-neighbor searches over a
/// density-adapted grid; by the cut property under a strict total order
/// every selected edge belongs to the unique contraction MST, and the
/// component count at least halves per round. Returns the stitch edges
/// as `(u, v, d)` with `u < v`, sorted by `(u, v)` — the canonical
/// insertion order.
fn grid_stitch(pts: &[(f64, f64)], radius: f64, uf: &mut UnionFind) -> Vec<(NodeId, NodeId, f64)> {
    let n = pts.len();
    if uf.components() <= 1 {
        return Vec::new();
    }
    // Foreign neighbors are always farther than `radius` apart (closer
    // pairs share a component), so the stitch grid can be coarser than
    // the radius grid: aim for O(1) points per cell.
    let mut s = point_span(pts) / (n as f64).sqrt();
    if radius.is_finite() && radius > s {
        s = radius;
    }
    if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !s.is_finite() {
        s = 1.0;
    }
    let cells = bucket_points(pts, s);
    let key_of = |p: (f64, f64)| ((p.0 / s).floor() as i64, (p.1 / s).floor() as i64);
    // Ring searches never need to leave the occupied bounding box.
    let max_ring = {
        let xs: Vec<i64> = cells.keys().map(|&(x, _)| x).collect();
        let ys: Vec<i64> = cells.keys().map(|&(_, y)| y).collect();
        let span_x = xs.iter().max().unwrap() - xs.iter().min().unwrap();
        let span_y = ys.iter().max().unwrap() - ys.iter().min().unwrap();
        span_x.max(span_y) + 1
    };

    let mut bridges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    while uf.components() > 1 {
        // Group vertices by component; the largest component stays
        // passive (its edge will be chosen by a neighbor), which keeps
        // giant-component interior points from running expensive
        // searches.
        let mut groups: std::collections::HashMap<usize, Vec<NodeId>> =
            std::collections::HashMap::new();
        for v in 0..n {
            let r = uf.find(v);
            groups.entry(r).or_default().push(v);
        }
        let giant = *groups
            .iter()
            .map(|(r, members)| (members.len(), std::cmp::Reverse(members[0]), r))
            .max()
            .expect("at least two components")
            .2;
        let mut roots: Vec<usize> = groups.keys().copied().filter(|&r| r != giant).collect();
        roots.sort_unstable();

        // Minimum outgoing edge per active component under (d, u, v).
        let mut best: std::collections::HashMap<usize, (f64, NodeId, NodeId)> =
            std::collections::HashMap::new();
        for &root in &roots {
            for &u in &groups[&root] {
                let (cx, cy) = key_of(pts[u]);
                let mut k = 0i64;
                loop {
                    let bound = best.get(&root).map(|b| b.0).unwrap_or(f64::INFINITY);
                    // Any point in a ring-k cell is at Euclidean
                    // distance >= (k-1)*s from u.
                    if k > max_ring || (k - 1) as f64 * s > bound {
                        break;
                    }
                    for (x, y) in ring_cells(cx, cy, k) {
                        let Some(members) = cells.get(&(x, y)) else {
                            continue;
                        };
                        for &p in members {
                            if uf.find(p) == root {
                                continue;
                            }
                            let cand = (geo_dist(pts[u], pts[p]), u.min(p), u.max(p));
                            let better = best
                                .get(&root)
                                .map(|b| stitch_cmp(&cand, b) == std::cmp::Ordering::Less)
                                .unwrap_or(true);
                            if better {
                                best.insert(root, cand);
                            }
                        }
                    }
                    k += 1;
                }
            }
        }
        let mut chosen: Vec<(f64, NodeId, NodeId)> = best.into_values().collect();
        chosen.sort_by(stitch_cmp);
        for (d, u, v) in chosen {
            // Two components can only pick the same edge (their shared
            // cut minimum); a failed union is that duplicate, not a
            // conflict.
            if uf.union(u, v) {
                bridges.push((u, v, d));
            }
        }
    }
    bridges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    bridges
}

/// `rows x cols` grid with uniform random weights in `[1, max_w]`.
pub fn grid(rows: usize, cols: usize, max_w: Weight, seed: u64) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let mut r = rng(seed);
    let n = rows * cols;
    let idx = |i: usize, j: usize| i * cols + j;
    let mut g = Graph::new(n);
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                g.add_edge(idx(i, j), idx(i, j + 1), r.gen_range(1..=max_w))
                    .expect("valid");
            }
            if i + 1 < rows {
                g.add_edge(idx(i, j), idx(i + 1, j), r.gen_range(1..=max_w))
                    .expect("valid");
            }
        }
    }
    g
}

/// Path graph `0 - 1 - ... - (n-1)` with the given constant weight.
pub fn path(n: usize, w: Weight) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v, w).expect("valid");
    }
    g
}

/// Cycle graph with the given constant weight.
pub fn cycle(n: usize, w: Weight) -> Graph {
    let mut g = path(n, w);
    if n >= 3 {
        g.add_edge(n - 1, 0, w).expect("valid");
    }
    g
}

/// Star graph: vertex 0 connected to all others with weights `1..=max_w`.
pub fn star(n: usize, max_w: Weight, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v, r.gen_range(1..=max_w)).expect("valid");
    }
    g
}

/// Complete graph with uniform random weights — the densest stress case.
pub fn complete(n: usize, max_w: Weight, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, r.gen_range(1..=max_w)).expect("valid");
        }
    }
    g
}

/// A "caterpillar with heavy legs": a light path spine plus heavy leaf
/// edges. Exercises the SLT tradeoff (the MST is the spine + legs, the
/// SPT wants direct heavy edges).
pub fn caterpillar(spine: usize, legs_per_node: usize, seed: u64) -> Graph {
    assert!(spine >= 1);
    let mut r = rng(seed);
    let n = spine + spine * legs_per_node;
    let mut g = Graph::new(n);
    for v in 1..spine {
        g.add_edge(v - 1, v, r.gen_range(1..=4)).expect("valid");
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs_per_node {
            g.add_edge(s, next, r.gen_range(50..=100)).expect("valid");
            next += 1;
        }
    }
    g
}

/// Root-anchored SLT-tradeoff instance ("comb"): a unit-weight spine
/// `0 - 1 - … - (n-1)` plus direct shortcuts `(0, v)` of weight
/// `max(1, v/t)`. The MST is the light spine (root stretch ≈ `t`), the
/// shortest-path tree is the heavy star (stretch 1, weight ≈ `n²/2t`),
/// and shallow-light trees interpolate between them — the tension
/// Theorem 1 resolves.
pub fn comb(n: usize, t: Weight) -> Graph {
    assert!(n >= 2 && t >= 1);
    let mut g = path(n, 1);
    for v in 2..n {
        g.add_edge(0, v, (v as Weight / t).max(1))
            .expect("valid shortcut");
    }
    g
}

/// The named workload families used across the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// [`erdos_renyi`] with p = 8/n.
    ErdosRenyi,
    /// [`random_geometric`] with radius chosen for average degree ≈ 8.
    Geometric,
    /// [`tree_plus_chords`] with n/2 chords.
    TreeChords,
    /// [`grid`] (⌈√n⌉ × ⌈√n⌉).
    Grid,
}

impl Family {
    /// All families, for sweeps.
    pub const ALL: [Family; 4] = [
        Family::ErdosRenyi,
        Family::Geometric,
        Family::TreeChords,
        Family::Grid,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Family::ErdosRenyi => "erdos-renyi",
            Family::Geometric => "geometric",
            Family::TreeChords => "tree+chords",
            Family::Grid => "grid",
        }
    }

    /// Instantiates the family at size ≈ `n` with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        match self {
            Family::ErdosRenyi => erdos_renyi(n, (8.0 / n as f64).min(1.0), 100, seed),
            Family::Geometric => {
                // radius for expected degree ~8: pi r^2 n = 8
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
                random_geometric(n, r, seed)
            }
            Family::TreeChords => tree_plus_chords(n, n / 2, 100, seed),
            Family::Grid => {
                let side = (n as f64).sqrt().ceil() as usize;
                grid(side, side, 100, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_is_connected_and_sized() {
        for seed in 0..5 {
            let g = erdos_renyi(50, 0.05, 100, seed);
            assert_eq!(g.n(), 50);
            assert!(g.is_connected());
            assert!(g.m() >= 49);
            assert!(g.min_weight() >= 1 && g.max_weight() <= 100);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi(30, 0.2, 50, 42);
        let b = erdos_renyi(30, 0.2, 50, 42);
        assert_eq!(a.edges(), b.edges());
        let c = random_geometric(30, 0.3, 42);
        let d = random_geometric(30, 0.3, 42);
        assert_eq!(c.edges(), d.edges());
    }

    #[test]
    fn geometric_is_connected_even_with_tiny_radius() {
        let g = random_geometric(40, 0.01, 9);
        assert!(g.is_connected());
    }

    #[test]
    fn geometric_weights_are_metric_ish() {
        // triangle inequality holds for the underlying points, so direct
        // edges are never longer than 2-hop detours by more than rounding.
        let g = random_geometric(25, 0.5, 3);
        let ap = crate::dijkstra::all_pairs(&g);
        for e in g.edges() {
            assert!(e.w <= ap[e.u][e.v] + 2, "edge heavier than shortest path");
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4, 10, 1);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(g.is_connected());
    }

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path(5, 2).m(), 4);
        assert_eq!(cycle(5, 2).m(), 5);
        assert_eq!(star(5, 9, 0).m(), 4);
        assert_eq!(complete(5, 9, 0).m(), 10);
        assert!(cycle(2, 1).is_connected());
    }

    #[test]
    fn gnp_sparse_is_connected_deterministic_and_sized() {
        for seed in 0..5 {
            let n = 400;
            let g = gnp_sparse(n, 8.0 / n as f64, 100, seed);
            assert!(g.is_connected());
            let extra = g.m() - (n - 1);
            // expected extra edges ≈ p · (C(n,2) − (n−1)) ≈ 1590;
            // loose 3σ-ish band to keep the test robust
            assert!(
                (1100..2100).contains(&extra),
                "seed {seed}: {extra} extra edges is implausible for p=8/n"
            );
        }
        let a = gnp_sparse(300, 0.03, 50, 9);
        let b = gnp_sparse(300, 0.03, 50, 9);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn gnp_sparse_extremes() {
        let g = gnp_sparse(40, 0.0, 10, 1);
        assert_eq!(g.m(), 39, "p=0 keeps only the spanning tree");
        let g = gnp_sparse(12, 1.0, 10, 1);
        assert_eq!(g.m(), 12 * 11 / 2, "p=1 yields the complete graph");
        let g = gnp_sparse(1, 0.5, 10, 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn tree_plus_chords_counts() {
        let g = tree_plus_chords(40, 10, 100, 8);
        assert!(g.is_connected());
        assert_eq!(g.m(), 39 + 10);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 2, 1);
        assert_eq!(g.n(), 15);
        assert!(g.is_connected());
    }

    #[test]
    fn comb_has_cheap_shortcuts_and_light_spine() {
        let g = comb(64, 8);
        let m = crate::mst::kruskal(&g);
        assert_eq!(m.weight, 63, "MST must be the unit spine");
        // direct shortcut is the shortest route for far vertices
        let d = crate::dijkstra::shortest_paths(&g, 0);
        assert_eq!(d.dist[63], 63 / 8);
        // the SPT is much heavier than the MST
        let spt_w: u64 = (0..g.n())
            .filter_map(|v| d.parent[v].map(|(_, e)| g.edge(e).w))
            .sum();
        assert!(
            spt_w > 3 * m.weight,
            "SPT weight {spt_w} vs MST {}",
            m.weight
        );
    }

    #[test]
    fn families_generate_connected() {
        for f in Family::ALL {
            let g = f.generate(64, 5);
            assert!(g.is_connected(), "family {} disconnected", f.name());
            assert!(g.n() >= 64);
        }
    }
}
