//! Exact shortest paths — the sequential oracle every distributed
//! algorithm in this repository is validated against.

use crate::{EdgeId, Graph, NodeId, Weight, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source vertex.
    pub src: NodeId,
    /// `dist[v]` = d_G(src, v), or [`INF`] if unreachable.
    pub dist: Vec<Weight>,
    /// `parent[v]` = `(predecessor, edge id)` on a shortest path, `None`
    /// for the source and unreachable vertices.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// Reconstructs the shortest path from the source to `v` as a list of
    /// edge ids, or `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<EdgeId>> {
        if self.dist[v] >= INF {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur] {
            path.push(e);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra from `src` over the whole graph.
pub fn shortest_paths(g: &Graph, src: NodeId) -> ShortestPaths {
    bounded_shortest_paths(g, src, INF)
}

/// Dijkstra from `src`, exploring only vertices within distance `bound`
/// (inclusive). Vertices farther than `bound` report [`INF`].
pub fn bounded_shortest_paths(g: &Graph, src: NodeId, bound: Weight) -> ShortestPaths {
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w, e) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v] && nd <= bound {
                dist[v] = nd;
                parent[v] = Some((u, e));
                heap.push(Reverse((nd, v)));
            }
        }
    }
    ShortestPaths { src, dist, parent }
}

/// Exact distance between a single pair.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Weight {
    shortest_paths(g, u).dist[v]
}

/// All-pairs shortest distances by repeated Dijkstra. Quadratic memory;
/// intended for test-sized instances only.
pub fn all_pairs(g: &Graph) -> Vec<Vec<Weight>> {
    (0..g.n()).map(|s| shortest_paths(g, s).dist).collect()
}

/// The weighted eccentricity of `src`.
pub fn eccentricity(g: &Graph, src: NodeId) -> Weight {
    shortest_paths(g, src)
        .dist
        .into_iter()
        .filter(|&d| d < INF)
        .max()
        .unwrap_or(0)
}

/// An upper bound on the weighted diameter via double-sweep: eccentricity
/// of the farthest vertex from vertex 0, times one.
pub fn weighted_diameter_approx(g: &Graph) -> Weight {
    if g.n() == 0 {
        return 0;
    }
    let first = shortest_paths(g, 0);
    let far = (0..g.n())
        .filter(|&v| first.dist[v] < INF)
        .max_by_key(|&v| first.dist[v])
        .unwrap_or(0);
    eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -1- 2 -3- 3, 0 -10- 3
        Graph::from_edges(4, [(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 3), (0, 3, 10)]).unwrap()
    }

    #[test]
    fn distances_match_hand_computation() {
        let g = diamond();
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.dist, vec![0, 1, 1, 2]);
    }

    #[test]
    fn path_reconstruction_is_shortest() {
        let g = diamond();
        let sp = shortest_paths(&g, 0);
        let path = sp.path_to(3).unwrap();
        let total: Weight = path.iter().map(|&e| g.edge(e).w).sum();
        assert_eq!(total, 2);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = Graph::from_edges(3, [(0, 1, 5)]).unwrap();
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.dist[2], INF);
        assert!(sp.path_to(2).is_none());
    }

    #[test]
    fn bounded_search_stops_at_bound() {
        let g = Graph::from_edges(4, [(0, 1, 2), (1, 2, 2), (2, 3, 2)]).unwrap();
        let sp = bounded_shortest_paths(&g, 0, 4);
        assert_eq!(sp.dist, vec![0, 2, 4, INF]);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = diamond();
        let ap = all_pairs(&g);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(ap[u][v], ap[v][u]);
            }
        }
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = Graph::from_edges(3, [(0, 1, 3), (1, 2, 4)]).unwrap();
        assert_eq!(eccentricity(&g, 0), 7);
        assert_eq!(weighted_diameter_approx(&g), 7);
    }
}
