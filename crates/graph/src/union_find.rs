//! Disjoint-set forest with union by rank and path compression.

/// A classic union–find structure over `0..n`.
///
/// Used by Kruskal's MST, by the distributed-MST verifier, and by the
/// lower-bound reduction's connectivity certificate.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 2);
        assert!(!uf.union(1, 0));
        assert!(uf.union(0, 3));
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(1, 2));
    }

    #[test]
    fn find_is_idempotent() {
        let mut uf = UnionFind::new(8);
        for i in 1..8 {
            uf.union(0, i);
        }
        let r = uf.find(7);
        assert_eq!(uf.find(7), r);
        assert_eq!(uf.find(0), r);
    }
}
