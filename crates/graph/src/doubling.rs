//! Doubling-dimension estimation (§1.3, §7).
//!
//! A graph has doubling dimension `ddim` if every ball `B(v, 2r)` can be
//! covered by `2^ddim` balls of radius `r`. We estimate the dimension by
//! greedy covering over sampled centers and radii — an upper bound on the
//! optimal cover size, hence an upper estimate of the dimension, which is
//! the conservative direction for the lightness bounds of Section 7.

use crate::{dijkstra, Graph, NodeId, Weight, INF};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Greedily covers `points` (each within distance `2r` of some center)
/// with balls of radius `r`, using distances from `dist_from`, and
/// returns the number of balls used.
fn greedy_cover(g: &Graph, points: &[NodeId], r: Weight) -> usize {
    let mut uncovered: Vec<NodeId> = points.to_vec();
    let mut balls = 0;
    while let Some(&c) = uncovered.first() {
        balls += 1;
        let d = dijkstra::bounded_shortest_paths(g, c, r);
        uncovered.retain(|&p| d.dist[p] > r);
    }
    balls
}

/// Estimates the doubling dimension by sampling `samples` (center,
/// radius) pairs and greedily covering each `B(v, 2r)` with `r`-balls.
///
/// Returns `log2` of the largest cover size observed — an empirical upper
/// estimate of `ddim`. Deterministic in `seed`.
pub fn estimate_doubling_dimension(g: &Graph, samples: usize, seed: u64) -> f64 {
    if g.n() <= 1 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let max_r = dijkstra::weighted_diameter_approx(g).max(2);
    let mut worst = 1usize;
    for _ in 0..samples {
        let v = rng.gen_range(0..g.n());
        // Sample radius log-uniformly in [1, max_r / 2].
        let hi = (max_r / 2).max(2);
        let exp = rng.gen_range(0.0..=(hi as f64).ln());
        let r = (exp.exp() as Weight).clamp(1, hi);
        let dist = dijkstra::bounded_shortest_paths(g, v, 2 * r);
        let ball: Vec<NodeId> = (0..g.n()).filter(|&u| dist.dist[u] <= 2 * r).collect();
        if ball.len() > 1 {
            worst = worst.max(greedy_cover(g, &ball, r));
        }
    }
    (worst as f64).log2()
}

/// Number of `r`-balls the greedy cover uses for `B(center, big_r)` —
/// deterministic, used by tests and the doubling experiments.
pub fn cover_number(g: &Graph, center: NodeId, big_r: Weight, r: Weight) -> usize {
    let d = dijkstra::bounded_shortest_paths(g, center, big_r);
    let ball: Vec<NodeId> = (0..g.n()).filter(|&u| d.dist[u] <= big_r).collect();
    greedy_cover(g, &ball, r)
}

/// The packing lemma check (Lemma 6): in a ball of radius `R`, any
/// `r`-separated set has at most `(2R/r)^O(ddim)` points. Returns the
/// size of a maximal `r`-separated subset of `B(center, R)` (greedy).
pub fn packing_number(g: &Graph, center: NodeId, big_r: Weight, r: Weight) -> usize {
    let d = dijkstra::bounded_shortest_paths(g, center, big_r);
    let mut ball: Vec<NodeId> = (0..g.n()).filter(|&u| d.dist[u] <= big_r).collect();
    let mut chosen: Vec<NodeId> = Vec::new();
    while let Some(&c) = ball.first() {
        chosen.push(c);
        let dc = dijkstra::bounded_shortest_paths(g, c, r);
        ball.retain(|&p| dc.dist[p] > r && dc.dist[p] != 0);
        ball.retain(|&p| p != c);
    }
    // chosen is r-separated by construction
    debug_assert!(is_separated(g, &chosen, r));
    chosen.len()
}

/// Whether `points` are pairwise more than `r` apart in `g`.
pub fn is_separated(g: &Graph, points: &[NodeId], r: Weight) -> bool {
    for &p in points {
        let d = dijkstra::bounded_shortest_paths(g, p, r);
        for &q in points {
            if p != q && d.dist[q] <= r && d.dist[q] < INF {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_graph_has_dimension_about_one() {
        let g = generators::path(128, 3);
        let d = estimate_doubling_dimension(&g, 20, 1);
        assert!(d <= 2.5, "path dimension estimate too high: {d}");
    }

    #[test]
    fn geometric_graph_has_bounded_dimension() {
        let g = generators::random_geometric(128, 0.2, 2);
        let d = estimate_doubling_dimension(&g, 15, 3);
        assert!(d <= 6.0, "plane dimension estimate too high: {d}");
    }

    #[test]
    fn star_graph_has_high_cover_number() {
        // A star with weight-2 edges: B(center, 2) contains all 64 leaves,
        // and 1-balls are singletons, so the cover number is n — the star
        // has doubling dimension ~log n at this scale.
        let mut g = Graph::new(65);
        for v in 1..65 {
            g.add_edge(0, v, 2).unwrap();
        }
        assert_eq!(cover_number(&g, 0, 2, 1), 65);
        // and the plane-like grid stays small at a comparable scale
        let grid = generators::grid(8, 8, 1, 0);
        assert!(cover_number(&grid, 0, 4, 2) <= 16);
    }

    #[test]
    fn packing_respects_separation() {
        let g = generators::random_geometric(60, 0.3, 5);
        let k = packing_number(&g, 0, 500_000, 100_000);
        assert!(k >= 1);
    }

    #[test]
    fn separated_check() {
        let g = generators::path(10, 5);
        assert!(is_separated(&g, &[0, 3, 6], 10)); // dist 15 apart
        assert!(!is_separated(&g, &[0, 1], 10)); // dist 5
    }
}
