//! The core undirected weighted graph type.

use std::fmt;

/// Index of a vertex; vertices are always `0..n`.
pub type NodeId = usize;
/// Index of an edge in [`Graph::edges`].
pub type EdgeId = usize;
/// Integer edge weight. The paper (§2) assumes the minimum weight is 1 and
/// the maximum is poly(n); integer weights keep every computation exact.
pub type Weight = u64;

/// "Infinite" distance sentinel. Chosen far below `u64::MAX` so that
/// `INF + w` never wraps for any legal weight.
pub const INF: Weight = u64::MAX / 4;

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Weight, `>= 1`.
    pub w: Weight,
}

impl Edge {
    /// The endpoint opposite to `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint");
            self.u
        }
    }
}

/// Errors produced when building a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex `>= n`.
    VertexOutOfRange { vertex: NodeId, n: usize },
    /// Self loops are not allowed.
    SelfLoop { vertex: NodeId },
    /// Weights must be at least 1 (§2 of the paper).
    ZeroWeight { u: NodeId, v: NodeId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop at vertex {vertex}"),
            GraphError::ZeroWeight { u, v } => {
                write!(f, "edge ({u}, {v}) has zero weight; weights must be >= 1")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected weighted graph with vertices `0..n`.
///
/// Edges are stored once in an edge list; the adjacency structure keeps,
/// per vertex, `(neighbor, weight, edge id)` triples. Parallel edges are
/// permitted (the generators never produce them, but nothing below relies
/// on their absence).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<(NodeId, Weight, EdgeId)>>,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    /// Returns an error if any edge is a self loop, references a vertex
    /// `>= n`, or has weight 0.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, Weight)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Adds an undirected edge and returns its [`EdgeId`].
    ///
    /// # Errors
    /// See [`Graph::from_edges`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<EdgeId, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        let id = self.edges.len();
        self.edges.push(Edge { u, v, w });
        self.adj[u].push((v, w, id));
        self.adj[v].push((u, w, id));
        Ok(id)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    /// Panics if `id >= self.m()`.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id]
    }

    /// `(neighbor, weight, edge id)` triples incident on `u`.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, Weight, EdgeId)] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u].len()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Largest edge weight (0 for an edgeless graph).
    pub fn max_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.w).max().unwrap_or(0)
    }

    /// Smallest edge weight (0 for an edgeless graph).
    pub fn min_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.w).min().unwrap_or(0)
    }

    /// Whether the graph is connected (vacuously true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let order = self.bfs_order(0);
        order.len() == self.n
    }

    /// Vertices in BFS order from `src` (unweighted), restricted to the
    /// connected component of `src`.
    pub fn bfs_order(&self, src: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        let mut order = Vec::new();
        seen[src] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, _, _) in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }

    /// Unweighted (hop) eccentricity of `src`: the largest number of hops
    /// to any reachable vertex.
    pub fn hop_eccentricity(&self, src: NodeId) -> usize {
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        let mut ecc = 0;
        while let Some(u) = queue.pop_front() {
            ecc = ecc.max(dist[u]);
            for &(v, _, _) in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        ecc
    }

    /// Exact hop diameter (the `D` of the paper): diameter of the graph
    /// ignoring weights. Runs a BFS from every vertex, so use it only on
    /// test-sized graphs; the simulator uses a 2-approximation internally.
    pub fn hop_diameter(&self) -> usize {
        (0..self.n)
            .map(|v| self.hop_eccentricity(v))
            .max()
            .unwrap_or(0)
    }

    /// 2-approximate hop diameter via a single BFS (eccentricity of vertex
    /// 0); always within a factor 2 of the true hop diameter on connected
    /// graphs.
    pub fn hop_diameter_approx(&self) -> usize {
        self.hop_eccentricity(0)
    }

    /// The subgraph on the same vertex set containing exactly the given
    /// edges (by id).
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn edge_subgraph(&self, edge_ids: impl IntoIterator<Item = EdgeId>) -> Graph {
        let mut g = Graph::new(self.n);
        for id in edge_ids {
            let e = self.edges[id];
            g.add_edge(e.u, e.v, e.w)
                .expect("edge copied from a valid graph");
        }
        g
    }

    /// Deduplicates a set of edge ids and builds the subgraph containing
    /// them. Convenience for spanner construction, where the same edge is
    /// often selected by several phases.
    pub fn edge_subgraph_dedup(&self, edge_ids: impl IntoIterator<Item = EdgeId>) -> Graph {
        let mut chosen = vec![false; self.edges.len()];
        for id in edge_ids {
            chosen[id] = true;
        }
        self.edge_subgraph((0..self.edges.len()).filter(|&i| chosen[i]))
    }

    /// Like [`Graph::edge_subgraph_dedup`], but also returns the map
    /// from the subgraph's edge ids back to this graph's ids, so results
    /// computed on the subgraph can be reported in original ids.
    pub fn edge_subgraph_with_map(
        &self,
        edge_ids: impl IntoIterator<Item = EdgeId>,
    ) -> (Graph, Vec<EdgeId>) {
        let mut chosen = vec![false; self.edges.len()];
        for id in edge_ids {
            chosen[id] = true;
        }
        let ids: Vec<EdgeId> = (0..self.edges.len()).filter(|&i| chosen[i]).collect();
        (self.edge_subgraph(ids.iter().copied()), ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 1), (1, 2, 2), (0, 2, 10)]).unwrap()
    }

    #[test]
    fn builds_and_reports_sizes() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.total_weight(), 13);
        assert_eq!(g.max_weight(), 10);
        assert_eq!(g.min_weight(), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 5, 1),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        );
    }

    #[test]
    fn rejects_zero_weight() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 1, 0),
            Err(GraphError::ZeroWeight { u: 0, v: 1 })
        );
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for e in g.edges() {
            assert!(g
                .neighbors(e.u)
                .iter()
                .any(|&(v, w, _)| v == e.v && w == e.w));
            assert!(g
                .neighbors(e.v)
                .iter()
                .any(|&(v, w, _)| v == e.u && w == e.w));
        }
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let g = Graph::from_edges(4, [(0, 1, 1)]).unwrap();
        assert!(!g.is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(Graph::new(0).is_connected());
    }

    #[test]
    fn hop_diameter_of_path() {
        let g = Graph::from_edges(5, [(0, 1, 9), (1, 2, 9), (2, 3, 9), (3, 4, 9)]).unwrap();
        assert_eq!(g.hop_diameter(), 4);
        assert!(g.hop_diameter_approx() >= 2);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge { u: 3, v: 7, w: 1 };
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge { u: 3, v: 7, w: 1 };
        let _ = e.other(5);
    }

    #[test]
    fn subgraph_selects_edges() {
        let g = triangle();
        let h = g.edge_subgraph([0, 2]);
        assert_eq!(h.m(), 2);
        assert_eq!(h.total_weight(), 11);
        let h2 = g.edge_subgraph_dedup([0, 0, 2, 2]);
        assert_eq!(h2.m(), 2);
    }
}
