//! Property tests: the grid-bucketed geometric generator is
//! *identical* — same edge list, same insertion order, same weights —
//! to the retained `O(n²)` all-pairs reference.
//!
//! This is the test wall behind the scenario runner's uncapped
//! geometric sweeps: `generators::graph_from_points` may only replace
//! the reference because every output it produces is bit-identical to
//! `generators::graph_from_points_reference`, including the degenerate
//! regimes (coincident points, radius `0+ε`, all-isolated point sets)
//! where MST tie-breaking would otherwise diverge.

use lightgraph::generators::{graph_from_points, graph_from_points_reference};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random point sets across the interesting radius regimes.
///
/// `kind` picks a regime:
/// 0 — radius 0 (only coincident pairs are edges),
/// 1 — radius 0+ε (all-isolated: stitching does all the work),
/// 2 — sub-critical radius (many components),
/// 3 — the degree-≈8 radius the scenario runner uses,
/// 4 — super-critical radius (one giant component),
/// 5 — radius ≥ diameter (complete graph).
fn arb_points() -> impl Strategy<Value = (Vec<(f64, f64)>, f64)> {
    (0usize..=500, 0u64..10_000, 0u64..6, 0usize..4).prop_map(|(n, seed, kind, dup_kind)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        // Coincident points: duplicate a random prefix-sized sample so
        // zero-distance pairs (and their weight floor of 1) are common.
        if dup_kind > 0 && n >= 2 {
            let dups = n / (dup_kind * 4);
            for _ in 0..dups {
                let src = rng.gen_range(0..pts.len());
                let dst = rng.gen_range(0..pts.len());
                pts[dst] = pts[src];
            }
        }
        let radius = match kind {
            0 => 0.0,
            1 => 1e-12,
            2 => 0.02,
            3 => (8.0 / (std::f64::consts::PI * n.max(1) as f64)).sqrt(),
            4 => 0.3,
            _ => 2.0,
        };
        (pts, radius)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_grid_generator_identical_to_reference((pts, radius) in arb_points()) {
        let fast = graph_from_points(&pts, radius);
        let slow = graph_from_points_reference(&pts, radius);
        prop_assert_eq!(fast.n(), slow.n());
        prop_assert_eq!(fast.m(), slow.m(), "edge count (radius={})", radius);
        // Edge-by-edge equality covers the edge *set*, the canonical
        // insertion order (edge ids), and every weight.
        prop_assert_eq!(fast.edges(), slow.edges(), "edge list (radius={})", radius);
        if pts.len() > 1 {
            prop_assert!(fast.is_connected(), "stitching must connect the graph");
        }
    }
}

#[test]
fn empty_and_singleton_point_sets() {
    assert_eq!(graph_from_points(&[], 0.5).n(), 0);
    assert_eq!(graph_from_points(&[(0.3, 0.7)], 0.5).m(), 0);
    assert_eq!(graph_from_points_reference(&[(0.3, 0.7)], 0.5).m(), 0);
}

#[test]
fn all_coincident_points_radius_zero() {
    // Every pair is at distance 0 ≤ 0: a complete graph of weight-1
    // edges, identically ordered in both implementations.
    let pts = vec![(0.25, 0.5); 9];
    let fast = graph_from_points(&pts, 0.0);
    let slow = graph_from_points_reference(&pts, 0.0);
    assert_eq!(fast.m(), 9 * 8 / 2);
    assert_eq!(fast.edges(), slow.edges());
    assert!(fast.edges().iter().all(|e| e.w == 1));
}

#[test]
fn all_isolated_points_are_stitched_identically() {
    // Radius far below the minimum pairwise distance: the radius pass
    // contributes nothing and the entire graph is the stitch MST.
    let mut rng = StdRng::seed_from_u64(99);
    let pts: Vec<(f64, f64)> = (0..120)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let fast = graph_from_points(&pts, 1e-9);
    let slow = graph_from_points_reference(&pts, 1e-9);
    assert_eq!(fast.m(), pts.len() - 1, "stitch MST is a spanning tree");
    assert_eq!(fast.edges(), slow.edges());
    assert!(fast.is_connected());
}

#[test]
fn subnormal_radius_saturates_cell_keys_without_duplicate_edges() {
    // With cell size 1e-300 the x/cell division overflows the i64 cast
    // and every cell key saturates to i64::MAX, aliasing the whole 3×3
    // neighborhood to one cell; the scan must still visit each cell
    // once or coincident pairs turn into duplicate parallel edges.
    let pts = vec![(0.5, 0.5), (0.5, 0.5), (0.9, 0.1)];
    let fast = graph_from_points(&pts, 1e-300);
    let slow = graph_from_points_reference(&pts, 1e-300);
    assert_eq!(fast.m(), 2, "one coincident pair + one stitch edge");
    assert_eq!(fast.edges(), slow.edges());
}

#[test]
fn negative_and_infinite_radius_degenerate_cases() {
    let pts = vec![(0.1, 0.1), (0.9, 0.9), (0.5, 0.2)];
    // Negative radius: no radius edges at all, stitch MST only.
    let fast = graph_from_points(&pts, -1.0);
    let slow = graph_from_points_reference(&pts, -1.0);
    assert_eq!(fast.edges(), slow.edges());
    assert_eq!(fast.m(), 2);
    // Infinite radius: the complete graph.
    let fast = graph_from_points(&pts, f64::INFINITY);
    let slow = graph_from_points_reference(&pts, f64::INFINITY);
    assert_eq!(fast.edges(), slow.edges());
    assert_eq!(fast.m(), 3);
}
