//! Arena-slab queue storage shared by both engines
//! (determinism-contract clauses 3 and 7 in [`crate::exec`]).
//!
//! Like [`for_each_active`](crate::exec::for_each_active) for the
//! activation contract, this is the *single* implementation of the
//! per-directed-edge FIFO and combining semantics: the sequential
//! [`Simulator`](crate::Simulator) and the parallel engine both stage
//! and pop through [`Slab`], so the merge rules (which message absorbs
//! which, and where the survivor sits in the FIFO) cannot drift between
//! the oracle and an engine.
//!
//! # Layout
//!
//! One [`Slab`] is a pool of linked-list entries with an intrusive free
//! list; each directed edge owns a tiny [`EdgeQueue`] header (head,
//! tail, length — slot indices into the owning slab) stored in a flat
//! per-graph array. Staging a message writes it into a recycled slot
//! and links it at the edge's tail; popping unlinks the head and
//! returns the slot to the free list. After warm-up no path allocates:
//! the entry pool, the free list, and the combiner index all reach a
//! high-water capacity and are **recycled across rounds and runs**
//! (quiescence guarantees every queue drains, so a finished run leaves
//! the whole pool on the free list).
//!
//! The parallel engine keys one slab per *(sender shard, receiver
//! shard)* cell, mirroring its `touched` buckets: the compute phase
//! writes only rows of the cell matrix (every staged edge has its
//! sender in the claiming shard) and the deliver phase drains only
//! columns, with a barrier in between, so cell access is disjoint
//! across workers without locks — and fused blocks touch only diagonal
//! cells. The sequential simulator is the one-shard special case: a
//! single slab for all edges.
//!
//! # Combining (clause 7)
//!
//! A staged message carrying `Some(key)` merges into the queued,
//! undelivered message with the same key on the same edge, if one
//! exists — the merged message **keeps the earlier message's queue
//! position**, so it is delivered no later than the message it grew
//! from. At most one entry per `(directed edge, key)` is ever queued.
//! Messages staged with `None` (no combiner, or an uncombinable
//! payload) always append.
//!
//! The key→slot lookup is a `SlotMap`: one open-addressed table per
//! slab, keyed by `(directed edge, key)` with a multiplicative
//! (Fibonacci) hash — one multiply and a masked probe instead of the
//! per-message SipHash of a `std` `HashMap`. The map stores the slab
//! slot index directly, so a combiner hit is an index load plus an
//! in-place write; the relaxation codec's key is already packed in
//! word 0 ([`crate::relax`]), making the whole combine path
//! branch-cheap. The table is allocated lazily, so unkeyed programs pay
//! nothing, and is maintained with backward-shift deletion so a
//! long-lived slab never degrades the way tombstone schemes do.

use crate::message::Word;

/// Sentinel slot index: "no entry".
const NIL: u32 = u32::MAX;

/// Per-directed-edge FIFO header: slot indices into the owning
/// [`Slab`]. 12 bytes, stored in a flat per-graph array indexed by
/// directed edge id — the only per-edge state of the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeQueue {
    head: u32,
    tail: u32,
    len: u32,
}

impl EdgeQueue {
    /// An empty queue header.
    pub const EMPTY: EdgeQueue = EdgeQueue {
        head: NIL,
        tail: NIL,
        len: 0,
    };

    /// Number of queued (undelivered) entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no entry is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for EdgeQueue {
    fn default() -> Self {
        EdgeQueue::EMPTY
    }
}

/// One pooled queue entry. `item` is `None` exactly while the slot sits
/// on the free list (`next` then links the free list instead of a
/// FIFO).
#[derive(Debug)]
struct Entry<T> {
    next: u32,
    key: Option<Word>,
    item: Option<T>,
}

/// An arena of FIFO entries with per-key in-place merging, serving many
/// directed-edge queues. The payload `T` is engine-specific (the
/// simulator queues messages with validation baggage, the parallel
/// engine queues plain messages); the slot, free-list, and key
/// bookkeeping are shared. See the module docs for the layout and the
/// recycling discipline.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the intrusive free list threaded through `entries`.
    free: u32,
    /// `(directed edge, key)` → occupied slot, for clause-7 merges.
    index: SlotMap,
}

impl<T> Slab<T> {
    /// Creates an empty slab (no allocation until the first staging).
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: NIL,
            index: SlotMap::new(),
        }
    }

    /// Number of live (queued, undelivered) entries across all queues
    /// served by this slab.
    pub fn live(&self) -> usize {
        let mut free = 0usize;
        let mut slot = self.free;
        while slot != NIL {
            free += 1;
            slot = self.entries[slot as usize].next;
        }
        self.entries.len() - free
    }

    /// Stages one message on queue `q` of directed edge `d`. If `key`
    /// is `Some` and an entry with the same key is queued on `d`,
    /// `merge(queued, item)` updates that entry in place (keeping its
    /// queue position) and `true` is returned — the staged message was
    /// absorbed. Otherwise the item is appended and `false` is
    /// returned.
    ///
    /// `d` must be the id whose header `q` is — the pairing is the
    /// caller's (both engines key headers by directed edge id).
    pub fn stage(
        &mut self,
        q: &mut EdgeQueue,
        d: usize,
        key: Option<Word>,
        item: T,
        merge: impl FnOnce(&mut T, T),
    ) -> bool {
        if let Some(k) = key {
            if let Some(slot) = self.index.get(d, k) {
                let entry = &mut self.entries[slot as usize];
                debug_assert_eq!(entry.key, Some(k), "index points at a same-key entry");
                merge(entry.item.as_mut().expect("indexed slot is occupied"), item);
                return true;
            }
        }
        let slot = if self.free != NIL {
            let slot = self.free;
            let entry = &mut self.entries[slot as usize];
            self.free = entry.next;
            entry.next = NIL;
            entry.key = key;
            entry.item = Some(item);
            slot
        } else {
            assert!(self.entries.len() < NIL as usize, "slab full");
            let slot = self.entries.len() as u32;
            self.entries.push(Entry {
                next: NIL,
                key,
                item: Some(item),
            });
            slot
        };
        if let Some(k) = key {
            self.index.insert(d, k, slot);
        }
        if q.len == 0 {
            q.head = slot;
        } else {
            self.entries[q.tail as usize].next = slot;
        }
        q.tail = slot;
        q.len += 1;
        false
    }

    /// Pops the front entry of queue `q` (directed edge `d`), releasing
    /// its key for future stagings and its slot to the free list.
    pub fn pop(&mut self, q: &mut EdgeQueue, d: usize) -> Option<(Option<Word>, T)> {
        if q.len == 0 {
            return None;
        }
        let slot = q.head;
        let entry = &mut self.entries[slot as usize];
        let key = entry.key;
        let item = entry.item.take().expect("queued slot is occupied");
        q.head = entry.next;
        q.len -= 1;
        if q.len == 0 {
            q.head = NIL;
            q.tail = NIL;
        }
        entry.next = self.free;
        self.free = slot;
        if let Some(k) = key {
            self.index.remove(d, k);
        }
        Some((key, item))
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

/// Open-addressed `(directed edge, key) → slot` map with linear probing
/// and backward-shift deletion. Parallel arrays: `edges[i]` holds
/// `directed id + 1` (0 = empty), `keys[i]` the combining key,
/// `slots[i]` the slab slot. Capacity is a power of two; the probe
/// start comes from the top bits of a Fibonacci-multiplicative hash.
#[derive(Debug, Default)]
struct SlotMap {
    edges: Vec<u64>,
    keys: Vec<Word>,
    slots: Vec<u32>,
    len: usize,
    /// `capacity - 1`; tables start empty (`mask == 0` with no storage)
    /// so unkeyed programs never allocate the map.
    mask: usize,
}

impl SlotMap {
    const INITIAL_CAPACITY: usize = 16;

    fn new() -> Self {
        SlotMap::default()
    }

    /// Fibonacci-multiplicative hash of the pair: the key occupies the
    /// full word (the relax codec packs tag+key there), the directed id
    /// is rotated into the opposite half before the multiply mixes
    /// both into the top bits.
    fn hash(d: usize, k: Word) -> u64 {
        (k ^ (d as u64).rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn home(&self, d: usize, k: Word) -> usize {
        // Top bits of the product are the best mixed; shift them down
        // to the table width.
        let cap = self.mask + 1;
        (Self::hash(d, k) >> (64 - cap.trailing_zeros())) as usize
    }

    fn get(&self, d: usize, k: Word) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let tag = d as u64 + 1;
        let mut i = self.home(d, k);
        loop {
            match self.edges[i] {
                0 => return None,
                e if e == tag && self.keys[i] == k => return Some(self.slots[i]),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    fn insert(&mut self, d: usize, k: Word, slot: u32) {
        if self.edges.is_empty() || (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        let tag = d as u64 + 1;
        let mut i = self.home(d, k);
        while self.edges[i] != 0 {
            debug_assert!(
                !(self.edges[i] == tag && self.keys[i] == k),
                "at most one queued entry per (edge, key)"
            );
            i = (i + 1) & self.mask;
        }
        self.edges[i] = tag;
        self.keys[i] = k;
        self.slots[i] = slot;
        self.len += 1;
    }

    /// Removes the entry for `(d, k)` (which must exist), compacting
    /// the probe chain by backward shift so lookups never cross stale
    /// slots — no tombstones, so delete-heavy workloads (every pop of a
    /// keyed message) cannot degrade the table.
    fn remove(&mut self, d: usize, k: Word) {
        let tag = d as u64 + 1;
        let mut i = self.home(d, k);
        while !(self.edges[i] == tag && self.keys[i] == k) {
            debug_assert_ne!(self.edges[i], 0, "removed key must be present");
            i = (i + 1) & self.mask;
        }
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            if self.edges[j] == 0 {
                break;
            }
            let home = self.home(self.edges[j] as usize - 1, self.keys[j]);
            // Entry at `j` may fill the hole at `i` iff its home does
            // not lie in the cyclic interval `(i, j]` — i.e. the probe
            // chain from `home` still reaches it at `i`.
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.edges[i] = self.edges[j];
                self.keys[i] = self.keys[j];
                self.slots[i] = self.slots[j];
                i = j;
            }
        }
        self.edges[i] = 0;
    }

    fn grow(&mut self) {
        let cap = if self.edges.is_empty() {
            Self::INITIAL_CAPACITY
        } else {
            (self.mask + 1) * 2
        };
        let old_edges = std::mem::replace(&mut self.edges, vec![0; cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![0; cap]);
        self.mask = cap - 1;
        self.len = 0;
        for i in 0..old_edges.len() {
            if old_edges[i] != 0 {
                self.insert(old_edges[i] as usize - 1, old_keys[i], old_slots[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convenience for the semantics tests: one slab, one queue.
    fn one() -> (Slab<u64>, EdgeQueue) {
        (Slab::new(), EdgeQueue::EMPTY)
    }

    #[test]
    fn unkeyed_entries_form_a_plain_fifo() {
        let (mut s, mut q) = one();
        assert!(!s.stage(&mut q, 0, None, 1, |_, _| unreachable!()));
        assert!(!s.stage(&mut q, 0, None, 2, |_, _| unreachable!()));
        assert_eq!(q.len(), 2);
        assert_eq!(s.pop(&mut q, 0), Some((None, 1)));
        assert_eq!(s.pop(&mut q, 0), Some((None, 2)));
        assert_eq!(s.pop(&mut q, 0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_key_merges_in_place_keeping_position() {
        let (mut s, mut q) = one();
        assert!(!s.stage(&mut q, 0, Some(7), 10, |_, _| unreachable!()));
        assert!(!s.stage(&mut q, 0, None, 99, |_, _| unreachable!()));
        assert!(s.stage(&mut q, 0, Some(7), 3, |old, new| *old = (*old).min(new)));
        assert_eq!(q.len(), 2, "merge adds no entry");
        assert_eq!(s.pop(&mut q, 0), Some((Some(7), 3)), "survivor kept slot 0");
        assert_eq!(s.pop(&mut q, 0), Some((None, 99)));
    }

    #[test]
    fn popped_key_can_be_staged_again() {
        let (mut s, mut q) = one();
        s.stage(&mut q, 0, Some(1), 5, |_, _| unreachable!());
        assert_eq!(s.pop(&mut q, 0), Some((Some(1), 5)));
        assert!(
            !s.stage(&mut q, 0, Some(1), 6, |_, _| unreachable!()),
            "fresh entry"
        );
        assert!(s.stage(&mut q, 0, Some(1), 2, |old, new| *old = (*old).min(new)));
        assert_eq!(s.pop(&mut q, 0), Some((Some(1), 2)));
    }

    #[test]
    fn distinct_keys_never_merge() {
        let (mut s, mut q) = one();
        assert!(!s.stage(&mut q, 0, Some(1), 5, |_, _| unreachable!()));
        assert!(!s.stage(&mut q, 0, Some(2), 6, |_, _| unreachable!()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn merge_targets_mid_queue_slots_after_pops() {
        let (mut s, mut q) = one();
        s.stage(&mut q, 0, None, 0, |_, _| unreachable!());
        s.stage(&mut q, 0, None, 1, |_, _| unreachable!());
        s.stage(&mut q, 0, Some(9), 40, |_, _| unreachable!());
        s.pop(&mut q, 0);
        // Key 9 now sits mid-queue; the merge must find its slot.
        assert!(s.stage(&mut q, 0, Some(9), 30, |old, new| *old = (*old).min(new)));
        assert_eq!(s.pop(&mut q, 0), Some((None, 1)));
        assert_eq!(s.pop(&mut q, 0), Some((Some(9), 30)));
    }

    #[test]
    fn same_key_on_distinct_edges_never_merges() {
        // The combiner index is keyed by (edge, key), not key alone.
        let mut s = Slab::new();
        let mut q0 = EdgeQueue::EMPTY;
        let mut q1 = EdgeQueue::EMPTY;
        assert!(!s.stage(&mut q0, 0, Some(7), 10u64, |_, _| unreachable!()));
        assert!(!s.stage(&mut q1, 1, Some(7), 20, |_, _| unreachable!()));
        assert_eq!(s.pop(&mut q0, 0), Some((Some(7), 10)));
        assert_eq!(s.pop(&mut q1, 1), Some((Some(7), 20)));
    }

    #[test]
    fn slots_are_recycled_across_drains() {
        // Fill, drain, refill: the second wave reuses the first wave's
        // slots, so the entry pool never grows past the high-water mark.
        let (mut s, mut q) = one();
        for wave in 0..5u64 {
            for i in 0..100 {
                s.stage(&mut q, 0, Some(i), wave * 1000 + i, |_, _| unreachable!());
            }
            for _ in 0..100 {
                s.pop(&mut q, 0).unwrap();
            }
            assert_eq!(s.live(), 0, "wave {wave} drained");
            assert_eq!(s.entries.len(), 100, "pool stays at the high-water mark");
        }
    }

    /// Differential test of the whole slab (FIFO + combiner index +
    /// free list) against a straightforward model, over a seeded random
    /// schedule of stagings and pops across many edges.
    #[test]
    fn random_schedule_matches_a_naive_model() {
        use std::collections::VecDeque;
        const EDGES: usize = 13;
        let mut s: Slab<u64> = Slab::new();
        let mut qs = [EdgeQueue::EMPTY; EDGES];
        let mut model: Vec<VecDeque<(Option<Word>, u64)>> = vec![VecDeque::new(); EDGES];
        let mut rng: u64 = 0x5eed;
        let mut next = || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        for step in 0..20_000u64 {
            let d = (next() % EDGES as u64) as usize;
            if next() % 3 == 0 {
                let got = s.pop(&mut qs[d], d);
                assert_eq!(got, model[d].pop_front(), "pop on edge {d} step {step}");
            } else {
                let key = (next() % 2 == 0).then(|| next() % 8);
                let item = next();
                let merged = s.stage(&mut qs[d], d, key, item, |old, new| *old = (*old).min(new));
                let model_slot =
                    key.and_then(|k| model[d].iter_mut().find(|(mk, _)| *mk == Some(k)));
                match model_slot {
                    Some((_, old)) => {
                        assert!(merged, "stage on edge {d} step {step}");
                        *old = (*old).min(item);
                    }
                    None => {
                        assert!(!merged, "stage on edge {d} step {step}");
                        model[d].push_back((key, item));
                    }
                }
            }
            assert_eq!(qs[d].len(), model[d].len(), "len on edge {d} step {step}");
        }
        let live: usize = model.iter().map(VecDeque::len).sum();
        assert_eq!(s.live(), live, "live count matches the model at the end");
    }
}
