//! The [`Executor`] abstraction: anything that can run a CONGEST
//! program to quiescence.
//!
//! Two engines implement it today — the sequential
//! [`Simulator`](crate::Simulator) in this crate, and the parallel
//! sharded engine in `crates/engine`. The trait pins down the exact
//! observable contract an engine must honor so that algorithms (and the
//! paper's round-count experiments) behave identically on both:
//!
//! **Determinism contract.**
//! 1. `make` is invoked once per node, in increasing node order, on the
//!    calling thread.
//! 2. [`Program::init`] effects are observed as if nodes ran in
//!    increasing node order.
//! 3. Per directed edge, messages form a FIFO: they are delivered in
//!    the order they were staged, at most [`Executor::cap`] per round.
//! 4. A round's inbox at node `v` is ordered by edge id (and, per edge,
//!    direction `u→v` before `v→u`), exactly matching the sequential
//!    simulator's delivery loop.
//! 5. Execution stops at the first round boundary where all queues are
//!    empty and every program is quiescent; [`RunStats`] count the
//!    delivered messages and executed rounds.
//!
//! Any engine honoring 1–5 produces bit-identical per-node outputs and
//! `RunStats` for deterministic programs, which is what lets the
//! parallel engine stand in for the simulator in experiments that
//! report the paper's round counts.
//!
//! **What conformance tests must check.** The contract is verified by
//! the property suite in `crates/engine/tests/equivalence.rs`, whose
//! helpers follow three conventions any new conformance test should
//! copy:
//!
//! * run the algorithm fresh on each executor under test (one
//!   [`Simulator`](crate::Simulator), then one engine per thread
//!   count), so cumulative [`Executor::total`] counters are directly
//!   comparable;
//! * assert *full* per-node outputs field-by-field, not summary
//!   metrics — clauses 1–4 promise bit-identical state, so any drift
//!   is a violation rather than tolerable noise;
//! * assert `RunStats` equality for the algorithm's own stats **and**
//!   the executor totals, because clause 5 covers every intermediate
//!   `run` invocation of a composite algorithm, not just the last.

use crate::program::{Program, RunStats};
use lightgraph::{Graph, NodeId};

/// An engine that runs one [`Program`] instance per node until global
/// quiescence, with cumulative round accounting across runs.
pub trait Executor {
    /// The same engine kind instantiated over another (sub)graph,
    /// inheriting configuration such as the bandwidth cap. Lets
    /// composite algorithms recurse into subgraphs without committing
    /// to a concrete engine.
    type Sub<'h>: Executor;

    /// Creates a fresh executor of the same kind over `graph`,
    /// inheriting this executor's configuration (cap, round guard) but
    /// with zeroed statistics.
    fn sub<'h>(&self, graph: &'h Graph) -> Self::Sub<'h>;

    /// The underlying graph.
    fn graph(&self) -> &Graph;

    /// Messages allowed per directed edge per round.
    fn cap(&self) -> usize;

    /// Sets the bandwidth cap (`>= 1`).
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    fn set_cap(&mut self, cap: usize);

    /// Sets the livelock guard.
    fn set_max_rounds(&mut self, max_rounds: u64);

    /// Cumulative statistics over every run so far.
    fn total(&self) -> RunStats;

    /// Resets the cumulative statistics.
    fn reset_total(&mut self);

    /// Adds externally-accounted rounds to the cumulative counter.
    fn charge(&mut self, stats: RunStats);

    /// Runs one program instance per node until global quiescence; see
    /// the module docs for the determinism contract.
    ///
    /// `P: Send` (and `Output: Send`) because a conforming engine may
    /// execute node shards on worker threads; `make` itself always runs
    /// on the calling thread, in node order.
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard.
    fn run<P, F>(&mut self, make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P;
}
