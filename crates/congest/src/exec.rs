//! The [`Executor`] abstraction: anything that can run a CONGEST
//! program to quiescence.
//!
//! Two engines implement it today — the sequential
//! [`Simulator`](crate::Simulator) in this crate, and the parallel
//! sharded engine in `crates/engine`. The trait pins down the exact
//! observable contract an engine must honor so that algorithms (and the
//! paper's round-count experiments) behave identically on both:
//!
//! **Determinism contract.** Each clause names its conformance tests
//! inline (`prop_*` live in `crates/engine/tests/equivalence.rs`,
//! plain names in the unit-test module of the file that owns the
//! mechanism); a change that touches a clause must keep its named
//! tests green, and a new engine must pass all of them.
//! 1. `make` is invoked once per node, in increasing node order, on the
//!    calling thread. *Conformance:* every `prop_*_identical` case
//!    (node-keyed outputs would drift under any other order);
//!    `prop_bellman_ford_identical` is the simplest.
//! 2. [`Program::init`] effects are observed as if nodes ran in
//!    increasing node order. *Conformance:*
//!    `matches_simulator_on_flood` (`crates/engine/src/engine.rs`).
//! 3. Per directed edge, messages form a FIFO: they are delivered in
//!    the order they were staged, at most [`Executor::cap`] per round.
//!    *Conformance:* `per_edge_fifo_order_is_preserved` and
//!    `bandwidth_cap_pipelines_like_simulator`
//!    (`crates/engine/src/engine.rs`); `prop_cap_ablation_identical`
//!    sweeps caps.
//! 4. A round's inbox at node `v` is ordered by edge id (and, per edge,
//!    direction `u→v` before `v→u`), exactly matching the sequential
//!    simulator's delivery loop. *Conformance:*
//!    `prop_broadcast_and_convergecast_identical` (collectives are
//!    inbox-order-sensitive).
//! 5. **Activation scheduling.** A node is *active* in round `r` iff
//!    its round-`r` inbox is non-empty, or it reported
//!    `is_quiescent() == false` at its previous activation boundary
//!    (after [`Program::init`], or after its most recent
//!    [`Program::round`] call). Engines invoke `round` exactly for the
//!    active nodes and may skip inactive nodes entirely; messages are
//!    still delivered on every edge with queued traffic regardless of
//!    receiver activity (delivery is what *makes* a receiver active).
//!    [`Program::is_quiescent`] is evaluated once per activation
//!    boundary and cached in between — programs must be
//!    activation-correct (see [`Program`]) for skipping to be
//!    unobservable. Both engines schedule through the shared
//!    [`for_each_active`] merge. *Conformance:*
//!    `prop_reactivation_identical` and
//!    `prop_mst_frontier_totals_identical`; the activation validator
//!    itself is pinned by
//!    `validator_catches_programs_that_rely_on_dense_ticks`
//!    (`crates/congest/src/sim.rs`).
//! 6. Execution stops at the first round boundary where all queues are
//!    empty and every program is quiescent (equivalently: the charged
//!    edge set and the non-quiescent carryover set are both empty);
//!    [`RunStats`] count the sent messages and executed rounds.
//!    *Conformance:* `prop_slt_identical` (composite totals across
//!    phases) and `non_quiescent_program_keeps_running`
//!    (`crates/congest/src/sim.rs`).
//! 7. **Per-edge message combining.** When the program declares a
//!    combiner ([`Program::combine_key`]), a staged message whose key
//!    matches a message still queued on the same directed edge is
//!    merged into it *at enqueue time* via [`Program::combine`]; the
//!    merged message keeps the earlier message's queue position, so at
//!    most one message per `(directed edge, key)` is ever queued.
//!    Engines must route every staging through the shared arena slab
//!    ([`Slab::stage`](crate::slab::Slab::stage)) so the merge
//!    semantics cannot drift — and so queue storage stays
//!    allocation-free in steady state (see [`crate::slab`]).
//!    Absorbed messages count in `RunStats::messages` (they were
//!    sent) and in `RunStats::messages_combined` (they were not
//!    delivered individually); the physical delivery volume is
//!    `RunStats::messages_delivered()`. Combining is a deterministic
//!    function of the execution, exactly like the clause-5 active sets:
//!    a combine-correct program (see [`Program`]) produces the same
//!    outputs, `RunStats`, and [`FrontierStats`] on every conforming
//!    engine — and where the bandwidth cap was the round bottleneck,
//!    the shortened backlog legitimately shortens the run.
//!    *Conformance:* `prop_combining_preserves_relaxation_outputs`,
//!    `prop_combining_with_slack_cap_is_invisible`, and
//!    `combiner_matches_simulator_bit_for_bit`
//!    (`crates/engine/src/engine.rs`); the merge/position semantics
//!    themselves are pinned by the unit tests in
//!    `crates/congest/src/slab.rs`.
//! 8. **Observer neutrality.** Observability (the [`crate::obs`]
//!    subsystem: phase spans, per-node [`NodeStats`] recording, trace
//!    sinks, metrics reports) is read-only: with observers attached or
//!    detached, per-node outputs, [`RunStats`], [`FrontierStats`], and
//!    every other deterministic quantity (per-round series, per-node
//!    histograms, span-tree statistics) are bit-identical — across
//!    runs *and* across conforming engines. Only wall-clock fields
//!    (`wall_ms`-like values, `*_ns` phase times) may differ between
//!    runs; anything pinning observability output must scrub exactly
//!    those. Observers must never deliver, reorder, combine, or drop a
//!    message, and never change the active set. *Conformance:*
//!    `prop_node_histograms_sum_and_observers_are_neutral`.
//! 9. **Round fusion.** An engine may execute several *consecutive*
//!    rounds of a node region without globally synchronizing between
//!    them, provided the fused window is closed: every node that can
//!    become active during the window, and every directed edge that
//!    can carry or receive traffic during it, lies strictly inside one
//!    region. The eligibility predicate the parallel engine uses is
//!    distance-based: if every potentially-active node (charged-edge
//!    receivers plus the non-quiescent carryover) sits at intra-region
//!    BFS distance `>= K` from the nearest node with an edge leaving
//!    the region, then activity cannot reach a region boundary for `K`
//!    rounds — senders stay non-boundary, so no cross-region message
//!    is ever staged, and each region's `K` rounds are an independent
//!    function of its own state. Fusion is schedule-invisible because
//!    clauses 3–5 are schedule-independent: per-edge FIFO order equals
//!    the unique sender's staged order, inbox order is the ascending
//!    directed-id walk, and the active set is a function of deliveries
//!    and quiescence reports — none of which observe *when* another
//!    region's round ran. Per-round accounting (clauses 6–8, including
//!    per-round histogram/trace series) must still be reported as if
//!    the global barriers had happened; only barrier wall-time may
//!    legitimately drop to zero for fused rounds. The predicate is
//!    documented in `crates/engine/src/csr.rs` (`ShardLocality`).
//!    *Conformance:* `prop_fusion_heavy_chains_identical`
//!    (fusion-heavy chain workloads) and
//!    `fused_blocks_keep_report_series_exact`
//!    (`crates/engine/src/engine.rs`).
//!
//! **Plan reuse note.** Clauses 1–9 make every observable quantity a
//! pure function of `(graph, programs, cap)` — plus, for a stressed
//! engine, the stress seed that picked the shard plan. Nothing
//! observable depends on *when or how often* an engine derived its
//! internal structure from those inputs. Engines may therefore cache
//! and share anything computed from the input topology alone — CSR
//! indices, routing maps, shard bounds and locality distances, pooled
//! queue arenas and dense-table storage — across runs, sub-runs, and
//! sub-executors, with no invalidation protocol beyond keying by the
//! inputs themselves (topology fingerprint; `(threads, stress seed)`
//! for shard plans, so stress cuts key the cache rather than bypass
//! it). Reused storage must be *logically* reset: epoch-stamped lazy
//! resets are fine, reading a previous run's bytes is not. The session
//! layer lives in [`crate::plan`] (shared cache) and
//! `crates/engine/src/plan.rs` (engine structures). *Conformance:*
//! `crates/engine/tests/plan_cache.rs` (warm vs cold bit-identity
//! across threads and stress seeds) and the composite-workload case of
//! `crates/engine/tests/alloc_guard.rs` (zero per-sub-run setup
//! allocations once warmed).
//!
//! Any engine honoring 1–9 produces bit-identical per-node outputs and
//! `RunStats` for deterministic programs, which is what lets the
//! parallel engine stand in for the simulator in experiments that
//! report the paper's round counts. Because the active set of clause 5
//! is itself determined by delivered edges and quiescence reports, the
//! [`FrontierStats`] bookkeeping (invocation counts, peak active set)
//! is engine-identical too. The Simulator in this crate is the
//! semantics oracle for frontier scheduling: its per-round active set
//! is built from the edges that delivered this round plus the
//! non-quiescent carryover, with inbox assembly still in ascending
//! directed-edge-id order.
//!
//! **What conformance tests must check.** The contract is verified by
//! the property suite in `crates/engine/tests/equivalence.rs`, whose
//! helpers follow three conventions any new conformance test should
//! copy:
//!
//! * run the algorithm fresh on each executor under test (one
//!   [`Simulator`](crate::Simulator), then one engine per thread
//!   count), so cumulative [`Executor::total`] counters are directly
//!   comparable;
//! * assert *full* per-node outputs field-by-field, not summary
//!   metrics — clauses 1–4 promise bit-identical state, so any drift
//!   is a violation rather than tolerable noise;
//! * assert `RunStats` equality for the algorithm's own stats **and**
//!   the executor totals, because clause 5 covers every intermediate
//!   `run` invocation of a composite algorithm, not just the last.

use crate::obs::NodeStats;
use crate::program::{FrontierStats, Program, RunStats};
use lightgraph::{Graph, NodeId};

/// An engine that runs one [`Program`] instance per node until global
/// quiescence, with cumulative round accounting across runs.
pub trait Executor {
    /// The same engine kind instantiated over another (sub)graph,
    /// inheriting configuration such as the bandwidth cap. Lets
    /// composite algorithms recurse into subgraphs without committing
    /// to a concrete engine.
    type Sub<'h>: Executor;

    /// Creates a fresh executor of the same kind over `graph`,
    /// inheriting this executor's configuration (cap, round guard) but
    /// with zeroed statistics.
    fn sub<'h>(&self, graph: &'h Graph) -> Self::Sub<'h>;

    /// The underlying graph.
    fn graph(&self) -> &Graph;

    /// Messages allowed per directed edge per round.
    fn cap(&self) -> usize;

    /// Sets the bandwidth cap (`>= 1`).
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    fn set_cap(&mut self, cap: usize);

    /// Sets the livelock guard.
    fn set_max_rounds(&mut self, max_rounds: u64);

    /// Cumulative statistics over every run so far.
    fn total(&self) -> RunStats;

    /// Cumulative frontier-scheduling statistics over every run so far
    /// (invocations add up; the peak is the max over runs). Like
    /// [`Executor::total`], engine-identical for conforming engines.
    fn frontier_total(&self) -> FrontierStats;

    /// Resets the cumulative statistics (both [`Executor::total`] and
    /// [`Executor::frontier_total`]).
    fn reset_total(&mut self);

    /// Adds externally-accounted rounds to the cumulative counter.
    ///
    /// Purely analytical charges (rounds a phase *would* cost, with no
    /// programs actually run) have no frontier counterpart — the mean
    /// active width is defined over executed rounds only. When the
    /// charge accounts a real sub-executor run, also call
    /// [`Executor::charge_frontier`] with the sub-executor's
    /// [`Executor::frontier_total`], so invocation accounting stays
    /// consistent with the charged rounds.
    fn charge(&mut self, stats: RunStats);

    /// Adds a sub-executor's frontier counters to the cumulative
    /// [`Executor::frontier_total`] (invocations add, peaks max).
    fn charge_frontier(&mut self, frontier: FrontierStats);

    /// Enables or disables per-node accounting ([`NodeStats`]):
    /// per-node sent/delivered/invocation counters, accumulated across
    /// runs like [`Executor::total`]. Off by default (the `3 × n`
    /// counter vector is allocated lazily, on enable); enabling resets
    /// the counters. Recording is inherited by [`Executor::sub`]
    /// executors (which count in their own node-id space) and is
    /// observer-neutral (contract clause 8). The default
    /// implementation ignores the request — engines without per-node
    /// accounting simply report `None` from [`Executor::node_stats`].
    fn set_record_node_stats(&mut self, record: bool) {
        let _ = record;
    }

    /// The per-node counters accumulated so far, when
    /// [`Executor::set_record_node_stats`] is enabled.
    fn node_stats(&self) -> Option<&NodeStats> {
        None
    }

    /// Adds a sub-executor's per-node counters into this executor's
    /// [`Executor::node_stats`] — the per-node analogue of
    /// [`Executor::charge`], for sub-runs whose graph shares this
    /// executor's node-id space (e.g. a subgraph over the same
    /// vertices). A no-op while recording is off.
    fn charge_node_stats(&mut self, other: &NodeStats) {
        let _ = other;
    }

    /// Runs one program instance per node until global quiescence; see
    /// the module docs for the determinism contract.
    ///
    /// `P: Send` (and `Output: Send`) because a conforming engine may
    /// execute node shards on worker threads; `make` itself always runs
    /// on the calling thread, in node order.
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard.
    fn run<P, F>(&mut self, make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P;
}

/// Iterates one round's active set (contract clause 5): the ascending
/// `delivered` list of `(node, payload)` pairs — nodes that received a
/// message this round, with an engine-specific payload such as the
/// node's inbox location — merged with the ascending non-quiescent
/// `carry` list, invoking `f` exactly once per active node in
/// ascending node order. Carried-over nodes that received nothing get
/// `empty` as payload.
///
/// This is the single shared implementation of the active-set
/// semantics; the sequential [`Simulator`](crate::Simulator) and the
/// parallel engine both schedule through it, so the clause-5 merge
/// cannot drift between the oracle and an engine.
pub fn for_each_active<T: Copy>(
    delivered: &[(NodeId, T)],
    carry: &[NodeId],
    empty: T,
    mut f: impl FnMut(NodeId, T),
) {
    let (mut i, mut j) = (0, 0);
    loop {
        match (delivered.get(i), carry.get(j)) {
            (Some(&(d, t)), Some(&c)) => {
                if d <= c {
                    i += 1;
                    if d == c {
                        j += 1;
                    }
                    f(d, t);
                } else {
                    j += 1;
                    f(c, empty);
                }
            }
            (Some(&(d, t)), None) => {
                i += 1;
                f(d, t);
            }
            (None, Some(&c)) => {
                j += 1;
                f(c, empty);
            }
            (None, None) => break,
        }
    }
}
