//! A synchronous CONGEST-model simulator.
//!
//! The CONGEST model (§2 of *Distributed Construction of Light Networks*)
//! has one processor per vertex of a weighted graph `G`; computation
//! proceeds in synchronous rounds, and in each round every vertex may send
//! one message of `O(log n)` bits over each incident edge. Local
//! computation is free; the complexity measure is the number of rounds.
//!
//! This simulator realizes the model faithfully and *charges congestion
//! automatically*: every directed edge carries a FIFO queue, and at most
//! [`Simulator::cap`] messages per round cross each directed edge. A
//! program that enqueues `K` messages on one edge therefore pays
//! `⌈K/cap⌉` rounds — exactly the pipelining arguments the paper uses
//! (e.g. Lemma 1).
//!
//! * [`Program`] / [`Ctx`] — the engine-agnostic per-node state machine
//!   interface ([`program`]),
//! * [`Executor`] — the contract any execution engine must honor
//!   ([`exec`]); implemented here by the sequential [`Simulator`] and in
//!   `crates/engine` by the parallel sharded engine,
//! * [`Simulator`] — the sequential reference engine: per-run round loop
//!   and cumulative round accounting across the phases of a composite
//!   algorithm,
//! * [`tree`] — distributed BFS-tree construction (the tree τ of §2),
//! * [`collective`] — Lemma-1 collectives: pipelined broadcast to all
//!   vertices in `O(M + D)` rounds and combining convergecast
//!   (watermark-merged, `O(M + D)` rounds),
//! * [`slab`] — the shared arena-slab queue storage behind every
//!   per-edge FIFO and the opt-in clause-7 message combiner
//!   ([`Program::combine_key`]): pooled slots recycled across rounds
//!   and runs (zero allocations per message in steady state), with
//!   precomputed key→slot indices so relaxation-style programs collapse
//!   co-queued superseded updates at the cost of an index load,
//! * [`relax`] — the keyed-relaxation subsystem: canonical wire codec,
//!   the lawful componentwise-min combiner, dense per-key distance
//!   tables, and the ready-made [`relax::RelaxProgram`] every
//!   Bellman–Ford-style program in the workspace is built on,
//! * [`obs`] — observability: phase spans ([`obs::span`]), per-node
//!   message histograms ([`NodeStats`]), the shared [`RunReport`], and
//!   the JSONL profiling [`TraceSink`] — all observer-neutral
//!   (contract clause 8): attached or detached, deterministic outputs
//!   and statistics are bit-identical.
//!
//! # Example: flooding a token
//!
//! ```
//! use congest::{Simulator, Program, Ctx, Message};
//! use lightgraph::generators;
//!
//! struct Flood { have: bool }
//! impl Program for Flood {
//!     type Output = bool;
//!     fn init(&mut self, ctx: &mut Ctx<'_>) {
//!         if ctx.node() == 0 {
//!             self.have = true;
//!             ctx.send_all(Message::words(&[7]));
//!         }
//!     }
//!     fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(usize, Message)]) {
//!         if !self.have && !inbox.is_empty() {
//!             self.have = true;
//!             ctx.send_all(Message::words(&[7]));
//!         }
//!     }
//!     fn finish(self) -> bool { self.have }
//! }
//!
//! let g = generators::erdos_renyi(32, 0.2, 10, 1);
//! let mut sim = Simulator::new(&g);
//! let (out, stats) = sim.run(|_, _| Flood { have: false });
//! assert!(out.iter().all(|&b| b));
//! assert!(stats.rounds >= 1);
//! ```

pub mod collective;
pub mod exec;
pub mod obs;
pub mod plan;
pub mod program;
pub mod relax;
pub mod slab;
pub mod tree;

mod message;
mod sim;

pub use exec::{for_each_active, Executor};
pub use message::{pack2, unpack2, Message, Word, WORDS_PER_MESSAGE};
pub use obs::{NodeStats, NodeSummary, RunReport, SharedTraceSink, SpanTree, TraceSink};
pub use program::{Ctx, FrontierStats, Program, RunStats};
pub use sim::Simulator;
