//! Observability: phase spans, per-node message accounting, and
//! profiling sinks — zero-cost when off.
//!
//! Run-level [`RunStats`] totals answer *how much* a composite
//! algorithm cost, but not *where*: which phase spent the message
//! budget, and which nodes carried it. This module adds three
//! independent observers, all governed by the **observer-neutrality
//! clause** (clause 8 of the [`Executor`] contract):
//! attaching or detaching any of them never changes outputs,
//! `RunStats`, [`FrontierStats`](crate::FrontierStats), or any other
//! deterministic quantity.
//!
//! 1. **Phase spans.** A composite algorithm wraps each phase in
//!    [`span`], which charges the phase the *delta* of the executor's
//!    cumulative counters. Spans nest into a deterministic
//!    [`SpanTree`] (wall-clock is carried along but is not part of the
//!    deterministic payload). When no collector is installed
//!    ([`collect_spans`]), `span` is a single thread-local check and
//!    the closure runs untouched.
//! 2. **Per-node histograms.** [`NodeStats`] counts, per node, the
//!    logical messages it sent, the messages delivered to it, and its
//!    `Program::round` invocations. Engines allocate the `3 × n`
//!    vector lazily, only when recording is switched on. The derived
//!    [`NodeSummary`] (`msg_max`, `msg_max_node`, `msg_p50`,
//!    `msg_p99`) is a deterministic function of the run, bit-identical
//!    across conforming engines.
//! 3. **Profiling hooks.** Engines with a [`TraceSink`] attached emit
//!    one [`RoundTrace`] record per round (delivered volume, active
//!    width, and per-phase wall time), buffered and flushed as JSONL.
//!    The per-phase wall breakdown also lands in [`RunReport::wall`]
//!    when metrics recording is on.
//!
//! [`RunReport`] itself lives here (it used to be the engine crate's
//! `EngineReport`) so the sequential [`Simulator`](crate::Simulator)
//! can report the same per-round series as the parallel engine — which
//! is what lets `engine = "both"` scenario sweeps cross-check the
//! series, not just the totals.

use crate::exec::Executor;
use crate::program::RunStats;
use lightgraph::{EdgeId, NodeId};
use std::cell::RefCell;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Phase spans
// ---------------------------------------------------------------------------

/// One named phase of a composite algorithm: the delta of the
/// executor's cumulative counters over the phase, plus nested
/// sub-phases.
///
/// Everything except [`SpanNode::wall_ns`] is deterministic and
/// engine-identical (clause 8); `wall_ns` is machine-dependent, like
/// `wall_ms` in scenario rows, and must be scrubbed wherever span
/// trees are pinned.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Phase name, e.g. `"mst"`.
    pub name: &'static str,
    /// Rounds/messages charged to this phase (children included).
    pub stats: RunStats,
    /// `Program::round` invocations executed during this phase.
    pub invocations: u64,
    /// Scheduler-executed rounds during this phase
    /// (`FrontierStats::rounds` delta — excludes analytical charges).
    pub sched_rounds: u64,
    /// Wall-clock nanoseconds spent in the phase (machine-dependent).
    pub wall_ns: u64,
    /// Nested sub-phases, in execution order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Messages physically delivered during this phase.
    pub fn delivered(&self) -> u64 {
        self.stats.messages_delivered()
    }

    /// Deliveries attributed to named children (children of a span
    /// measured on a *different* executor — e.g. a sub-executor phase —
    /// attribute independently; see [`span`]).
    pub fn child_delivered(&self) -> u64 {
        self.children.iter().map(SpanNode::delivered).sum()
    }
}

/// The spans recorded by one [`collect_spans`] scope, roots in
/// execution order.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// Top-level spans (those opened with no enclosing span).
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// First span named `name`, depth-first.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        fn dfs<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = dfs(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        dfs(&self.roots, name)
    }

    /// Every span with its `/`-joined path (e.g. `"slt/spt/relax"`),
    /// pre-order.
    pub fn flatten(&self) -> Vec<(String, &SpanNode)> {
        fn walk<'a>(prefix: &str, nodes: &'a [SpanNode], out: &mut Vec<(String, &'a SpanNode)>) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.to_owned()
                } else {
                    format!("{prefix}/{name}", name = n.name)
                };
                out.push((path.clone(), n));
                walk(&path, &n.children, out);
            }
        }
        let mut out = Vec::new();
        walk("", &self.roots, &mut out);
        out
    }

    /// Human-readable indented rendering (for `bench --profile`).
    pub fn render(&self) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for n in nodes {
                out.push_str(&format!(
                    "{:indent$}{name}: {rounds} rounds, {delivered} delivered \
                     ({combined} combined), {inv} invocations, {ms:.1} ms\n",
                    "",
                    indent = 2 * depth,
                    name = n.name,
                    rounds = n.stats.rounds,
                    delivered = n.delivered(),
                    combined = n.stats.messages_combined,
                    inv = n.invocations,
                    ms = n.wall_ns as f64 / 1e6,
                ));
                walk(&n.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, 0, &mut out);
        out
    }
}

struct Frame {
    children: Vec<SpanNode>,
}

struct Collector {
    stack: Vec<Frame>,
    roots: Vec<SpanNode>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Whether a [`collect_spans`] scope is active on this thread.
pub fn spans_active() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Runs `f(exec)` as the named phase `name`.
///
/// Without an active collector this is a single thread-local check and
/// a direct call. With one, the span charges
/// `exec.total() − total-before` (and the frontier deltas) to `name`,
/// nesting under the innermost open span on this thread.
///
/// The deltas are measured on the executor *passed in*, so phases of a
/// sub-executor (`exec.sub(...)`) work naturally: wrap the sub-phase
/// around the sub-executor and its span charges the sub-run, while an
/// enclosing span on the parent sees the sub-run only through whatever
/// the algorithm later `charge()`s back.
///
/// # Examples
///
/// Spans record per-phase round/message deltas only inside a
/// [`collect_spans`] scope (and are free, observer-neutral pass-throughs
/// outside one — contract clause 8):
///
/// ```
/// use congest::obs::{collect_spans, span};
/// use congest::tree::build_bfs_tree;
/// use congest::{Executor, Simulator};
/// use lightgraph::generators;
///
/// let g = generators::cycle(6, 1);
/// let mut sim = Simulator::new(&g);
/// let ((bfs, _stats), spans) = collect_spans(|| {
///     span(&mut sim, "bfs", |exec| build_bfs_tree(exec, 0))
/// });
/// assert_eq!(bfs.root, 0);
/// let node = spans.find("bfs").expect("span recorded");
/// assert_eq!(node.stats.rounds, sim.total().rounds);
/// assert!(node.invocations > 0);
/// ```
pub fn span<E: Executor, R>(exec: &mut E, name: &'static str, f: impl FnOnce(&mut E) -> R) -> R {
    if !spans_active() {
        return f(exec);
    }
    let s0 = exec.total();
    let f0 = exec.frontier_total();
    let t0 = Instant::now();
    COLLECTOR.with(|c| {
        c.borrow_mut()
            .as_mut()
            .expect("collector checked active")
            .stack
            .push(Frame {
                children: Vec::new(),
            })
    });
    let r = f(exec);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let s1 = exec.total();
    let f1 = exec.frontier_total();
    COLLECTOR.with(|c| {
        let mut b = c.borrow_mut();
        let col = b.as_mut().expect("collector still active");
        let frame = col.stack.pop().expect("span stack balanced");
        let node = SpanNode {
            name,
            stats: s1.since(s0),
            invocations: f1.invocations - f0.invocations,
            sched_rounds: f1.rounds - f0.rounds,
            wall_ns,
            children: frame.children,
        };
        match col.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => col.roots.push(node),
        }
    });
    r
}

/// Installs a span collector on this thread, runs `f`, and returns its
/// result together with the recorded [`SpanTree`].
///
/// Re-entrant: a nested `collect_spans` shadows the outer collector
/// for its duration (the outer one is restored afterwards, also on
/// panic).
pub fn collect_spans<R>(f: impl FnOnce() -> R) -> (R, SpanTree) {
    struct Restore {
        prev: Option<Collector>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.prev.take();
            COLLECTOR.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = COLLECTOR.with(|c| {
        c.borrow_mut().replace(Collector {
            stack: Vec::new(),
            roots: Vec::new(),
        })
    });
    let _restore = Restore { prev };
    let r = f();
    let tree = COLLECTOR.with(|c| {
        c.borrow_mut()
            .take()
            .map(|col| SpanTree { roots: col.roots })
            .unwrap_or_default()
    });
    (r, tree)
}

// ---------------------------------------------------------------------------
// Per-node accounting
// ---------------------------------------------------------------------------

/// Per-node message and invocation counts, accumulated across every
/// run of the executor that recorded them (lazily allocated — `3 × n`
/// `u64`s exist only while recording is enabled).
///
/// Invariants, per executor, for runs executed *on that executor*
/// (sub-executor work enters only through an explicit
/// [`Executor::charge_node_stats`], which requires the same node-id
/// space): `Σ sent == RunStats::messages`,
/// `Σ delivered == RunStats::messages_delivered()`, and
/// `Σ invocations == FrontierStats::invocations`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Logical messages staged by each node (`Ctx::send` calls,
    /// including ones later absorbed by a combiner).
    pub sent: Vec<u64>,
    /// Messages physically delivered into each node's inbox.
    pub delivered: Vec<u64>,
    /// `Program::round` invocations executed at each node.
    pub invocations: Vec<u64>,
}

impl NodeStats {
    /// Zeroed counters for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        NodeStats {
            sent: vec![0; n],
            delivered: vec![0; n],
            invocations: vec![0; n],
        }
    }

    /// Number of nodes covered.
    pub fn n(&self) -> usize {
        self.sent.len()
    }

    /// Adds another executor's counters node-by-node.
    ///
    /// # Panics
    /// Panics when the node counts differ — per-node counters only
    /// compose within one node-id space.
    pub fn absorb(&mut self, other: &NodeStats) {
        assert_eq!(
            self.n(),
            other.n(),
            "NodeStats::absorb requires the same node-id space"
        );
        for (a, b) in self.sent.iter_mut().zip(&other.sent) {
            *a += b;
        }
        for (a, b) in self.delivered.iter_mut().zip(&other.delivered) {
            *a += b;
        }
        for (a, b) in self.invocations.iter_mut().zip(&other.invocations) {
            *a += b;
        }
    }

    /// Deterministic summary of the per-node message load
    /// (`sent + delivered` per node).
    pub fn summary(&self) -> NodeSummary {
        let mut loads: Vec<u64> = self
            .sent
            .iter()
            .zip(&self.delivered)
            .map(|(&s, &d)| s + d)
            .collect();
        if loads.is_empty() {
            return NodeSummary::default();
        }
        let (mut msg_max, mut msg_max_node) = (loads[0], 0);
        for (v, &l) in loads.iter().enumerate().skip(1) {
            if l > msg_max {
                msg_max = l;
                msg_max_node = v;
            }
        }
        loads.sort_unstable();
        let rank = |q: f64| -> u64 {
            // Nearest-rank percentile over the sorted loads.
            let idx = ((q * loads.len() as f64).ceil() as usize).clamp(1, loads.len()) - 1;
            loads[idx]
        };
        NodeSummary {
            msg_max,
            msg_max_node,
            msg_p50: rank(0.50),
            msg_p99: rank(0.99),
        }
    }
}

/// Summary columns derived from [`NodeStats`]: all integers, all
/// deterministic, all cross-engine bit-identical (clause 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeSummary {
    /// Largest per-node message load (`sent + delivered`).
    pub msg_max: u64,
    /// Node carrying `msg_max` (smallest id on ties).
    pub msg_max_node: NodeId,
    /// Median per-node message load (nearest-rank).
    pub msg_p50: u64,
    /// 99th-percentile per-node message load (nearest-rank).
    pub msg_p99: u64,
}

// ---------------------------------------------------------------------------
// Run reports (shared by both engines)
// ---------------------------------------------------------------------------

/// Number of hot edges retained in [`RunReport::hot_edges`].
pub const HOT_EDGE_TOP_K: usize = 16;

/// Wall-clock nanoseconds per engine phase, summed over the run.
/// Machine-dependent (scrub wherever pinned); the sequential simulator
/// reports `barrier_ns == 0`.
///
/// The parallel engine samples every worker, not just worker 0:
/// `deliver_ns`/`compute_ns` aggregate the **max across workers** per
/// phase (the phase's wall time is its slowest worker), while
/// `barrier_ns` aggregates the **total wait across workers** (the
/// imbalance the pool paid). Rounds executed inside a fused block
/// (determinism-contract clause 9) report their genuine per-shard work
/// time and zero barrier time — they have no barriers. Attribution of
/// barrier waits at round boundaries is approximate: a worker may
/// publish its wait a moment after worker 0 closes the round's books,
/// shifting nanoseconds into the next round. These are diagnostics,
/// never determinism-bearing.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseWall {
    /// Time spent delivering queued messages into inboxes.
    pub deliver_ns: u64,
    /// Time spent running `Program::round` and staging sends.
    pub compute_ns: u64,
    /// Time spent waiting at phase barriers (parallel engine only).
    pub barrier_ns: u64,
}

impl PhaseWall {
    /// Adds another run's phase times.
    pub fn absorb(&mut self, other: PhaseWall) {
        self.deliver_ns += other.deliver_ns;
        self.compute_ns += other.compute_ns;
        self.barrier_ns += other.barrier_ns;
    }
}

/// Congestion instrumentation for one run, collected when metrics
/// recording is enabled on the executor. Everything except
/// [`RunReport::threads`] and [`RunReport::wall`] is deterministic and
/// engine-identical, which is what lets `engine = "both"` sweeps
/// cross-check the per-round series.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Rounds executed (same value as the run's `RunStats::rounds`).
    pub rounds: u64,
    /// Logical messages sent (same value as the run's
    /// `RunStats::messages`).
    pub total_messages: u64,
    /// Messages physically delivered to inboxes; equals
    /// `total_messages` unless a per-edge combiner merged some away
    /// (contract clause 7).
    pub messages_delivered: u64,
    /// Messages absorbed by per-edge combining (same value as the run's
    /// `RunStats::messages_combined`).
    pub messages_combined: u64,
    /// Messages delivered in each round — the per-round message
    /// histogram; index 0 is round 1. Sums to `messages_delivered`.
    pub messages_per_round: Vec<u64>,
    /// Largest backlog across all directed-edge queues *after* each
    /// round's sends; a proxy for congestion pressure.
    pub max_queue_depth_per_round: Vec<u64>,
    /// Active nodes (nodes whose `Program::round` ran) in each round —
    /// the frontier-size histogram; index 0 is round 1. Sums to the
    /// run's `FrontierStats::invocations`.
    pub active_per_round: Vec<u64>,
    /// The `HOT_EDGE_TOP_K` undirected edges carrying the most traffic,
    /// as `(edge id, delivered messages)`, heaviest first.
    pub hot_edges: Vec<(EdgeId, u64)>,
    /// Worker threads the run used (1 for the simulator).
    pub threads: usize,
    /// Per-phase wall-time breakdown (machine-dependent).
    pub wall: PhaseWall,
}

impl RunReport {
    /// Peak per-round message volume.
    pub fn peak_round_messages(&self) -> u64 {
        self.messages_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Peak queue depth over the whole run.
    pub fn peak_queue_depth(&self) -> u64 {
        self.max_queue_depth_per_round
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Peak per-round active-node count (frontier width).
    pub fn peak_active(&self) -> u64 {
        self.active_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Builds the top-K hot-edge list from per-directed-edge delivery
    /// counts (queue index = `2 * edge_id + dir`, both engines'
    /// convention).
    pub fn rank_hot_edges(per_directed: &[u64]) -> Vec<(EdgeId, u64)> {
        let m = per_directed.len() / 2;
        let mut per_edge: Vec<(EdgeId, u64)> = (0..m)
            .map(|e| (e, per_directed[2 * e] + per_directed[2 * e + 1]))
            .filter(|&(_, c)| c > 0)
            .collect();
        per_edge.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        per_edge.truncate(HOT_EDGE_TOP_K);
        per_edge
    }
}

// ---------------------------------------------------------------------------
// Trace sink
// ---------------------------------------------------------------------------

/// One per-round profiling record (pillar 3). `round`, `delivered`,
/// and `active` are deterministic; the `*_ns` fields are wall time.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundTrace {
    /// Round number (1-based, matching `RunStats::rounds`).
    pub round: u64,
    /// Messages delivered this round.
    pub delivered: u64,
    /// Nodes whose `Program::round` ran this round.
    pub active: u64,
    /// Wall time of the round's deliver phase.
    pub deliver_ns: u64,
    /// Wall time of the round's compute phase.
    pub compute_ns: u64,
    /// Wall time spent at barriers this round (0 for the simulator).
    pub barrier_ns: u64,
}

/// How many formatted records a [`TraceSink`] buffers before flushing
/// to the underlying writer.
pub const TRACE_BUF_RECORDS: usize = 1024;

/// A buffered JSONL sink for profiling records.
///
/// Engines push one [`RoundTrace`] per round; span trees are appended
/// after a run via [`TraceSink::push_spans`]. Records accumulate in a
/// bounded ring of [`TRACE_BUF_RECORDS`] formatted lines that flushes
/// to the writer whenever it fills (and on drop), so a traced
/// million-round run streams instead of buffering everything.
///
/// Share one sink between executors (e.g. a simulator and an engine in
/// an `engine = "both"` sweep) through [`TraceSink::shared`]; each
/// executor stamps its records with the run id it drew from
/// [`TraceSink::begin_run`].
pub struct TraceSink {
    out: Box<dyn Write + Send>,
    buf: Vec<String>,
    runs: u64,
}

/// A [`TraceSink`] shareable between executors (and engine worker
/// threads).
pub type SharedTraceSink = Arc<Mutex<TraceSink>>;

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("buffered", &self.buf.len())
            .field("runs", &self.runs)
            .finish()
    }
}

impl TraceSink {
    /// A sink writing JSONL to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        TraceSink {
            out,
            buf: Vec::with_capacity(TRACE_BUF_RECORDS),
            runs: 0,
        }
    }

    /// A shared sink, ready to attach to several executors.
    pub fn shared(out: Box<dyn Write + Send>) -> SharedTraceSink {
        Arc::new(Mutex::new(TraceSink::new(out)))
    }

    /// Registers the start of a run on `engine` (`"sim"` or
    /// `"parallel"`); returns the run id to stamp its records with.
    pub fn begin_run(&mut self, engine: &str) -> u64 {
        self.runs += 1;
        let id = self.runs;
        self.push_line(format!(
            "{{\"type\":\"run\",\"run\":{id},\"engine\":\"{engine}\"}}"
        ));
        id
    }

    /// Appends one per-round record.
    pub fn push_round(&mut self, run: u64, rec: RoundTrace) {
        self.push_line(format!(
            "{{\"type\":\"round\",\"run\":{run},\"round\":{round},\"delivered\":{delivered},\
             \"active\":{active},\"deliver_ns\":{dns},\"compute_ns\":{cns},\"barrier_ns\":{bns}}}",
            round = rec.round,
            delivered = rec.delivered,
            active = rec.active,
            dns = rec.deliver_ns,
            cns = rec.compute_ns,
            bns = rec.barrier_ns,
        ));
    }

    /// Appends one span record per node of `tree`, labeled `scope`
    /// (e.g. the scenario cell), paths pre-order `/`-joined.
    pub fn push_spans(&mut self, scope: &str, tree: &SpanTree) {
        for (path, n) in tree.flatten() {
            self.push_line(format!(
                "{{\"type\":\"span\",\"scope\":\"{scope}\",\"path\":\"{path}\",\
                 \"rounds\":{rounds},\"messages\":{messages},\
                 \"messages_combined\":{combined},\"messages_delivered\":{delivered},\
                 \"invocations\":{inv},\"sched_rounds\":{sched},\"wall_ns\":{wall}}}",
                rounds = n.stats.rounds,
                messages = n.stats.messages,
                combined = n.stats.messages_combined,
                delivered = n.delivered(),
                inv = n.invocations,
                sched = n.sched_rounds,
                wall = n.wall_ns,
            ));
        }
    }

    fn push_line(&mut self, line: String) {
        self.buf.push(line);
        if self.buf.len() >= TRACE_BUF_RECORDS {
            let _ = self.flush();
        }
    }

    /// Writes every buffered record through to the writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        for line in self.buf.drain(..) {
            writeln!(self.out, "{line}")?;
        }
        self.out.flush()
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use lightgraph::Graph;

    #[test]
    fn summary_of_zero_nodes_is_the_default() {
        // n = 0: no loads at all — must not panic or divide by zero,
        // and every column stays at its zero default.
        let stats = NodeStats::new(0);
        assert_eq!(stats.summary(), NodeSummary::default());
        assert_eq!(NodeStats::default().summary(), NodeSummary::default());
    }

    #[test]
    fn summary_of_an_all_quiescent_run_is_all_zeros() {
        // All-zero loads (every node quiescent, nothing sent or
        // delivered): percentile ranks must stay in bounds and the
        // argmax must be the smallest node id.
        let stats = NodeStats::new(5);
        let s = stats.summary();
        assert_eq!(s.msg_max, 0);
        assert_eq!(s.msg_max_node, 0, "ties break to the smallest id");
        assert_eq!(s.msg_p50, 0);
        assert_eq!(s.msg_p99, 0);

        // Single-node edge case: nearest-rank index must clamp to the
        // only element for every quantile.
        let one = NodeStats::new(1);
        assert_eq!(one.summary(), NodeSummary::default());

        // End-to-end: a recorded run where no program ever sends.
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_record_node_stats(true);
        struct Silent;
        impl crate::Program for Silent {
            type Output = ();
            fn init(&mut self, _: &mut crate::Ctx<'_>) {}
            fn round(
                &mut self,
                _: &mut crate::Ctx<'_>,
                _: &[(lightgraph::NodeId, crate::Message)],
            ) {
            }
            fn finish(self) {}
        }
        let (_, stats) = crate::Executor::run(&mut sim, |_, _| Silent);
        assert_eq!(stats.messages, 0);
        let ns = crate::Executor::node_stats(&sim).expect("recording enabled");
        assert_eq!(ns.summary(), NodeSummary::default());
    }

    #[test]
    fn span_is_transparent_without_a_collector() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        assert!(!spans_active());
        let out = span(&mut sim, "noop", |_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn collect_spans_nests_and_charges_deltas() {
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let ((), tree) = collect_spans(|| {
            span(&mut sim, "outer", |sim| {
                span(sim, "inner", |sim| {
                    sim.charge(RunStats {
                        rounds: 3,
                        messages: 7,
                        messages_combined: 2,
                    });
                });
                sim.charge(RunStats {
                    rounds: 1,
                    messages: 1,
                    messages_combined: 0,
                });
            });
        });
        assert_eq!(tree.roots.len(), 1);
        let outer = &tree.roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.stats.rounds, 4);
        assert_eq!(outer.stats.messages, 8);
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.stats.messages, 7);
        assert_eq!(inner.delivered(), 5);
        assert_eq!(tree.find("inner").unwrap().stats.rounds, 3);
        assert!(tree.find("absent").is_none());
        let paths: Vec<String> = tree.flatten().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["outer".to_owned(), "outer/inner".to_owned()]);
        // The collector uninstalls with the scope.
        assert!(!spans_active());
    }

    #[test]
    fn collect_spans_restores_an_outer_collector() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let ((), outer_tree) = collect_spans(|| {
            let ((), inner_tree) = collect_spans(|| {
                span(&mut sim, "shadowed", |_| {});
            });
            assert_eq!(inner_tree.roots.len(), 1);
            assert!(spans_active(), "outer collector restored");
            span(&mut sim, "outer_only", |_| {});
        });
        let names: Vec<&str> = outer_tree.roots.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["outer_only"]);
    }

    #[test]
    fn node_summary_is_nearest_rank() {
        let ns = NodeStats {
            sent: vec![0, 5, 1, 3],
            delivered: vec![2, 5, 0, 0],
            invocations: vec![0; 4],
        };
        let s = ns.summary();
        assert_eq!(s.msg_max, 10);
        assert_eq!(s.msg_max_node, 1);
        // loads sorted: [1, 2, 3, 10]; p50 = idx 1, p99 = idx 3.
        assert_eq!(s.msg_p50, 2);
        assert_eq!(s.msg_p99, 10);
        assert_eq!(NodeStats::new(0).summary(), NodeSummary::default());
    }

    #[test]
    fn node_summary_ties_pick_the_smallest_node() {
        let ns = NodeStats {
            sent: vec![4, 4, 4],
            delivered: vec![0, 0, 0],
            invocations: vec![0; 3],
        };
        assert_eq!(ns.summary().msg_max_node, 0);
    }

    #[test]
    fn node_stats_absorb_adds_componentwise() {
        let mut a = NodeStats::new(2);
        a.sent[0] = 1;
        let mut b = NodeStats::new(2);
        b.sent[0] = 2;
        b.delivered[1] = 3;
        a.absorb(&b);
        assert_eq!(a.sent, vec![3, 0]);
        assert_eq!(a.delivered, vec![0, 3]);
    }

    #[test]
    fn trace_sink_buffers_and_flushes_jsonl() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Out(Arc<Mutex<Vec<u8>>>);
        impl Write for Out {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        {
            let mut sink = TraceSink::new(Box::new(Out(Arc::clone(&buf))));
            let run = sink.begin_run("sim");
            sink.push_round(
                run,
                RoundTrace {
                    round: 1,
                    delivered: 5,
                    active: 2,
                    ..RoundTrace::default()
                },
            );
            assert_eq!(buf.lock().unwrap().len(), 0, "buffered, not yet written");
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "drop flushed the ring");
        assert!(lines[0].contains("\"type\":\"run\""));
        assert!(lines[1].contains("\"delivered\":5"));
    }

    #[test]
    fn run_report_peaks_and_hot_edges() {
        let per_directed = vec![3, 1, 0, 0, 2, 9];
        let hot = RunReport::rank_hot_edges(&per_directed);
        assert_eq!(hot, vec![(2, 11), (0, 4)]);
        let r = RunReport::default();
        assert_eq!(r.peak_round_messages(), 0);
        assert_eq!(r.peak_queue_depth(), 0);
        assert_eq!(r.peak_active(), 0);
        let mut w = PhaseWall::default();
        w.absorb(PhaseWall {
            deliver_ns: 1,
            compute_ns: 2,
            barrier_ns: 3,
        });
        assert_eq!((w.deliver_ns, w.compute_ns, w.barrier_ns), (1, 2, 3));
    }
}
