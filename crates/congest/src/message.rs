//! Messages: `O(log n)`-bit payloads, at most a constant number of words.

/// One machine word of `O(log n)` bits (§2: "we assume a word size is
/// log n bits"). Node ids, edge weights, and tour times all fit in one
/// word on the instances we simulate.
pub type Word = u64;

/// Maximum number of words per message. The paper's messages carry `O(1)`
/// words (e.g. an id plus a distance); four words accommodate every
/// message in this repository while keeping the `O(log n)` spirit.
pub const WORDS_PER_MESSAGE: usize = 4;

/// A CONGEST message: between 1 and [`WORDS_PER_MESSAGE`] words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Message {
    words: Vec<Word>,
}

impl Message {
    /// Creates a message from the given words.
    ///
    /// # Panics
    /// Panics if `words` is empty or longer than [`WORDS_PER_MESSAGE`] —
    /// that would violate the CONGEST bandwidth bound, so it is a
    /// programming error, not a recoverable condition.
    pub fn words(words: &[Word]) -> Self {
        assert!(
            !words.is_empty() && words.len() <= WORDS_PER_MESSAGE,
            "CONGEST message must have 1..={WORDS_PER_MESSAGE} words, got {}",
            words.len()
        );
        Message {
            words: words.to_vec(),
        }
    }

    /// The payload words.
    pub fn as_words(&self) -> &[Word] {
        &self.words
    }

    /// The `i`-th payload word.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn word(&self, i: usize) -> Word {
        self.words[i]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the message has no words. [`Message::words`] rejects
    /// empty payloads, so this is `false` for every constructed
    /// message; it exists so `len` comes with the conventional pair.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Packs two 32-bit values into one word (ids are `< 2^32` on every
/// instance we simulate; the constructor checks).
///
/// # Panics
/// Panics if either value does not fit in 32 bits.
pub fn pack2(hi: u64, lo: u64) -> Word {
    assert!(
        hi < (1 << 32) && lo < (1 << 32),
        "pack2 operands must fit in 32 bits"
    );
    (hi << 32) | lo
}

/// Inverse of [`pack2`].
pub fn unpack2(w: Word) -> (u64, u64) {
    (w >> 32, w & 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words() {
        let m = Message::words(&[1, 2, 3]);
        assert_eq!(m.as_words(), &[1, 2, 3]);
        assert_eq!(m.word(1), 2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_message() {
        let _ = Message::words(&[0; WORDS_PER_MESSAGE + 1]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_message() {
        let _ = Message::words(&[]);
    }

    #[test]
    fn pack_unpack() {
        let w = pack2(0xdead, 0xbeef);
        assert_eq!(unpack2(w), (0xdead, 0xbeef));
    }

    #[test]
    #[should_panic]
    fn pack_rejects_wide_values() {
        let _ = pack2(1 << 33, 0);
    }
}
