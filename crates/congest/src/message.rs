//! Messages: `O(log n)`-bit payloads, at most a constant number of words.
//!
//! # Memory layout
//!
//! [`Message`] is a fixed-width **inline** value: a length tag plus a
//! `[Word; WORDS_PER_MESSAGE]` payload array, stored directly in the
//! struct with no heap indirection. Constructing, cloning, queueing, and
//! delivering a message is a plain copy — the zero-allocation data path
//! both engines rely on (see `DESIGN.md`, "Memory layout & the
//! zero-alloc data path"). Payloads wider than [`WORDS_PER_MESSAGE`]
//! (only reachable through [`Message::wide`], for "CONGEST with larger
//! messages" ablations) spill to a boxed slice; the spill is a storage
//! representation of the same word slice, so equality, hashing, FIFO
//! order, and combining are width-agnostic and determinism is
//! unaffected.

/// One machine word of `O(log n)` bits (§2: "we assume a word size is
/// log n bits"). Node ids, edge weights, and tour times all fit in one
/// word on the instances we simulate.
pub type Word = u64;

/// Maximum number of words per message. The paper's messages carry `O(1)`
/// words (e.g. an id plus a distance); four words accommodate every
/// message in this repository while keeping the `O(log n)` spirit.
pub const WORDS_PER_MESSAGE: usize = 4;

/// Storage of a message payload.
///
/// Invariants keeping the derived `PartialEq`/`Eq`/`Hash` canonical:
/// `Inline` holds `1..=WORDS_PER_MESSAGE` words with every word past
/// `len` zeroed; `Spill` holds strictly more than `WORDS_PER_MESSAGE`
/// words. A given word slice therefore has exactly one representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    Inline {
        len: u8,
        words: [Word; WORDS_PER_MESSAGE],
    },
    Spill(Box<[Word]>),
}

/// A CONGEST message: between 1 and [`WORDS_PER_MESSAGE`] words, stored
/// inline (no heap allocation; cloning is a fixed-size copy).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Message {
    repr: Repr,
}

impl Message {
    /// Creates a message from the given words.
    ///
    /// # Panics
    /// Panics if `words` is empty or longer than [`WORDS_PER_MESSAGE`] —
    /// that would violate the CONGEST bandwidth bound, so it is a
    /// programming error, not a recoverable condition.
    pub fn words(words: &[Word]) -> Self {
        assert!(
            !words.is_empty() && words.len() <= WORDS_PER_MESSAGE,
            "CONGEST message must have 1..={WORDS_PER_MESSAGE} words, got {}",
            words.len()
        );
        let mut inline = [0; WORDS_PER_MESSAGE];
        inline[..words.len()].copy_from_slice(words);
        Message {
            repr: Repr::Inline {
                len: words.len() as u8,
                words: inline,
            },
        }
    }

    /// Creates a message of any positive width, spilling payloads wider
    /// than [`WORDS_PER_MESSAGE`] to the heap. This is the entry point
    /// for "CONGEST with larger messages" ablations (pair with
    /// [`Executor::set_cap`](crate::Executor::set_cap)); regular
    /// programs should use [`Message::words`], which enforces the
    /// standard bandwidth bound and never allocates.
    ///
    /// # Panics
    /// Panics if `words` is empty.
    pub fn wide(words: &[Word]) -> Self {
        assert!(!words.is_empty(), "CONGEST message must not be empty");
        if words.len() <= WORDS_PER_MESSAGE {
            Message::words(words)
        } else {
            Message {
                repr: Repr::Spill(words.into()),
            }
        }
    }

    /// The payload words.
    pub fn as_words(&self) -> &[Word] {
        match &self.repr {
            Repr::Inline { len, words } => &words[..*len as usize],
            Repr::Spill(words) => words,
        }
    }

    /// The `i`-th payload word.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn word(&self, i: usize) -> Word {
        self.as_words()[i]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spill(words) => words.len(),
        }
    }

    /// Whether the message has no words. [`Message::words`] rejects
    /// empty payloads, so this is `false` for every constructed
    /// message; it exists so `len` comes with the conventional pair.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Packs two 32-bit values into one word (ids are `< 2^32` on every
/// instance we simulate; the constructor checks).
///
/// # Panics
/// Panics if either value does not fit in 32 bits.
pub fn pack2(hi: u64, lo: u64) -> Word {
    assert!(
        hi < (1 << 32) && lo < (1 << 32),
        "pack2 operands must fit in 32 bits"
    );
    (hi << 32) | lo
}

/// Inverse of [`pack2`].
pub fn unpack2(w: Word) -> (u64, u64) {
    (w >> 32, w & 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words() {
        let m = Message::words(&[1, 2, 3]);
        assert_eq!(m.as_words(), &[1, 2, 3]);
        assert_eq!(m.word(1), 2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_message() {
        let _ = Message::words(&[0; WORDS_PER_MESSAGE + 1]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_message() {
        let _ = Message::words(&[]);
    }

    #[test]
    #[should_panic]
    fn wide_rejects_empty_message() {
        let _ = Message::wide(&[]);
    }

    #[test]
    fn wide_spills_past_the_inline_bound() {
        let long: Vec<Word> = (0..WORDS_PER_MESSAGE as u64 + 3).collect();
        let m = Message::wide(&long);
        assert_eq!(m.as_words(), &long[..]);
        assert_eq!(m.len(), long.len());
        assert_eq!(m.clone(), m, "spilled messages clone and compare");
    }

    #[test]
    fn wide_at_or_under_the_bound_stays_inline() {
        // Same representation (hence equality/hash) as Message::words.
        let m = Message::wide(&[4, 5]);
        assert_eq!(m, Message::words(&[4, 5]));
    }

    #[test]
    fn equality_ignores_padding_words() {
        // Messages of equal content but different construction paths
        // must compare (and hash) equal: the inline tail is canonical.
        let a = Message::words(&[9]);
        let b = Message::words(&[9, 1]);
        assert_ne!(a, b);
        assert_eq!(a, Message::wide(&[9]));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let digest = |m: &Message| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&a), digest(&Message::wide(&[9])));
    }

    #[test]
    fn pack_unpack() {
        let w = pack2(0xdead, 0xbeef);
        assert_eq!(unpack2(w), (0xdead, 0xbeef));
    }

    #[test]
    #[should_panic]
    fn pack_rejects_wide_values() {
        let _ = pack2(1 << 33, 0);
    }
}
