//! Distributed BFS-tree construction — the auxiliary tree τ of §2.
//!
//! "A Breadth First Search (BFS) tree τ of G of hop-diameter D (ignoring
//! the weights) can be computed in O(D) rounds. Since all our algorithms
//! have a larger running time, we always assume that we have such a tree
//! at our disposal." We build it once per composite algorithm and charge
//! its O(D) rounds.

use crate::exec::Executor;
use crate::message::Message;
use crate::program::{Ctx, Program, RunStats};
use lightgraph::NodeId;

/// A rooted BFS tree over the simulated network.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// The root vertex.
    pub root: NodeId,
    /// `parent[v]`, `None` for the root (and for unreachable vertices,
    /// which do not occur on connected inputs).
    pub parent: Vec<Option<NodeId>>,
    /// Children lists, sorted by id.
    pub children: Vec<Vec<NodeId>>,
    /// Hop depth of each vertex.
    pub depth: Vec<u64>,
}

impl BfsTree {
    /// Height of the tree (max depth) — the pipelining latency term.
    pub fn height(&self) -> u64 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

const TAG_JOIN: u64 = 1;
const TAG_CHILD: u64 = 2;

struct BfsProgram {
    root: NodeId,
    parent: Option<NodeId>,
    depth: u64,
    joined: bool,
    children: Vec<NodeId>,
}

impl Program for BfsProgram {
    type Output = (Option<NodeId>, u64, Vec<NodeId>);

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.node() == self.root {
            self.joined = true;
            self.depth = 0;
            ctx.send_all(Message::words(&[TAG_JOIN, 0]));
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        let mut best: Option<(u64, NodeId)> = None;
        for (from, msg) in inbox {
            match msg.word(0) {
                TAG_JOIN => {
                    let d = msg.word(1);
                    if best.map(|(bd, bf)| (d, *from) < (bd, bf)).unwrap_or(true) {
                        best = Some((d, *from));
                    }
                }
                TAG_CHILD => self.children.push(*from),
                other => unreachable!("unexpected tag {other}"),
            }
        }
        if !self.joined {
            if let Some((d, from)) = best {
                self.joined = true;
                self.parent = Some(from);
                self.depth = d + 1;
                ctx.send(from, Message::words(&[TAG_CHILD]));
                ctx.send_all(Message::words(&[TAG_JOIN, self.depth]));
            }
        }
    }

    fn finish(mut self) -> Self::Output {
        self.children.sort_unstable();
        (self.parent, self.depth, self.children)
    }
}

/// Builds a BFS tree rooted at `root` by distributed flooding.
///
/// Takes `O(D)` rounds (plus one round for child notifications). The
/// returned statistics are also accumulated into the simulator's total.
///
/// # Panics
/// Panics if the network is disconnected (some vertex never joins).
pub fn build_bfs_tree<E: Executor>(sim: &mut E, root: NodeId) -> (BfsTree, RunStats) {
    let (out, stats) = sim.run(|_, _| BfsProgram {
        root,
        parent: None,
        depth: 0,
        joined: false,
        children: Vec::new(),
    });
    let n = out.len();
    let mut tree = BfsTree {
        root,
        parent: vec![None; n],
        children: vec![Vec::new(); n],
        depth: vec![0; n],
    };
    for (v, (parent, depth, children)) in out.into_iter().enumerate() {
        assert!(
            v == root || parent.is_some(),
            "vertex {v} unreachable from root {root}: network must be connected"
        );
        tree.parent[v] = parent;
        tree.depth[v] = depth;
        tree.children[v] = children;
    }
    (tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use lightgraph::generators;

    #[test]
    fn bfs_tree_depths_match_hop_distances() {
        let g = generators::erdos_renyi(48, 0.1, 9, 2);
        let mut sim = Simulator::new(&g);
        let (tree, stats) = build_bfs_tree(&mut sim, 0);
        // sequential BFS oracle
        let mut dist = vec![u64::MAX; g.n()];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([0usize]);
        while let Some(u) = q.pop_front() {
            for &(v, _, _) in g.neighbors(u) {
                if dist[v] == u64::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        assert_eq!(tree.depth, dist);
        assert!(stats.rounds <= g.hop_diameter() as u64 + 2);
        // parent depth is one less
        for v in 0..g.n() {
            if let Some(p) = tree.parent[v] {
                assert_eq!(tree.depth[p] + 1, tree.depth[v]);
                assert!(tree.children[p].contains(&v));
            } else {
                assert_eq!(v, tree.root);
            }
        }
    }

    #[test]
    fn children_lists_partition_non_roots() {
        let g = generators::grid(5, 6, 4, 3);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 7);
        let mut seen = vec![false; g.n()];
        for v in 0..g.n() {
            for &c in &tree.children[v] {
                assert!(!seen[c], "child {c} claimed twice");
                seen[c] = true;
                assert_eq!(tree.parent[c], Some(v));
            }
        }
        assert_eq!(seen.iter().filter(|&&b| b).count(), g.n() - 1);
    }

    #[test]
    fn path_graph_tree_height_is_length() {
        let g = generators::path(20, 5);
        let mut sim = Simulator::new(&g);
        let (tree, stats) = build_bfs_tree(&mut sim, 0);
        assert_eq!(tree.height(), 19);
        assert!(stats.rounds >= 19);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn disconnected_network_panics() {
        let g = lightgraph::Graph::from_edges(3, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let _ = build_bfs_tree(&mut sim, 0);
    }
}
