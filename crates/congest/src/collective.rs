//! Lemma-1 collectives on a BFS tree.
//!
//! Lemma 1 of the paper: if the vertices collectively hold `M` messages
//! of `O(1)` words, all vertices can receive all messages within
//! `O(M + D)` rounds. We realize the two directions separately:
//!
//! * [`broadcast`] — the root pipelines `M` items down the tree:
//!   `M + height` rounds at cap 1.
//! * [`converge`] — key-combining convergecast: every vertex contributes
//!   keyed items, an associative combiner merges duplicates on the way
//!   up, and the root ends with the combined map. Streams are emitted in
//!   increasing key order with watermark tracking, so distinct keys
//!   pipeline: `O(K + height)` rounds for `K` distinct keys crossing the
//!   bottleneck edge.
//! * [`gather`] — convergecast of *distinct* items (a thin wrapper).
//! * [`converge_merged`] / [`gather_merged`] — the **combiner-aware**
//!   convergecast: items flow upward *eagerly* (no watermark waiting),
//!   the per-key merge runs at three levels — inside each node's
//!   partial map, as the contract-clause-7 per-edge message combiner
//!   while superseded items are still queued in flight, and nothing
//!   else: no `DONE` control traffic at all. Same root map as
//!   [`converge`], but a slow subtree never head-of-line-blocks
//!   settled keys, which is what made the landmark pairwise gather
//!   round-bound (see `dist_sssp::landmark`).
//!
//! * [`downcast`] — the *targeted* inverse of [`gather`]: the root
//!   unicasts each keyed item down the tree path to one designated
//!   vertex. An item costs `O(depth(target))` deliveries instead of the
//!   `O(n)` a broadcast pays, which is what makes "convergecast to rt,
//!   compute locally, return each vertex *its own* answer" affordable
//!   when the answers differ per vertex (Euler-tour shifts, Borůvka
//!   relabels, BP₂ membership).
//!
//! Together, `gather` + `broadcast` implement the paper's recurring
//! "convergecast to rt, compute locally, broadcast the answer" pattern;
//! `gather_merged` + `downcast` is the message-lean variant for
//! per-vertex answers.

use crate::exec::Executor;
use crate::message::{pack2, unpack2, Message, Word};
use crate::program::{Ctx, Program, RunStats};
use crate::tree::BfsTree;
use lightgraph::NodeId;
use std::collections::BTreeMap;

/// A keyed item: `(key, value)` where the value is two words. Keys are
/// application-defined (cluster ids, packed id pairs, …).
pub type Item = (Word, [Word; 2]);

const TAG_ITEM: u64 = 1;
const TAG_DONE: u64 = 2;
const TAG_SEND: u64 = 3;

// ---------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------

struct BroadcastProgram {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Only the root holds items initially.
    initial: Vec<Item>,
    received: Vec<Item>,
}

impl Program for BroadcastProgram {
    type Output = Vec<Item>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.parent.is_none() {
            for &(k, [a, b]) in &self.initial {
                for &c in &self.children.clone() {
                    ctx.send(c, Message::words(&[TAG_ITEM, k, a, b]));
                }
            }
            self.received = self.initial.clone();
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (_, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_ITEM);
            let item = (msg.word(1), [msg.word(2), msg.word(3)]);
            self.received.push(item);
            for &c in &self.children.clone() {
                ctx.send(c, msg.clone());
            }
        }
    }

    fn finish(self) -> Vec<Item> {
        self.received
    }
}

/// Pipelines `items` from the tree root to every vertex.
///
/// Every vertex receives all items in the root's order. Takes
/// `|items| + height` rounds at cap 1 (`O(M + D)`, Lemma 1).
pub fn broadcast<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: Vec<Item>,
) -> (Vec<Vec<Item>>, RunStats) {
    let root = tree.root;
    sim.run(|v, _| BroadcastProgram {
        parent: tree.parent[v],
        children: tree.children[v].clone(),
        initial: if v == root { items.clone() } else { Vec::new() },
        received: Vec::new(),
    })
}

// ---------------------------------------------------------------------
// Downcast (targeted unicast down tree paths)
// ---------------------------------------------------------------------

struct DowncastProgram {
    /// Only the root holds items initially: `(target, (key, value))`.
    initial: Vec<(NodeId, Item)>,
    /// Next hop per routed target at this vertex (targets whose root
    /// path passes through here).
    route: BTreeMap<Word, NodeId>,
    received: Vec<Item>,
}

impl Program for DowncastProgram {
    type Output = Vec<Item>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.node();
        for (t, (k, [a, b])) in std::mem::take(&mut self.initial) {
            if t == me {
                // Root-addressed items are already home: free.
                self.received.push((k, [a, b]));
            } else {
                let next = self.route[&(t as Word)];
                // tag and target share a word (both fit 32 bits), so the
                // whole envelope fits the CONGEST word budget
                ctx.send(next, Message::words(&[pack2(TAG_SEND, t as Word), k, a, b]));
            }
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        let me = ctx.node();
        for (_, msg) in inbox {
            let (tag, t) = unpack2(msg.word(0));
            debug_assert_eq!(tag, TAG_SEND);
            if t as NodeId == me {
                self.received
                    .push((msg.word(1), [msg.word(2), msg.word(3)]));
            } else {
                ctx.send(self.route[&t], msg.clone());
            }
        }
    }

    fn finish(self) -> Vec<Item> {
        self.received
    }
}

/// Unicasts each keyed item from the tree root to its designated target
/// vertex, along the unique tree path. Returns, per vertex, the items
/// addressed to it, in the root's emission order (ties between targets
/// sharing a path prefix pipeline at cap 1).
///
/// Cost: `Σ depth(target)` deliveries and `O(|items| + height)` rounds —
/// the point of the primitive: per-vertex answers computed at the root
/// (fragment shifts, new fragment ids, selected tour positions) return
/// without the `O(|items| · n)` a [`broadcast`] would pay. Items
/// addressed to the root itself are recorded locally for free.
///
/// The per-vertex routing tables (`target → child`) are derived from
/// `tree` alone by walking each target's parent chain once — free local
/// precomputation performed by the orchestrator on the vertices' behalf,
/// like the tree itself.
///
/// # Examples
///
/// Route per-vertex answers from the root of a BFS tree to their
/// targets on a path `0 – 1 – 2 – 3`; each vertex receives exactly the
/// items addressed to it, in the root's emission order:
///
/// ```
/// use congest::collective::downcast;
/// use congest::tree::build_bfs_tree;
/// use congest::Simulator;
/// use lightgraph::generators;
///
/// let g = generators::path(4, 1);
/// let mut sim = Simulator::new(&g);
/// let (tree, _) = build_bfs_tree(&mut sim, 0);
/// let items = vec![(2, (7, [70, 700])), (3, (9, [90, 900])), (2, (8, [80, 800]))];
/// let (per_vertex, _stats) = downcast(&mut sim, &tree, items);
/// assert_eq!(per_vertex[2], vec![(7, [70, 700]), (8, [80, 800])]);
/// assert_eq!(per_vertex[3], vec![(9, [90, 900])]);
/// assert!(per_vertex[0].is_empty() && per_vertex[1].is_empty());
/// ```
pub fn downcast<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: Vec<(NodeId, Item)>,
) -> (Vec<Vec<Item>>, RunStats) {
    let mut route: Vec<BTreeMap<Word, NodeId>> = vec![BTreeMap::new(); tree.parent.len()];
    for &(t, _) in &items {
        let mut cur = t;
        while let Some(p) = tree.parent[cur] {
            route[p].insert(t as Word, cur);
            cur = p;
        }
        debug_assert_eq!(cur, tree.root, "target {t} not under the root");
    }
    let root = tree.root;
    sim.run(|v, _| DowncastProgram {
        initial: if v == root { items.clone() } else { Vec::new() },
        route: route[v].clone(),
        received: Vec::new(),
    })
}

// ---------------------------------------------------------------------
// Combining convergecast
// ---------------------------------------------------------------------

struct ConvergeProgram<C> {
    parent: Option<NodeId>,
    /// Frontier per child: smallest key the child may still emit;
    /// `Word::MAX` once the child reported done.
    frontier: BTreeMap<NodeId, Word>,
    merged: BTreeMap<Word, [Word; 2]>,
    combine: C,
    sent_done: bool,
}

impl<C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2]> ConvergeProgram<C> {
    fn insert(&mut self, key: Word, val: [Word; 2]) {
        match self.merged.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(val);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let cur = *e.get();
                e.insert((self.combine)(key, cur, val));
            }
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        let watermark = self.frontier.values().copied().min().unwrap_or(Word::MAX);
        if let Some(parent) = self.parent {
            // Emit every settled key (< watermark) upward, in order.
            let ready: Vec<Word> = self.merged.range(..watermark).map(|(&k, _)| k).collect();
            for k in ready {
                let [a, b] = self.merged.remove(&k).expect("key present");
                ctx.send(parent, Message::words(&[TAG_ITEM, k, a, b]));
            }
            if watermark == Word::MAX && !self.sent_done {
                self.sent_done = true;
                ctx.send(parent, Message::words(&[TAG_DONE]));
            }
        }
    }
}

impl<C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2]> Program for ConvergeProgram<C> {
    type Output = BTreeMap<Word, [Word; 2]>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.flush(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            match msg.word(0) {
                TAG_ITEM => {
                    let key = msg.word(1);
                    self.insert(key, [msg.word(2), msg.word(3)]);
                    let f = self.frontier.get_mut(from).expect("sender is a child");
                    *f = (*f).max(key.saturating_add(1));
                }
                TAG_DONE => {
                    *self.frontier.get_mut(from).expect("sender is a child") = Word::MAX;
                }
                other => unreachable!("unexpected tag {other}"),
            }
        }
        self.flush(ctx);
    }

    fn finish(self) -> BTreeMap<Word, [Word; 2]> {
        self.merged
    }
}

/// Combining convergecast: every vertex `v` contributes `items(v)`;
/// values sharing a key are merged with the associative, commutative
/// `combine(key, a, b)`; the root's combined map is returned.
///
/// Items are streamed in increasing key order with per-child watermarks,
/// so `K` distinct keys cost `O(K + height)` rounds at cap 1.
pub fn converge<E, C>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
    combine: C,
) -> (BTreeMap<Word, [Word; 2]>, RunStats)
where
    E: Executor,
    C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2] + Clone + Send,
{
    let root = tree.root;
    let (mut out, stats) = sim.run(|v, _| {
        let mut p = ConvergeProgram {
            parent: tree.parent[v],
            frontier: tree.children[v].iter().map(|&c| (c, 0)).collect(),
            merged: BTreeMap::new(),
            combine: combine.clone(),
            sent_done: false,
        };
        for (k, val) in items(v) {
            p.insert(k, val);
        }
        p
    });
    (std::mem::take(&mut out[root]), stats)
}

/// Convergecast of distinct items (duplicate keys keep the smaller
/// value, which callers with genuinely unique keys never observe).
pub fn gather<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| a.min(b))
}

// ---------------------------------------------------------------------
// Eager combiner-aware convergecast
// ---------------------------------------------------------------------

/// The eager convergecast program: holds the per-key merge of
/// everything seen so far and forwards an item upward the moment it
/// *improves* the held value (merge result differs), relying on the
/// clause-7 per-edge combiner — the same merge, applied to co-queued
/// messages — to collapse superseded items still in flight.
struct EagerConvergeProgram<C> {
    parent: Option<NodeId>,
    merged: BTreeMap<Word, [Word; 2]>,
    combine: C,
    /// `false` disables the clause-7 message combiner (the
    /// "non-combined path" of the equivalence proptests); the program
    /// logic is otherwise identical.
    use_combiner: bool,
}

impl<C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2]> EagerConvergeProgram<C> {
    /// Merges `(key, val)` into the held map; returns whether the held
    /// value changed (i.e. the item must be forwarded).
    fn insert(&mut self, key: Word, val: [Word; 2]) -> bool {
        // The eager contract requires an idempotent (semilattice)
        // merge — see `converge_merged_with`. Spot-check each item.
        debug_assert_eq!(
            (self.combine)(key, val, val),
            val,
            "converge_merged requires an idempotent merge (key {key})"
        );
        match self.merged.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(val);
                true
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let cur = *e.get();
                let merged = (self.combine)(key, cur, val);
                if merged == cur {
                    false
                } else {
                    e.insert(merged);
                    true
                }
            }
        }
    }

    fn emit(&self, ctx: &mut Ctx<'_>, key: Word) {
        if let Some(parent) = self.parent {
            let [a, b] = self.merged[&key];
            ctx.send(parent, Message::words(&[TAG_ITEM, key, a, b]));
        }
    }
}

impl<C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2]> Program for EagerConvergeProgram<C> {
    type Output = BTreeMap<Word, [Word; 2]>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        // The map already holds this node's own items (inserted at
        // construction); announce them all, in key order.
        let keys: Vec<Word> = self.merged.keys().copied().collect();
        for key in keys {
            self.emit(ctx, key);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        // Absorb the whole inbox first, then emit each improved key
        // once with its final merged value (batching duplicates that
        // arrived in the same round from different children).
        let mut improved: Vec<Word> = Vec::new();
        for (_, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_ITEM);
            let key = msg.word(1);
            if self.insert(key, [msg.word(2), msg.word(3)]) && !improved.contains(&key) {
                improved.push(key);
            }
        }
        for key in improved {
            self.emit(ctx, key);
        }
    }

    /// Clause-7 key: the item key itself (all eager-convergecast
    /// traffic is `TAG_ITEM`, so the key alone identifies the stream).
    fn combine_key(&self, msg: &Message) -> Option<Word> {
        if !self.use_combiner {
            return None;
        }
        debug_assert_eq!(msg.word(0), TAG_ITEM);
        Some(msg.word(1))
    }

    /// Clause-7 merge: the caller's per-key merge, lifted to messages.
    /// Lawful because the eager contract demands a semilattice merge
    /// (associative, commutative, **idempotent** — see
    /// [`converge_merged_with`]); key-stable by construction since
    /// words 0–1 are kept verbatim.
    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        debug_assert_eq!(queued.word(1), incoming.word(1), "same item key");
        let key = queued.word(1);
        let merged = (self.combine)(
            key,
            [queued.word(2), queued.word(3)],
            [incoming.word(2), incoming.word(3)],
        );
        Message::words(&[TAG_ITEM, key, merged[0], merged[1]])
    }

    fn finish(self) -> BTreeMap<Word, [Word; 2]> {
        self.merged
    }
}

/// Combiner-aware convergecast: every vertex contributes `items(v)`,
/// values sharing a key merge through `combine(key, a, b)`, the root's
/// combined map is returned — but items flow upward **eagerly** and
/// superseded re-emissions are collapsed *in flight* by the clause-7
/// per-edge message combiner (the same merge). Two consequences:
///
/// * no watermark waiting: a slow subtree cannot head-of-line-block
///   keys that are already settled elsewhere, so long pairwise gathers
///   pipeline at the bandwidth floor instead of the watermark schedule;
/// * a key crosses an edge once per *improvement that outlives the
///   backlog* — for duplicate-heavy streams (e.g. both endpoints of a
///   landmark pair reporting the same distance) the duplicates merge
///   either in a node's map or in its parent queue and are never
///   delivered twice.
///
/// **The merge obligation is stricter than [`converge`]'s**: `combine`
/// must be a *semilattice* merge — associative, commutative, **and
/// idempotent** (`combine(k, a, a) == a`), i.e. a selection such as a
/// componentwise or lexicographic min/max. The eager program forwards
/// its *held merged value* on every improvement, so an upstream node
/// may absorb the same original contribution through several
/// emissions; idempotence is what makes re-absorption a no-op.
/// Aggregations like sums or counts are **not** lawful here (the root
/// would double-count) — use the watermark [`converge`], whose
/// exactly-once key streams only need associativity + commutativity.
/// Idempotence is spot-checked per item in debug builds.
///
/// `set_combiner = false` runs the identical eager program without the
/// clause-7 message combiner — the reference path the equivalence
/// proptests compare against.
pub fn converge_merged_with<E, C>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
    combine: C,
    set_combiner: bool,
) -> (BTreeMap<Word, [Word; 2]>, RunStats)
where
    E: Executor,
    C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2] + Clone + Send,
{
    let root = tree.root;
    let (mut out, stats) = sim.run(|v, _| {
        let mut p = EagerConvergeProgram {
            parent: tree.parent[v],
            merged: BTreeMap::new(),
            combine: combine.clone(),
            use_combiner: set_combiner,
        };
        for (k, val) in items(v) {
            p.insert(k, val);
        }
        p
    });
    (std::mem::take(&mut out[root]), stats)
}

/// [`converge_merged_with`] with the clause-7 combiner enabled — the
/// production entry point.
pub fn converge_merged<E, C>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
    combine: C,
) -> (BTreeMap<Word, [Word; 2]>, RunStats)
where
    E: Executor,
    C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2] + Clone + Send,
{
    converge_merged_with(sim, tree, items, combine, true)
}

/// Combiner-aware [`gather`]: eager convergecast where duplicate keys
/// keep the lexicographically smaller value — in nodes *and in flight*
/// (see [`converge_merged`]) — exactly as [`gather`] specializes
/// [`converge`]. The landmark pairwise gather uses this to collapse
/// superseded bounded-distance items (`val = [distance, _]`, so the
/// smaller genuine path length wins).
pub fn gather_merged<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge_merged(sim, tree, items, |_, a, b| a.min(b))
}

/// Convergecast of keyed minima over the first value word; the second
/// word rides along with its minimum (e.g. `val = [weight, edge-id]`
/// keeps the lightest edge per key).
pub fn converge_min<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| if a[0] <= b[0] { a } else { b })
}

/// Convergecast of keyed maxima over the first value word.
pub fn converge_max<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| if a[0] >= b[0] { a } else { b })
}

/// Convergecast of keyed sums over the first value word (second word
/// summed too).
pub fn converge_sum<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| [a[0] + b[0], a[1] + b[1]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_bfs_tree;
    use crate::Simulator;
    use lightgraph::generators;

    #[test]
    fn broadcast_reaches_everyone_in_order() {
        let g = generators::erdos_renyi(32, 0.12, 9, 7);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let items: Vec<Item> = (0..20).map(|i| (i, [i * 10, i * 100])).collect();
        let (out, stats) = broadcast(&mut sim, &tree, items.clone());
        for v in 0..g.n() {
            assert_eq!(out[v], items, "vertex {v} missed items");
        }
        assert!(
            stats.rounds <= items.len() as u64 + tree.height() + 2,
            "broadcast not pipelined: {} rounds for {} items, height {}",
            stats.rounds,
            items.len(),
            tree.height()
        );
    }

    #[test]
    fn broadcast_of_nothing_is_instant() {
        let g = generators::path(5, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (out, stats) = broadcast(&mut sim, &tree, Vec::new());
        assert!(out.iter().all(|v| v.is_empty()));
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn downcast_delivers_each_item_to_its_target_only() {
        let g = generators::erdos_renyi(32, 0.12, 9, 7);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        // two items to vertex 5 (order preserved), one to 17, one to the
        // root itself (free), none to anyone else
        let items: Vec<(NodeId, Item)> = vec![
            (5, (100, [1, 2])),
            (17, (200, [3, 4])),
            (5, (101, [5, 6])),
            (0, (300, [7, 8])),
        ];
        let (out, stats) = downcast(&mut sim, &tree, items);
        assert_eq!(out[5], vec![(100, [1, 2]), (101, [5, 6])]);
        assert_eq!(out[17], vec![(200, [3, 4])]);
        assert_eq!(out[0], vec![(300, [7, 8])]);
        for v in 0..g.n() {
            if ![0, 5, 17].contains(&v) {
                assert!(out[v].is_empty(), "vertex {v} must receive nothing");
            }
        }
        // cost = sum of target depths, not O(n) per item
        let depth_sum = tree.depth[5] + tree.depth[17] + tree.depth[5];
        assert_eq!(stats.messages, depth_sum, "one hop per path edge");
    }

    #[test]
    fn downcast_pipelines_on_a_path() {
        let g = generators::path(16, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let items: Vec<(NodeId, Item)> = (1..16)
            .map(|v| (v, (v as u64, [v as u64 * 3, 0])))
            .collect();
        let (out, stats) = downcast(&mut sim, &tree, items);
        for v in 1..16 {
            assert_eq!(out[v], vec![(v as u64, [v as u64 * 3, 0])]);
        }
        assert!(
            stats.rounds <= 15 + 15 + 2,
            "downcast not pipelined: {} rounds",
            stats.rounds
        );
    }

    #[test]
    fn downcast_of_nothing_is_instant() {
        let g = generators::grid(4, 4, 2, 2);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (out, stats) = downcast(&mut sim, &tree, Vec::new());
        assert!(out.iter().all(Vec::is_empty));
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn converge_max_finds_global_max_per_key() {
        let g = generators::erdos_renyi(40, 0.1, 9, 8);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 3);
        // key = v % 4, value = v
        let (got, _) = converge_max(&mut sim, &tree, |v| vec![((v % 4) as u64, [v as u64, 0])]);
        for k in 0..4u64 {
            let expect = (0..40u64).filter(|v| v % 4 == k).max().unwrap();
            assert_eq!(got[&k][0], expect, "key {k}");
        }
    }

    #[test]
    fn converge_sum_counts_vertices() {
        let g = generators::grid(6, 6, 3, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, _) = converge_sum(&mut sim, &tree, |_| vec![(0, [1, 2])]);
        assert_eq!(got[&0], [36, 72]);
    }

    #[test]
    fn converge_min_keeps_payload_of_minimum() {
        let g = generators::path(6, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, _) = converge_min(&mut sim, &tree, |v| vec![(0, [(10 - v) as u64, v as u64])]);
        assert_eq!(got[&0], [5, 5]); // v=5 has min first word, payload rides along
    }

    #[test]
    fn gather_collects_distinct_items_pipelined() {
        let g = generators::path(16, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, stats) = gather(&mut sim, &tree, |v| vec![(v as u64, [v as u64 * 7, 0])]);
        assert_eq!(got.len(), 16);
        for v in 0..16u64 {
            assert_eq!(got[&v][0], v * 7);
        }
        // Path of length 15, 16 items: pipelining should finish well under
        // the naive 16*15 bound.
        assert!(
            stats.rounds <= 16 + 15 + 5,
            "gather not pipelined: {}",
            stats.rounds
        );
    }

    #[test]
    fn eager_converge_matches_watermark_output() {
        let g = generators::erdos_renyi(40, 0.1, 9, 12);
        let items = |v: NodeId| vec![((v % 6) as u64, [(v * 13 % 17) as u64, v as u64])];
        let merge = |_: Word, a: [Word; 2], b: [Word; 2]| a.min(b);
        let mut sim_w = Simulator::new(&g);
        let (tree_w, _) = build_bfs_tree(&mut sim_w, 2);
        let (want, _) = converge(&mut sim_w, &tree_w, items, merge);
        let mut sim_e = Simulator::new(&g);
        let (tree_e, _) = build_bfs_tree(&mut sim_e, 2);
        let (got, _) = converge_merged(&mut sim_e, &tree_e, items, merge);
        assert_eq!(got, want, "eager and watermark roots must agree");
    }

    #[test]
    fn eager_converge_passes_the_dense_validator() {
        let g = generators::grid(5, 5, 4, 3);
        let mut sim = Simulator::new(&g);
        sim.set_validate_activation(true);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, _) = converge_merged(
            &mut sim,
            &tree,
            |v| vec![((v % 3) as u64, [v as u64, 0])],
            |_, a, b| a.min(b),
        );
        for k in 0..3u64 {
            let expect = (0..25u64).filter(|v| v % 3 == k).min().unwrap();
            assert_eq!(got[&k][0], expect, "key {k}");
        }
    }

    #[test]
    fn eager_converge_combiner_collapses_superseded_items_in_flight() {
        // Root 0 — 1 — 2: node 1 holds five backlog keys in front of
        // its copy of the shared key 100; node 2's better value for
        // key 100 arrives at node 1 in round 1, while node 1's own copy
        // is still queued behind the backlog — the improved re-emission
        // must merge into it in flight.
        let g = generators::path(3, 1);
        let run = |set_combiner: bool| {
            let mut sim = Simulator::new(&g);
            let (tree, _) = build_bfs_tree(&mut sim, 0);
            let (map, stats) = converge_merged_with(
                &mut sim,
                &tree,
                |v| match v {
                    1 => (1..=5)
                        .map(|k| (k, [k, k]))
                        .chain([(100, [10, 1])])
                        .collect(),
                    2 => vec![(100, [5, 2])],
                    _ => Vec::new(),
                },
                |_, a, b| a.min(b),
                set_combiner,
            );
            (map, stats)
        };
        let (map_c, stats_c) = run(true);
        let (map_u, stats_u) = run(false);
        assert_eq!(map_c, map_u, "combining must not change the root map");
        assert_eq!(map_c[&100], [5, 2], "global minimum for the shared key");
        assert!(
            stats_c.messages_combined > 0,
            "superseded shared-key items must merge in flight"
        );
        assert_eq!(stats_u.messages_combined, 0);
        assert!(stats_c.messages_delivered() <= stats_u.messages_delivered());
    }

    #[test]
    fn converge_handles_empty_contributions() {
        let g = generators::grid(4, 4, 2, 2);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, _) = converge_max(&mut sim, &tree, |v| {
            if v == 9 {
                vec![(42, [9, 9])]
            } else {
                Vec::new()
            }
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[&42], [9, 9]);
    }
}
