//! Lemma-1 collectives on a BFS tree.
//!
//! Lemma 1 of the paper: if the vertices collectively hold `M` messages
//! of `O(1)` words, all vertices can receive all messages within
//! `O(M + D)` rounds. We realize the two directions separately:
//!
//! * [`broadcast`] — the root pipelines `M` items down the tree:
//!   `M + height` rounds at cap 1.
//! * [`converge`] — key-combining convergecast: every vertex contributes
//!   keyed items, an associative combiner merges duplicates on the way
//!   up, and the root ends with the combined map. Streams are emitted in
//!   increasing key order with watermark tracking, so distinct keys
//!   pipeline: `O(K + height)` rounds for `K` distinct keys crossing the
//!   bottleneck edge.
//! * [`gather`] — convergecast of *distinct* items (a thin wrapper).
//!
//! Together, `gather` + `broadcast` implement the paper's recurring
//! "convergecast to rt, compute locally, broadcast the answer" pattern.

use crate::exec::Executor;
use crate::message::{Message, Word};
use crate::program::{Ctx, Program, RunStats};
use crate::tree::BfsTree;
use lightgraph::NodeId;
use std::collections::BTreeMap;

/// A keyed item: `(key, value)` where the value is two words. Keys are
/// application-defined (cluster ids, packed id pairs, …).
pub type Item = (Word, [Word; 2]);

const TAG_ITEM: u64 = 1;
const TAG_DONE: u64 = 2;

// ---------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------

struct BroadcastProgram {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Only the root holds items initially.
    initial: Vec<Item>,
    received: Vec<Item>,
}

impl Program for BroadcastProgram {
    type Output = Vec<Item>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.parent.is_none() {
            for &(k, [a, b]) in &self.initial {
                for &c in &self.children.clone() {
                    ctx.send(c, Message::words(&[TAG_ITEM, k, a, b]));
                }
            }
            self.received = self.initial.clone();
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (_, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_ITEM);
            let item = (msg.word(1), [msg.word(2), msg.word(3)]);
            self.received.push(item);
            for &c in &self.children.clone() {
                ctx.send(c, msg.clone());
            }
        }
    }

    fn finish(self) -> Vec<Item> {
        self.received
    }
}

/// Pipelines `items` from the tree root to every vertex.
///
/// Every vertex receives all items in the root's order. Takes
/// `|items| + height` rounds at cap 1 (`O(M + D)`, Lemma 1).
pub fn broadcast<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: Vec<Item>,
) -> (Vec<Vec<Item>>, RunStats) {
    let root = tree.root;
    sim.run(|v, _| BroadcastProgram {
        parent: tree.parent[v],
        children: tree.children[v].clone(),
        initial: if v == root { items.clone() } else { Vec::new() },
        received: Vec::new(),
    })
}

// ---------------------------------------------------------------------
// Combining convergecast
// ---------------------------------------------------------------------

struct ConvergeProgram<C> {
    parent: Option<NodeId>,
    /// Frontier per child: smallest key the child may still emit;
    /// `Word::MAX` once the child reported done.
    frontier: BTreeMap<NodeId, Word>,
    merged: BTreeMap<Word, [Word; 2]>,
    combine: C,
    sent_done: bool,
}

impl<C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2]> ConvergeProgram<C> {
    fn insert(&mut self, key: Word, val: [Word; 2]) {
        match self.merged.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(val);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let cur = *e.get();
                e.insert((self.combine)(key, cur, val));
            }
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        let watermark = self.frontier.values().copied().min().unwrap_or(Word::MAX);
        if let Some(parent) = self.parent {
            // Emit every settled key (< watermark) upward, in order.
            let ready: Vec<Word> = self.merged.range(..watermark).map(|(&k, _)| k).collect();
            for k in ready {
                let [a, b] = self.merged.remove(&k).expect("key present");
                ctx.send(parent, Message::words(&[TAG_ITEM, k, a, b]));
            }
            if watermark == Word::MAX && !self.sent_done {
                self.sent_done = true;
                ctx.send(parent, Message::words(&[TAG_DONE]));
            }
        }
    }
}

impl<C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2]> Program for ConvergeProgram<C> {
    type Output = BTreeMap<Word, [Word; 2]>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.flush(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            match msg.word(0) {
                TAG_ITEM => {
                    let key = msg.word(1);
                    self.insert(key, [msg.word(2), msg.word(3)]);
                    let f = self.frontier.get_mut(from).expect("sender is a child");
                    *f = (*f).max(key.saturating_add(1));
                }
                TAG_DONE => {
                    *self.frontier.get_mut(from).expect("sender is a child") = Word::MAX;
                }
                other => unreachable!("unexpected tag {other}"),
            }
        }
        self.flush(ctx);
    }

    fn finish(self) -> BTreeMap<Word, [Word; 2]> {
        self.merged
    }
}

/// Combining convergecast: every vertex `v` contributes `items(v)`;
/// values sharing a key are merged with the associative, commutative
/// `combine(key, a, b)`; the root's combined map is returned.
///
/// Items are streamed in increasing key order with per-child watermarks,
/// so `K` distinct keys cost `O(K + height)` rounds at cap 1.
pub fn converge<E, C>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
    combine: C,
) -> (BTreeMap<Word, [Word; 2]>, RunStats)
where
    E: Executor,
    C: Fn(Word, [Word; 2], [Word; 2]) -> [Word; 2] + Clone + Send,
{
    let root = tree.root;
    let (mut out, stats) = sim.run(|v, _| {
        let mut p = ConvergeProgram {
            parent: tree.parent[v],
            frontier: tree.children[v].iter().map(|&c| (c, 0)).collect(),
            merged: BTreeMap::new(),
            combine: combine.clone(),
            sent_done: false,
        };
        for (k, val) in items(v) {
            p.insert(k, val);
        }
        p
    });
    (std::mem::take(&mut out[root]), stats)
}

/// Convergecast of distinct items (duplicate keys keep the smaller
/// value, which callers with genuinely unique keys never observe).
pub fn gather<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| a.min(b))
}

/// Convergecast of keyed minima over the first value word; the second
/// word rides along with its minimum (e.g. `val = [weight, edge-id]`
/// keeps the lightest edge per key).
pub fn converge_min<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| if a[0] <= b[0] { a } else { b })
}

/// Convergecast of keyed maxima over the first value word.
pub fn converge_max<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| if a[0] >= b[0] { a } else { b })
}

/// Convergecast of keyed sums over the first value word (second word
/// summed too).
pub fn converge_sum<E: Executor>(
    sim: &mut E,
    tree: &BfsTree,
    items: impl Fn(NodeId) -> Vec<Item>,
) -> (BTreeMap<Word, [Word; 2]>, RunStats) {
    converge(sim, tree, items, |_, a, b| [a[0] + b[0], a[1] + b[1]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_bfs_tree;
    use crate::Simulator;
    use lightgraph::generators;

    #[test]
    fn broadcast_reaches_everyone_in_order() {
        let g = generators::erdos_renyi(32, 0.12, 9, 7);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let items: Vec<Item> = (0..20).map(|i| (i, [i * 10, i * 100])).collect();
        let (out, stats) = broadcast(&mut sim, &tree, items.clone());
        for v in 0..g.n() {
            assert_eq!(out[v], items, "vertex {v} missed items");
        }
        assert!(
            stats.rounds <= items.len() as u64 + tree.height() + 2,
            "broadcast not pipelined: {} rounds for {} items, height {}",
            stats.rounds,
            items.len(),
            tree.height()
        );
    }

    #[test]
    fn broadcast_of_nothing_is_instant() {
        let g = generators::path(5, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (out, stats) = broadcast(&mut sim, &tree, Vec::new());
        assert!(out.iter().all(|v| v.is_empty()));
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn converge_max_finds_global_max_per_key() {
        let g = generators::erdos_renyi(40, 0.1, 9, 8);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 3);
        // key = v % 4, value = v
        let (got, _) = converge_max(&mut sim, &tree, |v| vec![((v % 4) as u64, [v as u64, 0])]);
        for k in 0..4u64 {
            let expect = (0..40u64).filter(|v| v % 4 == k).max().unwrap();
            assert_eq!(got[&k][0], expect, "key {k}");
        }
    }

    #[test]
    fn converge_sum_counts_vertices() {
        let g = generators::grid(6, 6, 3, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, _) = converge_sum(&mut sim, &tree, |_| vec![(0, [1, 2])]);
        assert_eq!(got[&0], [36, 72]);
    }

    #[test]
    fn converge_min_keeps_payload_of_minimum() {
        let g = generators::path(6, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, _) = converge_min(&mut sim, &tree, |v| vec![(0, [(10 - v) as u64, v as u64])]);
        assert_eq!(got[&0], [5, 5]); // v=5 has min first word, payload rides along
    }

    #[test]
    fn gather_collects_distinct_items_pipelined() {
        let g = generators::path(16, 1);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, stats) = gather(&mut sim, &tree, |v| vec![(v as u64, [v as u64 * 7, 0])]);
        assert_eq!(got.len(), 16);
        for v in 0..16u64 {
            assert_eq!(got[&v][0], v * 7);
        }
        // Path of length 15, 16 items: pipelining should finish well under
        // the naive 16*15 bound.
        assert!(
            stats.rounds <= 16 + 15 + 5,
            "gather not pipelined: {}",
            stats.rounds
        );
    }

    #[test]
    fn converge_handles_empty_contributions() {
        let g = generators::grid(4, 4, 2, 2);
        let mut sim = Simulator::new(&g);
        let (tree, _) = build_bfs_tree(&mut sim, 0);
        let (got, _) = converge_max(&mut sim, &tree, |v| {
            if v == 9 {
                vec![(42, [9, 9])]
            } else {
                Vec::new()
            }
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[&42], [9, 9]);
    }
}
