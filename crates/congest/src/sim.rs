//! The sequential reference engine: per-edge FIFO queues with a
//! bandwidth cap, frontier-scheduled rounds.

use crate::exec::Executor;
use crate::message::Message;
use crate::obs::{NodeStats, PhaseWall, RoundTrace, RunReport, SharedTraceSink};
use crate::plan::TopoCache;
use crate::program::{Ctx, FrontierStats, Program, RunStats};
use crate::slab::{EdgeQueue, Slab};
use lightgraph::{EdgeId, Graph, NodeId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One queued message in the simulator: the sender, the (possibly
/// merged) payload, and — in validation mode only — the logical
/// messages the payload absorbed, for the combiner re-fold check.
struct QueuedMsg {
    from: NodeId,
    msg: Message,
    originals: Vec<Message>,
}

/// Stages one message on a directed-edge queue, combining per contract
/// clause 7; returns `true` when the message was absorbed into a
/// co-queued message instead of appending.
fn stage_message<P: Program>(
    slab: &mut Slab<QueuedMsg>,
    q: &mut EdgeQueue,
    qi: usize,
    p: &P,
    from: NodeId,
    msg: Message,
    validate: bool,
) -> bool {
    let key = p.combine_key(&msg);
    slab.stage(
        q,
        qi,
        key,
        QueuedMsg {
            from,
            msg,
            originals: Vec::new(),
        },
        |old, new| {
            if validate && old.originals.is_empty() {
                old.originals.push(old.msg.clone());
            }
            let merged = p.combine(&old.msg, &new.msg);
            if validate {
                assert_eq!(
                    p.combine_key(&merged),
                    key,
                    "combiner contract violated: node {from}'s merge changed the combining key"
                );
                old.originals.push(new.msg);
            } else {
                debug_assert_eq!(p.combine_key(&merged), key, "combiner changed the key");
            }
            old.msg = merged;
        },
    )
}

/// Validation-mode re-fold: merging the retained logical messages in
/// reverse order must reproduce the incrementally merged survivor —
/// anything else means the combiner is order-sensitive (not
/// associative/commutative), which would break engine-bit-identity on
/// a different staging schedule.
fn refold_check<P: Program>(p: &P, entry: &QueuedMsg) {
    let mut acc = entry
        .originals
        .last()
        .expect("refold needs originals")
        .clone();
    for m in entry.originals.iter().rev().skip(1) {
        acc = p.combine(&acc, m);
    }
    assert_eq!(
        acc,
        entry.msg,
        "combiner contract violated: re-folding node {}'s {} messages in reverse order \
         yields a different survivor — Program::combine is not associative/commutative",
        entry.from,
        entry.originals.len()
    );
}

/// Topology-derived routing for the simulator, cached per root
/// executor and shared with every sub-executor (see [`crate::plan`]):
/// the neighbor → edge-id maps and the directed-edge receiver table.
/// Both are pure functions of the endpoint list, so reuse is
/// semantics-invisible (contract "plan reuse" note in [`crate::exec`]).
struct SimTopo {
    edge_of: Vec<HashMap<NodeId, EdgeId>>,
    /// Receiver of each directed edge `2 * edge_id + dir` (`dir` 0 =
    /// `u → v`), the queue-index convention shared with `engine::Csr`.
    receivers: Vec<NodeId>,
}

impl SimTopo {
    fn build(graph: &Graph) -> Self {
        let mut edge_of: Vec<HashMap<NodeId, EdgeId>> = vec![HashMap::new(); graph.n()];
        let mut receivers: Vec<NodeId> = Vec::with_capacity(2 * graph.m());
        for (id, e) in graph.edges().iter().enumerate() {
            edge_of[e.u].entry(e.v).or_insert(id);
            edge_of[e.v].entry(e.u).or_insert(id);
            receivers.push(e.v);
            receivers.push(e.u);
        }
        SimTopo { edge_of, receivers }
    }
}

/// Per-run scratch kept across runs (epoch-free: every list is left or
/// made empty at run start, so only capacity survives). Part of the
/// run-session layer: a composite algorithm's hundreds of sub-runs
/// reuse these instead of reallocating them.
#[derive(Default)]
struct SimScratch {
    staged: Vec<(NodeId, Message)>,
    charged_list: Vec<usize>,
    carry: Vec<NodeId>,
    delivered: Vec<(NodeId, ())>,
    still_charged: Vec<usize>,
    next_carry: Vec<NodeId>,
    active_scratch: Vec<NodeId>,
    /// Record-mode per-directed-edge delivery counters (zero-filled at
    /// the start of each recording run).
    per_directed: Vec<u64>,
}

/// The CONGEST network simulator.
///
/// Holds per-directed-edge FIFO queues and executes [`Program`]s in
/// synchronous rounds. Cumulative statistics over all runs are kept in
/// [`Simulator::total`], so a composite algorithm (an orchestration of
/// several program runs with free local computation in between) is
/// charged the sum of its phases, matching the paper's accounting.
///
/// This is the *reference* engine: simple, sequential, and the
/// semantics against which the parallel engine (`crates/engine`) is
/// property-tested for bit-identical behavior. In particular it is the
/// semantics **oracle for frontier scheduling** (clause 5 of the
/// [`Executor`] contract): each round's active set is built from the
/// directed edges that delivered a message this round plus the
/// non-quiescent carryover from the previous round, and only active
/// nodes have [`Program::round`] invoked. Per-round work is therefore
/// proportional to the frontier and the message volume, not to `n` or
/// `m` — while outputs and [`RunStats`] are bit-identical to a dense
/// every-node-every-round schedule for activation-correct programs.
pub struct Simulator<'g> {
    graph: &'g Graph,
    cap: usize,
    max_rounds: u64,
    validate_activation: bool,
    record_metrics: bool,
    time_phases: bool,
    total: RunStats,
    frontier: FrontierStats,
    /// Topology-derived routing, shared with sub-executors through
    /// `plans`.
    topo: Arc<SimTopo>,
    plans: Arc<TopoCache<SimTopo>>,
    /// Arena storage recycled across runs ([`crate::slab`]): the entry
    /// pool, the per-directed-edge queue headers, the charged flags,
    /// and the per-node inboxes. All empty between runs — quiescence
    /// drains every queue — but they keep their high-water capacity, so
    /// the later phases of a composite algorithm stage and deliver
    /// without allocating.
    slab: Slab<QueuedMsg>,
    heads: Vec<EdgeQueue>,
    charged: Vec<bool>,
    inboxes: Vec<Vec<(NodeId, Message)>>,
    scratch: SimScratch,
    last_report: Option<RunReport>,
    node_stats: Option<NodeStats>,
    trace: Option<SharedTraceSink>,
    wall_total: PhaseWall,
    setup_total_ns: u64,
}

impl<'g> std::fmt::Debug for Simulator<'g> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("cap", &self.cap)
            .field("total", &self.total)
            .finish()
    }
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with bandwidth cap 1 (the
    /// standard CONGEST bound: one message per edge per round).
    pub fn new(graph: &'g Graph) -> Self {
        Simulator::with_plans(graph, Arc::new(TopoCache::new()))
    }

    /// Shared-cache constructor used by [`Executor::sub`]: a composite
    /// algorithm's sub-executors look their routing tables up in the
    /// root's plan cache instead of rebuilding them per sub-graph.
    fn with_plans(graph: &'g Graph, plans: Arc<TopoCache<SimTopo>>) -> Self {
        let topo = plans.get_or_build(graph, SimTopo::build);
        Simulator {
            graph,
            cap: 1,
            max_rounds: 50_000_000,
            validate_activation: false,
            record_metrics: false,
            time_phases: false,
            total: RunStats::default(),
            frontier: FrontierStats::default(),
            topo,
            plans,
            slab: Slab::new(),
            heads: vec![EdgeQueue::EMPTY; 2 * graph.m()],
            charged: vec![false; 2 * graph.m()],
            inboxes: vec![Vec::new(); graph.n()],
            scratch: SimScratch::default(),
            last_report: None,
            node_stats: None,
            trace: None,
            wall_total: PhaseWall::default(),
            setup_total_ns: 0,
        }
    }

    /// The underlying graph (with the graph's own lifetime, so the
    /// reference can outlive a borrow of the simulator).
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Messages allowed per directed edge per round.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Sets the bandwidth cap (`>= 1`). Useful for "CONGEST with larger
    /// messages" ablations.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn set_cap(&mut self, cap: usize) {
        assert!(cap >= 1, "bandwidth cap must be at least 1");
        self.cap = cap;
    }

    /// Sets the livelock guard (default 50 million rounds).
    pub fn set_max_rounds(&mut self, max_rounds: u64) {
        self.max_rounds = max_rounds;
    }

    /// Enables the dense-validation mode (off by default; inherited by
    /// sub-executors): the activation-contract validator plus the
    /// combiner-contract validator.
    ///
    /// In validation mode every round is a **dense** sweep: nodes the
    /// frontier scheduler would skip are *also* ticked, with an empty
    /// inbox, and the run panics if such a node stages a send or stops
    /// being quiescent — the two schedule-observable ways a program can
    /// violate activation correctness (see [`Program`]). A program that
    /// passes a validated run behaves identically under frontier and
    /// dense scheduling, except for deliberate output-only bookkeeping
    /// such as counting its own invocations (which the validator cannot
    /// and does not check).
    ///
    /// Validation additionally audits declared combiners (contract
    /// clause 7): every queue entry keeps the logical messages it
    /// absorbed, and at delivery the merge is re-folded in reverse
    /// order — a non-associative or non-commutative
    /// [`Program::combine`] yields a different survivor and panics. A
    /// merge that changes the combining key panics immediately at
    /// enqueue. Costs the dense `rounds × n` schedule plus the retained
    /// originals — meant for tests, not sweeps.
    pub fn set_validate_activation(&mut self, validate: bool) {
        self.validate_activation = validate;
    }

    /// Enables or disables congestion instrumentation (per-round
    /// message/depth/active histograms, hot edges, per-phase wall
    /// breakdown), the simulator-side mirror of the parallel engine's
    /// recording. Off by default; observer-neutral (contract clause 8).
    pub fn set_record_metrics(&mut self, record: bool) {
        self.record_metrics = record;
    }

    /// Enables per-phase wall sampling on its own — the cheap slice of
    /// metrics recording (a few clock reads per round, no `O(m)`
    /// scans), enough to populate [`Simulator::wall_total`] and the
    /// process-wide breakdown accumulators in [`crate::plan`].
    /// Implied by metrics recording and tracing; observer-neutral
    /// (contract clause 8).
    pub fn set_time_phases(&mut self, time: bool) {
        self.time_phases = time;
    }

    /// Instrumentation from the most recent run, if
    /// [`Simulator::set_record_metrics`] was enabled. The deterministic
    /// fields are bit-identical to the parallel engine's report for the
    /// same run.
    pub fn last_report(&self) -> Option<&RunReport> {
        self.last_report.as_ref()
    }

    /// Cumulative per-phase wall time over every timed `run` driven
    /// directly on this simulator (sub-executors accumulate their own).
    /// Zero unless metrics recording or tracing was enabled.
    pub fn wall_total(&self) -> PhaseWall {
        self.wall_total
    }

    /// Cumulative per-run setup wall (program construction plus
    /// scratch/arena acquisition, before the first delivery) over every
    /// run driven directly on this simulator. Always measured — it is
    /// two clock reads per run — so the setup floor is visible without
    /// enabling metrics recording.
    pub fn setup_total_ns(&self) -> u64 {
        self.setup_total_ns
    }

    /// Enables or disables per-node accounting (see
    /// [`Executor::set_record_node_stats`]). Enabling (re)allocates
    /// zeroed counters.
    pub fn set_record_node_stats(&mut self, record: bool) {
        self.node_stats = record.then(|| NodeStats::new(self.graph.n()));
    }

    /// Attaches (or detaches, with `None`) a profiling trace sink; one
    /// [`RoundTrace`] record is pushed per executed round. Inherited by
    /// sub-executors; observer-neutral (contract clause 8).
    pub fn set_trace(&mut self, sink: Option<SharedTraceSink>) {
        self.trace = sink;
    }

    /// Cumulative statistics over every run so far.
    pub fn total(&self) -> RunStats {
        self.total
    }

    /// Cumulative frontier-scheduling statistics over every run so far.
    pub fn frontier_total(&self) -> FrontierStats {
        self.frontier
    }

    /// Resets the cumulative statistics (e.g. between benchmark cases).
    pub fn reset_total(&mut self) {
        self.total = RunStats::default();
        self.frontier = FrontierStats::default();
    }

    /// Adds externally-accounted rounds to the cumulative counter (used
    /// by orchestrators that know a phase's cost analytically, e.g. when
    /// reusing a cached BFS tree would be re-built in a cold start).
    pub fn charge(&mut self, stats: RunStats) {
        self.total.absorb(stats);
    }

    /// Adds a sub-executor's frontier counters to the cumulative total.
    pub fn charge_frontier(&mut self, frontier: FrontierStats) {
        self.frontier.absorb(frontier);
    }

    /// Runs one program instance per node until global quiescence.
    ///
    /// `make` is called once per node, in node order, with the node id
    /// and the graph (for *local* initialization — a program must only
    /// inspect its own incident edges; the full reference is passed for
    /// ergonomic construction of e.g. shared configuration).
    ///
    /// Returns per-node outputs and this run's statistics; the same
    /// statistics are also accumulated into [`Simulator::total`].
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard.
    pub fn run<P, F>(&mut self, mut make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let t_setup = Instant::now();
        let n = self.graph.n();
        let topo = self.topo.clone();
        let mut programs: Vec<P> = (0..n).map(|v| make(v, self.graph)).collect();
        // queue index = 2 * edge_id + dir, dir 0 = u->v. Queue storage
        // is the persistent arena (left drained by the previous run's
        // quiescence, with its high-water capacity intact), moved out
        // of `self` for the duration of the run. The per-run scratch
        // lists are part of the same session arena: cleared, never
        // reallocated.
        let mut slab = std::mem::take(&mut self.slab);
        let mut heads = std::mem::take(&mut self.heads);
        let mut inboxes = std::mem::take(&mut self.inboxes);
        debug_assert!(heads.iter().all(EdgeQueue::is_empty));
        let SimScratch {
            mut staged,
            mut charged_list,
            mut carry,
            mut delivered,
            mut still_charged,
            mut next_carry,
            mut active_scratch,
            mut per_directed,
        } = std::mem::take(&mut self.scratch);
        staged.clear();
        charged_list.clear();
        carry.clear();
        delivered.clear();
        still_charged.clear();
        next_carry.clear();
        active_scratch.clear();
        let mut stats = RunStats::default();
        let mut frontier = FrontierStats::default();

        let queue_index = |edge_of: &Vec<HashMap<NodeId, EdgeId>>, from: NodeId, to: NodeId| {
            let e = *edge_of[from]
                .get(&to)
                .unwrap_or_else(|| panic!("no edge between {from} and {to}"));
            let edge = self.graph.edge(e);
            if edge.u == from {
                2 * e
            } else {
                2 * e + 1
            }
        };

        // Frontier bookkeeping. Invariant: `charged[qi]` ⇔ queue `qi`
        // is non-empty ⇔ `qi ∈ charged_list`. `carry` holds the nodes
        // that reported non-quiescent at their last activation
        // boundary, in ascending order.
        let receivers = &topo.receivers;
        let mut charged = std::mem::take(&mut self.charged);
        let mut charged_dirty = false;

        // Observability (contract clause 8: everything below is
        // read-only bookkeeping). Per-node counters are moved out of
        // `self` for the duration so the closures below can borrow
        // them alongside the graph.
        let record = self.record_metrics;
        let mut node_stats = self.node_stats.take();
        let trace_run = self
            .trace
            .as_ref()
            .map(|s| (s.clone(), s.lock().expect("trace sink").begin_run("sim")));
        let timed = record || trace_run.is_some() || self.time_phases;
        if record {
            per_directed.clear();
            per_directed.resize(2 * self.graph.m(), 0);
        }
        let mut hist_msgs: Vec<u64> = Vec::new();
        let mut hist_depth: Vec<u64> = Vec::new();
        let mut hist_active: Vec<u64> = Vec::new();
        let mut wall = PhaseWall::default();
        let setup_ns = t_setup.elapsed().as_nanos() as u64;
        self.setup_total_ns += setup_ns;
        crate::plan::add_setup_ns(setup_ns);

        // init
        let validate = self.validate_activation;
        for (v, p) in programs.iter_mut().enumerate() {
            let mut ctx = Ctx::new(v, n, 0, self.graph.neighbors(v), &mut staged);
            p.init(&mut ctx);
            for (to, msg) in staged.drain(..) {
                let qi = queue_index(&topo.edge_of, v, to);
                stats.messages += 1;
                if let Some(ns) = node_stats.as_mut() {
                    ns.sent[v] += 1;
                }
                if stage_message(&mut slab, &mut heads[qi], qi, &*p, v, msg, validate) {
                    stats.messages_combined += 1;
                } else if !charged[qi] {
                    charged[qi] = true;
                    charged_list.push(qi);
                    charged_dirty = true;
                }
            }
            if !p.is_quiescent() {
                carry.push(v);
            }
        }

        loop {
            // Contract clause 6: charged edges empty ⇔ all queues
            // empty; carry empty ⇔ every program quiescent.
            if charged_list.is_empty() && carry.is_empty() {
                break;
            }
            stats.rounds += 1;
            if stats.rounds > self.max_rounds {
                panic!(
                    "CONGEST run exceeded {} rounds — livelocked program?",
                    self.max_rounds
                );
            }
            // Deliver up to `cap` messages per charged directed edge, in
            // (receiver, directed id) order: per node that is ascending
            // directed id — exactly the dense delivery loop's per-inbox
            // order (clause 4). Leftover charged edges stay sorted, so
            // re-sort only after fresh sends were appended.
            let t_deliver = timed.then(Instant::now);
            if charged_dirty {
                charged_list.sort_unstable_by_key(|&qi| (receivers[qi], qi));
                charged_dirty = false;
            }
            delivered.clear();
            still_charged.clear();
            let mut round_delivered: u64 = 0;
            for &qi in &charged_list {
                let target = receivers[qi];
                if delivered.last().map(|&(v, ())| v) != Some(target) {
                    delivered.push((target, ()));
                }
                let mut popped: u64 = 0;
                for _ in 0..self.cap {
                    match slab.pop(&mut heads[qi], qi) {
                        Some((_, entry)) => {
                            if validate && entry.originals.len() > 1 {
                                refold_check(&programs[entry.from], &entry);
                            }
                            inboxes[target].push((entry.from, entry.msg));
                            popped += 1;
                        }
                        None => break,
                    }
                }
                round_delivered += popped;
                if record && popped > 0 {
                    per_directed[qi] += popped;
                }
                if let Some(ns) = node_stats.as_mut() {
                    ns.delivered[target] += popped;
                }
                if heads[qi].is_empty() {
                    charged[qi] = false;
                } else {
                    still_charged.push(qi);
                }
            }
            std::mem::swap(&mut charged_list, &mut still_charged);
            let deliver_ns = t_deliver.map_or(0, |t| t.elapsed().as_nanos() as u64);

            // Active set = delivered-to nodes ∪ non-quiescent carryover
            // (clause 5, via the shared merge in `exec`).
            let t_compute = timed.then(Instant::now);
            next_carry.clear();
            let mut active_count: u64 = 0;
            let round_now = stats.rounds;
            let node_stats_ref = &mut node_stats;
            let mut run_node = |v: NodeId, active: bool| {
                let p = &mut programs[v];
                let mut ctx = Ctx::new(v, n, round_now, self.graph.neighbors(v), &mut staged);
                p.round(&mut ctx, &inboxes[v]);
                if !active {
                    // Validation-only path: this node would have been
                    // skipped; its tick must have been a no-op.
                    assert!(
                        staged.is_empty(),
                        "activation contract violated: quiescent node {v} staged a send \
                         in a round with an empty inbox (round {round_now})"
                    );
                    assert!(
                        p.is_quiescent(),
                        "activation contract violated: node {v} stopped being quiescent \
                         without receiving a message (round {round_now})"
                    );
                    return;
                }
                active_count += 1;
                if let Some(ns) = node_stats_ref.as_mut() {
                    ns.invocations[v] += 1;
                }
                for (to, msg) in staged.drain(..) {
                    let qi = queue_index(&topo.edge_of, v, to);
                    stats.messages += 1;
                    if let Some(ns) = node_stats_ref.as_mut() {
                        ns.sent[v] += 1;
                    }
                    if stage_message(&mut slab, &mut heads[qi], qi, &*p, v, msg, validate) {
                        stats.messages_combined += 1;
                    } else if !charged[qi] {
                        charged[qi] = true;
                        charged_list.push(qi);
                        charged_dirty = true;
                    }
                }
                if !p.is_quiescent() {
                    next_carry.push(v);
                }
            };
            if self.validate_activation {
                // Dense sweep: tick skipped nodes too, asserting they
                // are no-ops (see `set_validate_activation`).
                active_scratch.clear();
                crate::exec::for_each_active(&delivered, &carry, (), |v, ()| {
                    active_scratch.push(v)
                });
                let mut next_active = 0usize;
                for v in 0..n {
                    let active = active_scratch.get(next_active) == Some(&v);
                    if active {
                        next_active += 1;
                    }
                    run_node(v, active);
                }
            } else {
                crate::exec::for_each_active(&delivered, &carry, (), |v, ()| run_node(v, true));
            }
            std::mem::swap(&mut carry, &mut next_carry);
            frontier.invocations += active_count;
            frontier.peak_active = frontier.peak_active.max(active_count);
            for &(v, ()) in &delivered {
                inboxes[v].clear();
            }
            let compute_ns = t_compute.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if timed {
                wall.deliver_ns += deliver_ns;
                wall.compute_ns += compute_ns;
            }
            if record {
                hist_msgs.push(round_delivered);
                // At a round boundary every non-empty queue is in
                // `charged_list` (the invariant above), so the max over
                // it is the max over all 2m queues — the engine's
                // "depth after this round's sends".
                hist_depth.push(
                    charged_list
                        .iter()
                        .map(|&qi| heads[qi].len() as u64)
                        .max()
                        .unwrap_or(0),
                );
                hist_active.push(active_count);
            }
            if let Some((sink, run_id)) = trace_run.as_ref() {
                sink.lock().expect("trace sink").push_round(
                    *run_id,
                    RoundTrace {
                        round: stats.rounds,
                        delivered: round_delivered,
                        active: active_count,
                        deliver_ns,
                        compute_ns,
                        barrier_ns: 0,
                    },
                );
            }
        }

        // Quiescence drained every queue; hand the arena (entry pool,
        // headers, flags, inboxes, scratch lists — all at high-water
        // capacity) back to `self` for the next run.
        self.slab = slab;
        self.heads = heads;
        self.charged = charged;
        self.inboxes = inboxes;
        self.scratch = SimScratch {
            staged,
            charged_list,
            carry,
            delivered,
            still_charged,
            next_carry,
            active_scratch,
            per_directed,
        };
        frontier.rounds = stats.rounds;
        self.total.absorb(stats);
        self.frontier.absorb(frontier);
        self.node_stats = node_stats;
        self.wall_total.absorb(wall);
        if timed {
            crate::plan::add_phase_wall_ns(wall.deliver_ns, wall.compute_ns, wall.barrier_ns);
        }
        if record {
            self.last_report = Some(RunReport {
                rounds: stats.rounds,
                total_messages: stats.messages,
                messages_delivered: stats.messages_delivered(),
                messages_combined: stats.messages_combined,
                messages_per_round: hist_msgs,
                max_queue_depth_per_round: hist_depth,
                active_per_round: hist_active,
                hot_edges: RunReport::rank_hot_edges(&self.scratch.per_directed),
                threads: 1,
                wall,
            });
        }
        (programs.into_iter().map(Program::finish).collect(), stats)
    }
}

impl<'g> Executor for Simulator<'g> {
    type Sub<'h> = Simulator<'h>;

    fn sub<'h>(&self, graph: &'h Graph) -> Simulator<'h> {
        // Sub-executors share the root's topology-plan cache: spawning
        // a sub on a previously-seen topology reuses its routing tables
        // instead of rebuilding the `O(n + m)` hash maps.
        let mut sub = Simulator::with_plans(graph, self.plans.clone());
        sub.cap = self.cap;
        sub.max_rounds = self.max_rounds;
        sub.validate_activation = self.validate_activation;
        sub.record_metrics = self.record_metrics;
        sub.time_phases = self.time_phases;
        if self.node_stats.is_some() {
            sub.set_record_node_stats(true);
        }
        sub.trace = self.trace.clone();
        sub
    }

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn cap(&self) -> usize {
        self.cap
    }

    fn set_cap(&mut self, cap: usize) {
        Simulator::set_cap(self, cap)
    }

    fn set_max_rounds(&mut self, max_rounds: u64) {
        Simulator::set_max_rounds(self, max_rounds)
    }

    fn total(&self) -> RunStats {
        self.total
    }

    fn frontier_total(&self) -> FrontierStats {
        self.frontier
    }

    fn reset_total(&mut self) {
        Simulator::reset_total(self)
    }

    fn charge(&mut self, stats: RunStats) {
        Simulator::charge(self, stats)
    }

    fn charge_frontier(&mut self, frontier: FrontierStats) {
        Simulator::charge_frontier(self, frontier)
    }

    fn set_record_node_stats(&mut self, record: bool) {
        Simulator::set_record_node_stats(self, record)
    }

    fn node_stats(&self) -> Option<&NodeStats> {
        self.node_stats.as_ref()
    }

    fn charge_node_stats(&mut self, other: &NodeStats) {
        if let Some(ns) = self.node_stats.as_mut() {
            ns.absorb(other);
        }
    }

    fn run<P, F>(&mut self, make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        Simulator::run(self, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node sends its id to all neighbors once; everyone records
    /// what it hears.
    struct Hello {
        heard: Vec<NodeId>,
    }

    impl Program for Hello {
        type Output = Vec<NodeId>;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_all(Message::words(&[ctx.node() as u64]));
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            for (from, msg) in inbox {
                assert_eq!(msg.word(0), *from as u64);
                self.heard.push(*from);
            }
        }
        fn finish(self) -> Vec<NodeId> {
            self.heard
        }
    }

    #[test]
    fn hello_exchanges_take_one_round() {
        let g = generators::cycle(6, 1);
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Hello { heard: Vec::new() });
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages, 2 * g.m() as u64);
        for (v, heard) in out.iter().enumerate() {
            let mut expect: Vec<NodeId> = g.neighbors(v).iter().map(|&(u, _, _)| u).collect();
            let mut got = heard.clone();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    /// Node 0 sends K messages to node 1 over the single edge; with
    /// cap=1 this must take exactly K rounds.
    struct Burst {
        k: usize,
        received: usize,
    }

    impl Program for Burst {
        type Output = usize;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[i as u64]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            self.received += inbox.len();
        }
        fn finish(self) -> usize {
            self.received
        }
    }

    #[test]
    fn bandwidth_cap_charges_pipelining() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(
            stats.rounds, 10,
            "10 messages over one edge at cap 1 = 10 rounds"
        );
        assert_eq!(out[1], 10);

        let mut sim2 = Simulator::new(&g);
        sim2.set_cap(5);
        let (_, stats2) = sim2.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats2.rounds, 2, "cap 5 halves the rounds");
    }

    #[test]
    fn totals_accumulate_across_runs() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.run(|_, _| Burst { k: 3, received: 0 });
        sim.run(|_, _| Burst { k: 4, received: 0 });
        assert_eq!(sim.total().rounds, 7);
        sim.reset_total();
        assert_eq!(sim.total(), RunStats::default());
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn livelock_guard_fires() {
        struct Chatter;
        impl Program for Chatter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[0]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                let senders: Vec<NodeId> = inbox.iter().map(|&(from, _)| from).collect();
                for from in senders {
                    ctx.send(from, Message::words(&[0]));
                }
            }
            fn finish(self) {}
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_max_rounds(100);
        sim.run(|_, _| Chatter);
    }

    #[test]
    fn non_quiescent_program_keeps_running() {
        /// Counts 5 silent rounds then stops.
        struct Timer {
            left: u32,
        }
        impl Program for Timer {
            type Output = u32;
            fn init(&mut self, _ctx: &mut Ctx<'_>) {}
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                self.left = self.left.saturating_sub(1);
            }
            fn is_quiescent(&self) -> bool {
                self.left == 0
            }
            fn finish(self) -> u32 {
                self.left
            }
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Timer { left: 5 });
        assert_eq!(stats.rounds, 5);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn frontier_skips_idle_nodes() {
        // Burst: node 0 is active only through init (it never receives
        // and is quiescent); node 1 receives in each of the 10 rounds.
        // A dense scheduler would execute 20 invocations; the frontier
        // schedule executes 10 with a peak active set of 1 — while the
        // outputs and RunStats stay those of the dense schedule.
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats.rounds, 10);
        assert_eq!(out[1], 10);
        let f = sim.frontier_total();
        assert_eq!(f.invocations, 10, "only the receiver is scheduled");
        assert_eq!(f.peak_active, 1);
        assert_eq!(f.rounds, stats.rounds);
        assert_eq!(f.mean_active(), 1.0);
        sim.reset_total();
        assert_eq!(sim.frontier_total(), FrontierStats::default());
    }

    #[test]
    fn non_quiescent_carryover_is_scheduled_every_round() {
        /// Counts 3 silent rounds then stops (same shape as Timer).
        struct Countdown {
            left: u32,
        }
        impl Program for Countdown {
            type Output = u32;
            fn init(&mut self, _ctx: &mut Ctx<'_>) {}
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                self.left = self.left.saturating_sub(1);
            }
            fn is_quiescent(&self) -> bool {
                self.left == 0
            }
            fn finish(self) -> u32 {
                self.left
            }
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (_, stats) = sim.run(|_, _| Countdown { left: 3 });
        assert_eq!(stats.rounds, 3);
        let f = sim.frontier_total();
        assert_eq!(f.invocations, 6, "both nodes carry over while counting");
        assert_eq!(f.peak_active, 2);
    }

    #[test]
    #[should_panic(expected = "activation contract violated")]
    fn validator_catches_programs_that_rely_on_dense_ticks() {
        /// Claims quiescence but sends after 3 silent ticks — correct
        /// only under a dense schedule; the frontier scheduler would
        /// never give it those ticks.
        struct Sneaky {
            ticks: u32,
        }
        impl Program for Sneaky {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.node() == 0 {
                    // Keep rounds flowing: a 6-message burst to node 1.
                    for i in 0..6 {
                        ctx.send(1, Message::words(&[i]));
                    }
                }
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                if ctx.node() == 2 && inbox.is_empty() {
                    self.ticks += 1;
                    if self.ticks == 3 {
                        ctx.send_all(Message::words(&[99]));
                    }
                }
            }
            fn finish(self) {}
        }
        let g = generators::path(3, 1);
        let mut sim = Simulator::new(&g);
        sim.set_validate_activation(true);
        sim.run(|_, _| Sneaky { ticks: 0 });
    }

    #[test]
    fn validator_is_a_no_op_for_correct_programs() {
        let g = generators::erdos_renyi(24, 0.2, 9, 3);
        let mut plain = Simulator::new(&g);
        let (out_p, stats_p) = plain.run(|_, _| Hello { heard: Vec::new() });
        let mut validated = Simulator::new(&g);
        validated.set_validate_activation(true);
        let (out_v, stats_v) = validated.run(|_, _| Hello { heard: Vec::new() });
        assert_eq!(out_p, out_v);
        assert_eq!(stats_p, stats_v);
        assert_eq!(plain.frontier_total(), validated.frontier_total());
    }

    #[test]
    fn sub_executor_inherits_configuration() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let h = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_cap(5);
        let mut sub = Executor::sub(&sim, &h);
        assert_eq!(Executor::cap(&sub), 5);
        let (_, stats) = Executor::run(&mut sub, |_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats.rounds, 2, "inherited cap 5 halves the rounds");
        assert_eq!(
            sim.total(),
            RunStats::default(),
            "sub stats are independent"
        );
    }

    /// Node 0 stages `k` messages sharing one combining key in a single
    /// burst; the declared min-combiner must collapse them to one
    /// queued survivor (contract clause 7).
    struct KeyedBurst {
        k: u64,
        got: Vec<u64>,
    }

    impl Program for KeyedBurst {
        type Output = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[5, 100 - i]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            for (_, m) in inbox {
                self.got.push(m.word(1));
            }
        }
        fn combine_key(&self, msg: &Message) -> Option<crate::message::Word> {
            Some(msg.word(0))
        }
        fn combine(&self, queued: &Message, incoming: &Message) -> Message {
            Message::words(&[queued.word(0), queued.word(1).min(incoming.word(1))])
        }
        fn finish(self) -> Vec<u64> {
            self.got
        }
    }

    #[test]
    fn combiner_collapses_a_same_key_burst() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| KeyedBurst {
            k: 10,
            got: Vec::new(),
        });
        assert_eq!(stats.messages, 10, "every send is a logical message");
        assert_eq!(stats.messages_combined, 9, "nine merged into the first");
        assert_eq!(stats.messages_delivered(), 1);
        assert_eq!(stats.rounds, 1, "the backlog collapsed to one round");
        assert_eq!(out[1], vec![91], "survivor carries the key-wise min");
    }

    #[test]
    fn validation_mode_accepts_a_lawful_combiner() {
        let g = generators::path(4, 1);
        let mut plain = Simulator::new(&g);
        let (out_p, stats_p) = plain.run(|_, _| KeyedBurst {
            k: 6,
            got: Vec::new(),
        });
        let mut validated = Simulator::new(&g);
        validated.set_validate_activation(true);
        let (out_v, stats_v) = validated.run(|_, _| KeyedBurst {
            k: 6,
            got: Vec::new(),
        });
        assert_eq!(out_p, out_v);
        assert_eq!(stats_p, stats_v);
        assert!(stats_v.messages_combined > 0, "the combiner actually fired");
    }

    #[test]
    #[should_panic(expected = "not associative/commutative")]
    fn validation_mode_catches_an_order_sensitive_combiner() {
        /// Merge = word-wise difference: commutes with nothing.
        struct BadCombiner;
        impl Program for BadCombiner {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.node() == 0 {
                    ctx.send(1, Message::words(&[5, 40]));
                    ctx.send(1, Message::words(&[5, 15]));
                }
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {}
            fn combine_key(&self, msg: &Message) -> Option<crate::message::Word> {
                Some(msg.word(0))
            }
            fn combine(&self, queued: &Message, incoming: &Message) -> Message {
                Message::words(&[
                    queued.word(0),
                    queued.word(1).saturating_sub(incoming.word(1)),
                ])
            }
            fn finish(self) {}
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_validate_activation(true);
        sim.run(|_, _| BadCombiner);
    }

    #[test]
    #[should_panic(expected = "merge changed the combining key")]
    fn validation_mode_catches_a_key_unstable_combiner() {
        struct KeyDrifter;
        impl Program for KeyDrifter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.node() == 0 {
                    ctx.send(1, Message::words(&[5, 1]));
                    ctx.send(1, Message::words(&[5, 2]));
                }
            }
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {}
            fn combine_key(&self, msg: &Message) -> Option<crate::message::Word> {
                Some(msg.word(0))
            }
            fn combine(&self, queued: &Message, incoming: &Message) -> Message {
                Message::words(&[queued.word(0) + 1, queued.word(1) + incoming.word(1)])
            }
            fn finish(self) {}
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_validate_activation(true);
        sim.run(|_, _| KeyDrifter);
    }

    use lightgraph::generators;
    use lightgraph::Graph;
}
