//! The round loop: per-edge FIFO queues with a bandwidth cap.

use crate::message::Message;
use lightgraph::{EdgeId, Graph, NodeId, Weight};
use std::collections::{HashMap, VecDeque};

/// Round and message counts for one run (or accumulated over several —
/// see [`Simulator::total`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds executed.
    pub rounds: u64,
    /// Number of messages delivered.
    pub messages: u64,
}

impl RunStats {
    /// Adds another run's counts into this one.
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
    }
}

/// The per-node interface handed to [`Program`] callbacks.
///
/// A `Ctx` deliberately exposes only what a CONGEST processor knows
/// locally: its own id, `n`, the current round, and its incident edges.
pub struct Ctx<'a> {
    node: NodeId,
    n: usize,
    round: u64,
    neighbors: &'a [(NodeId, Weight, EdgeId)],
    staged: &'a mut Vec<(NodeId, Message)>,
}

impl<'a> Ctx<'a> {
    /// This processor's vertex id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of vertices in the network (globally known, as usual in
    /// CONGEST algorithm statements).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current round (0 during [`Program::init`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Incident edges: `(neighbor, weight, edge id)`.
    pub fn neighbors(&self) -> &[(NodeId, Weight, EdgeId)] {
        self.neighbors
    }

    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Enqueues `msg` on the edge towards `to`. The message is delivered
    /// in a later round, once the edge's earlier traffic has drained
    /// (at most [`Simulator::cap`] messages cross per round).
    ///
    /// # Panics
    /// Panics if `to` is not a neighbor — a CONGEST processor can only
    /// ever address its neighbors.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        debug_assert!(
            self.neighbors.iter().any(|&(v, _, _)| v == to),
            "node {} tried to send to non-neighbor {}",
            self.node,
            to
        );
        self.staged.push((to, msg));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, msg: Message) {
        let targets: Vec<NodeId> = self.neighbors.iter().map(|&(v, _, _)| v).collect();
        for v in targets {
            self.send(v, msg.clone());
        }
    }
}

/// A per-node state machine executed by the [`Simulator`].
///
/// One instance exists per vertex. `init` runs before the first round;
/// `round` runs every round with the messages delivered *this* round.
/// Execution stops when every edge queue is empty and every program
/// reports [`Program::is_quiescent`].
pub trait Program {
    /// Per-node result collected by [`Simulator::run`].
    type Output;

    /// Called once before round 1; may send messages.
    fn init(&mut self, ctx: &mut Ctx<'_>);

    /// Called once per round with this round's delivered messages
    /// (possibly empty), as `(sender, message)` pairs ordered
    /// deterministically by edge.
    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]);

    /// Whether this node is passive (waiting for messages). A node that
    /// intends to act in a future round despite an empty inbox must
    /// return `false`, otherwise the simulation may stop early.
    fn is_quiescent(&self) -> bool {
        true
    }

    /// Consumes the program and yields its output after the run.
    fn finish(self) -> Self::Output;
}

/// The CONGEST network simulator.
///
/// Holds per-directed-edge FIFO queues and executes [`Program`]s in
/// synchronous rounds. Cumulative statistics over all runs are kept in
/// [`Simulator::total`], so a composite algorithm (an orchestration of
/// several program runs with free local computation in between) is
/// charged the sum of its phases, matching the paper's accounting.
pub struct Simulator<'g> {
    graph: &'g Graph,
    cap: usize,
    max_rounds: u64,
    total: RunStats,
    edge_of: Vec<HashMap<NodeId, EdgeId>>,
}

impl<'g> std::fmt::Debug for Simulator<'g> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("cap", &self.cap)
            .field("total", &self.total)
            .finish()
    }
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with bandwidth cap 1 (the
    /// standard CONGEST bound: one message per edge per round).
    pub fn new(graph: &'g Graph) -> Self {
        let mut edge_of: Vec<HashMap<NodeId, EdgeId>> = vec![HashMap::new(); graph.n()];
        for (id, e) in graph.edges().iter().enumerate() {
            edge_of[e.u].entry(e.v).or_insert(id);
            edge_of[e.v].entry(e.u).or_insert(id);
        }
        Simulator { graph, cap: 1, max_rounds: 50_000_000, total: RunStats::default(), edge_of }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Messages allowed per directed edge per round.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Sets the bandwidth cap (`>= 1`). Useful for "CONGEST with larger
    /// messages" ablations.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn set_cap(&mut self, cap: usize) {
        assert!(cap >= 1, "bandwidth cap must be at least 1");
        self.cap = cap;
    }

    /// Sets the livelock guard (default 50 million rounds).
    pub fn set_max_rounds(&mut self, max_rounds: u64) {
        self.max_rounds = max_rounds;
    }

    /// Cumulative statistics over every run so far.
    pub fn total(&self) -> RunStats {
        self.total
    }

    /// Resets the cumulative statistics (e.g. between benchmark cases).
    pub fn reset_total(&mut self) {
        self.total = RunStats::default();
    }

    /// Adds externally-accounted rounds to the cumulative counter (used
    /// by orchestrators that know a phase's cost analytically, e.g. when
    /// reusing a cached BFS tree would be re-built in a cold start).
    pub fn charge(&mut self, stats: RunStats) {
        self.total.absorb(stats);
    }

    /// Runs one program instance per node until global quiescence.
    ///
    /// `make` is called once per node, in node order, with the node id
    /// and the graph (for *local* initialization — a program must only
    /// inspect its own incident edges; the full reference is passed for
    /// ergonomic construction of e.g. shared configuration).
    ///
    /// Returns per-node outputs and this run's statistics; the same
    /// statistics are also accumulated into [`Simulator::total`].
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard.
    pub fn run<P, F>(&mut self, mut make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = self.graph.n();
        let mut programs: Vec<P> = (0..n).map(|v| make(v, self.graph)).collect();
        // queue index = 2 * edge_id + dir, dir 0 = u->v.
        let mut queues: Vec<VecDeque<(NodeId, Message)>> = vec![VecDeque::new(); 2 * self.graph.m()];
        let mut stats = RunStats::default();
        let mut staged: Vec<(NodeId, Message)> = Vec::new();

        let queue_index = |edge_of: &Vec<HashMap<NodeId, EdgeId>>, from: NodeId, to: NodeId| {
            let e = *edge_of[from]
                .get(&to)
                .unwrap_or_else(|| panic!("no edge between {from} and {to}"));
            let edge = self.graph.edge(e);
            if edge.u == from {
                2 * e
            } else {
                2 * e + 1
            }
        };

        // init
        for (v, p) in programs.iter_mut().enumerate() {
            let mut ctx = Ctx {
                node: v,
                n,
                round: 0,
                neighbors: self.graph.neighbors(v),
                staged: &mut staged,
            };
            p.init(&mut ctx);
            for (to, msg) in staged.drain(..) {
                queues[queue_index(&self.edge_of, v, to)].push_back((v, msg));
            }
        }

        let mut inboxes: Vec<Vec<(NodeId, Message)>> = vec![Vec::new(); n];
        loop {
            let queues_empty = queues.iter().all(|q| q.is_empty());
            if queues_empty && programs.iter().all(|p| p.is_quiescent()) {
                break;
            }
            // Deliver up to `cap` messages per directed edge.
            stats.rounds += 1;
            if stats.rounds > self.max_rounds {
                panic!(
                    "CONGEST run exceeded {} rounds — livelocked program?",
                    self.max_rounds
                );
            }
            for (id, e) in self.graph.edges().iter().enumerate() {
                for (qi, target) in [(2 * id, e.v), (2 * id + 1, e.u)] {
                    for _ in 0..self.cap {
                        match queues[qi].pop_front() {
                            Some((from, msg)) => {
                                stats.messages += 1;
                                inboxes[target].push((from, msg));
                            }
                            None => break,
                        }
                    }
                }
            }
            for (v, p) in programs.iter_mut().enumerate() {
                let mut ctx = Ctx {
                    node: v,
                    n,
                    round: stats.rounds,
                    neighbors: self.graph.neighbors(v),
                    staged: &mut staged,
                };
                p.round(&mut ctx, &inboxes[v]);
                for (to, msg) in staged.drain(..) {
                    queues[queue_index(&self.edge_of, v, to)].push_back((v, msg));
                }
            }
            for inbox in &mut inboxes {
                inbox.clear();
            }
        }

        self.total.absorb(stats);
        (programs.into_iter().map(Program::finish).collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightgraph::generators;

    /// Each node sends its id to all neighbors once; everyone records
    /// what it hears.
    struct Hello {
        heard: Vec<NodeId>,
    }

    impl Program for Hello {
        type Output = Vec<NodeId>;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_all(Message::words(&[ctx.node() as u64]));
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            for (from, msg) in inbox {
                assert_eq!(msg.word(0), *from as u64);
                self.heard.push(*from);
            }
        }
        fn finish(self) -> Vec<NodeId> {
            self.heard
        }
    }

    #[test]
    fn hello_exchanges_take_one_round() {
        let g = generators::cycle(6, 1);
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Hello { heard: Vec::new() });
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages, 2 * g.m() as u64);
        for (v, heard) in out.iter().enumerate() {
            let mut expect: Vec<NodeId> =
                g.neighbors(v).iter().map(|&(u, _, _)| u).collect();
            let mut got = heard.clone();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    /// Node 0 sends K messages to node 1 over the single edge; with
    /// cap=1 this must take exactly K rounds.
    struct Burst {
        k: usize,
        received: usize,
    }

    impl Program for Burst {
        type Output = usize;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[i as u64]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            self.received += inbox.len();
        }
        fn finish(self) -> usize {
            self.received
        }
    }

    #[test]
    fn bandwidth_cap_charges_pipelining() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats.rounds, 10, "10 messages over one edge at cap 1 = 10 rounds");
        assert_eq!(out[1], 10);

        let mut sim2 = Simulator::new(&g);
        sim2.set_cap(5);
        let (_, stats2) = sim2.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats2.rounds, 2, "cap 5 halves the rounds");
    }

    #[test]
    fn totals_accumulate_across_runs() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.run(|_, _| Burst { k: 3, received: 0 });
        sim.run(|_, _| Burst { k: 4, received: 0 });
        assert_eq!(sim.total().rounds, 7);
        sim.reset_total();
        assert_eq!(sim.total(), RunStats::default());
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn livelock_guard_fires() {
        struct Chatter;
        impl Program for Chatter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[0]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                for (from, _) in inbox.to_vec() {
                    ctx.send(from, Message::words(&[0]));
                }
            }
            fn finish(self) {}
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_max_rounds(100);
        sim.run(|_, _| Chatter);
    }

    #[test]
    fn non_quiescent_program_keeps_running() {
        /// Counts 5 silent rounds then stops.
        struct Timer {
            left: u32,
        }
        impl Program for Timer {
            type Output = u32;
            fn init(&mut self, _ctx: &mut Ctx<'_>) {}
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                self.left = self.left.saturating_sub(1);
            }
            fn is_quiescent(&self) -> bool {
                self.left == 0
            }
            fn finish(self) -> u32 {
                self.left
            }
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Timer { left: 5 });
        assert_eq!(stats.rounds, 5);
        assert_eq!(out, vec![0, 0]);
    }

    use lightgraph::Graph;
}
