//! The sequential reference engine: per-edge FIFO queues with a
//! bandwidth cap.

use crate::exec::Executor;
use crate::message::Message;
use crate::program::{Ctx, Program, RunStats};
use lightgraph::{EdgeId, Graph, NodeId};
use std::collections::{HashMap, VecDeque};

/// The CONGEST network simulator.
///
/// Holds per-directed-edge FIFO queues and executes [`Program`]s in
/// synchronous rounds. Cumulative statistics over all runs are kept in
/// [`Simulator::total`], so a composite algorithm (an orchestration of
/// several program runs with free local computation in between) is
/// charged the sum of its phases, matching the paper's accounting.
///
/// This is the *reference* engine: simple, sequential, and the
/// semantics against which the parallel engine (`crates/engine`) is
/// property-tested for bit-identical behavior.
pub struct Simulator<'g> {
    graph: &'g Graph,
    cap: usize,
    max_rounds: u64,
    total: RunStats,
    edge_of: Vec<HashMap<NodeId, EdgeId>>,
}

impl<'g> std::fmt::Debug for Simulator<'g> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("cap", &self.cap)
            .field("total", &self.total)
            .finish()
    }
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with bandwidth cap 1 (the
    /// standard CONGEST bound: one message per edge per round).
    pub fn new(graph: &'g Graph) -> Self {
        let mut edge_of: Vec<HashMap<NodeId, EdgeId>> = vec![HashMap::new(); graph.n()];
        for (id, e) in graph.edges().iter().enumerate() {
            edge_of[e.u].entry(e.v).or_insert(id);
            edge_of[e.v].entry(e.u).or_insert(id);
        }
        Simulator {
            graph,
            cap: 1,
            max_rounds: 50_000_000,
            total: RunStats::default(),
            edge_of,
        }
    }

    /// The underlying graph (with the graph's own lifetime, so the
    /// reference can outlive a borrow of the simulator).
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Messages allowed per directed edge per round.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Sets the bandwidth cap (`>= 1`). Useful for "CONGEST with larger
    /// messages" ablations.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn set_cap(&mut self, cap: usize) {
        assert!(cap >= 1, "bandwidth cap must be at least 1");
        self.cap = cap;
    }

    /// Sets the livelock guard (default 50 million rounds).
    pub fn set_max_rounds(&mut self, max_rounds: u64) {
        self.max_rounds = max_rounds;
    }

    /// Cumulative statistics over every run so far.
    pub fn total(&self) -> RunStats {
        self.total
    }

    /// Resets the cumulative statistics (e.g. between benchmark cases).
    pub fn reset_total(&mut self) {
        self.total = RunStats::default();
    }

    /// Adds externally-accounted rounds to the cumulative counter (used
    /// by orchestrators that know a phase's cost analytically, e.g. when
    /// reusing a cached BFS tree would be re-built in a cold start).
    pub fn charge(&mut self, stats: RunStats) {
        self.total.absorb(stats);
    }

    /// Runs one program instance per node until global quiescence.
    ///
    /// `make` is called once per node, in node order, with the node id
    /// and the graph (for *local* initialization — a program must only
    /// inspect its own incident edges; the full reference is passed for
    /// ergonomic construction of e.g. shared configuration).
    ///
    /// Returns per-node outputs and this run's statistics; the same
    /// statistics are also accumulated into [`Simulator::total`].
    ///
    /// # Panics
    /// Panics if the run exceeds the `max_rounds` livelock guard.
    pub fn run<P, F>(&mut self, mut make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = self.graph.n();
        let mut programs: Vec<P> = (0..n).map(|v| make(v, self.graph)).collect();
        // queue index = 2 * edge_id + dir, dir 0 = u->v.
        let mut queues: Vec<VecDeque<(NodeId, Message)>> =
            vec![VecDeque::new(); 2 * self.graph.m()];
        let mut stats = RunStats::default();
        let mut staged: Vec<(NodeId, Message)> = Vec::new();

        let queue_index = |edge_of: &Vec<HashMap<NodeId, EdgeId>>, from: NodeId, to: NodeId| {
            let e = *edge_of[from]
                .get(&to)
                .unwrap_or_else(|| panic!("no edge between {from} and {to}"));
            let edge = self.graph.edge(e);
            if edge.u == from {
                2 * e
            } else {
                2 * e + 1
            }
        };

        // init
        for (v, p) in programs.iter_mut().enumerate() {
            let mut ctx = Ctx::new(v, n, 0, self.graph.neighbors(v), &mut staged);
            p.init(&mut ctx);
            for (to, msg) in staged.drain(..) {
                queues[queue_index(&self.edge_of, v, to)].push_back((v, msg));
            }
        }

        let mut inboxes: Vec<Vec<(NodeId, Message)>> = vec![Vec::new(); n];
        loop {
            let queues_empty = queues.iter().all(|q| q.is_empty());
            if queues_empty && programs.iter().all(|p| p.is_quiescent()) {
                break;
            }
            // Deliver up to `cap` messages per directed edge.
            stats.rounds += 1;
            if stats.rounds > self.max_rounds {
                panic!(
                    "CONGEST run exceeded {} rounds — livelocked program?",
                    self.max_rounds
                );
            }
            for (id, e) in self.graph.edges().iter().enumerate() {
                for (qi, target) in [(2 * id, e.v), (2 * id + 1, e.u)] {
                    for _ in 0..self.cap {
                        match queues[qi].pop_front() {
                            Some((from, msg)) => {
                                stats.messages += 1;
                                inboxes[target].push((from, msg));
                            }
                            None => break,
                        }
                    }
                }
            }
            for (v, p) in programs.iter_mut().enumerate() {
                let mut ctx = Ctx::new(v, n, stats.rounds, self.graph.neighbors(v), &mut staged);
                p.round(&mut ctx, &inboxes[v]);
                for (to, msg) in staged.drain(..) {
                    queues[queue_index(&self.edge_of, v, to)].push_back((v, msg));
                }
            }
            for inbox in &mut inboxes {
                inbox.clear();
            }
        }

        self.total.absorb(stats);
        (programs.into_iter().map(Program::finish).collect(), stats)
    }
}

impl<'g> Executor for Simulator<'g> {
    type Sub<'h> = Simulator<'h>;

    fn sub<'h>(&self, graph: &'h Graph) -> Simulator<'h> {
        let mut sub = Simulator::new(graph);
        sub.cap = self.cap;
        sub.max_rounds = self.max_rounds;
        sub
    }

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn cap(&self) -> usize {
        self.cap
    }

    fn set_cap(&mut self, cap: usize) {
        Simulator::set_cap(self, cap)
    }

    fn set_max_rounds(&mut self, max_rounds: u64) {
        Simulator::set_max_rounds(self, max_rounds)
    }

    fn total(&self) -> RunStats {
        self.total
    }

    fn reset_total(&mut self) {
        Simulator::reset_total(self)
    }

    fn charge(&mut self, stats: RunStats) {
        Simulator::charge(self, stats)
    }

    fn run<P, F>(&mut self, make: F) -> (Vec<P::Output>, RunStats)
    where
        P: Program + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        Simulator::run(self, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node sends its id to all neighbors once; everyone records
    /// what it hears.
    struct Hello {
        heard: Vec<NodeId>,
    }

    impl Program for Hello {
        type Output = Vec<NodeId>;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_all(Message::words(&[ctx.node() as u64]));
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            for (from, msg) in inbox {
                assert_eq!(msg.word(0), *from as u64);
                self.heard.push(*from);
            }
        }
        fn finish(self) -> Vec<NodeId> {
            self.heard
        }
    }

    #[test]
    fn hello_exchanges_take_one_round() {
        let g = generators::cycle(6, 1);
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Hello { heard: Vec::new() });
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages, 2 * g.m() as u64);
        for (v, heard) in out.iter().enumerate() {
            let mut expect: Vec<NodeId> = g.neighbors(v).iter().map(|&(u, _, _)| u).collect();
            let mut got = heard.clone();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    /// Node 0 sends K messages to node 1 over the single edge; with
    /// cap=1 this must take exactly K rounds.
    struct Burst {
        k: usize,
        received: usize,
    }

    impl Program for Burst {
        type Output = usize;
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node() == 0 {
                for i in 0..self.k {
                    ctx.send(1, Message::words(&[i as u64]));
                }
            }
        }
        fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
            self.received += inbox.len();
        }
        fn finish(self) -> usize {
            self.received
        }
    }

    #[test]
    fn bandwidth_cap_charges_pipelining() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(
            stats.rounds, 10,
            "10 messages over one edge at cap 1 = 10 rounds"
        );
        assert_eq!(out[1], 10);

        let mut sim2 = Simulator::new(&g);
        sim2.set_cap(5);
        let (_, stats2) = sim2.run(|_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats2.rounds, 2, "cap 5 halves the rounds");
    }

    #[test]
    fn totals_accumulate_across_runs() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.run(|_, _| Burst { k: 3, received: 0 });
        sim.run(|_, _| Burst { k: 4, received: 0 });
        assert_eq!(sim.total().rounds, 7);
        sim.reset_total();
        assert_eq!(sim.total(), RunStats::default());
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn livelock_guard_fires() {
        struct Chatter;
        impl Program for Chatter {
            type Output = ();
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_all(Message::words(&[0]));
            }
            fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
                let senders: Vec<NodeId> = inbox.iter().map(|&(from, _)| from).collect();
                for from in senders {
                    ctx.send(from, Message::words(&[0]));
                }
            }
            fn finish(self) {}
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_max_rounds(100);
        sim.run(|_, _| Chatter);
    }

    #[test]
    fn non_quiescent_program_keeps_running() {
        /// Counts 5 silent rounds then stops.
        struct Timer {
            left: u32,
        }
        impl Program for Timer {
            type Output = u32;
            fn init(&mut self, _ctx: &mut Ctx<'_>) {}
            fn round(&mut self, _ctx: &mut Ctx<'_>, _inbox: &[(NodeId, Message)]) {
                self.left = self.left.saturating_sub(1);
            }
            fn is_quiescent(&self) -> bool {
                self.left == 0
            }
            fn finish(self) -> u32 {
                self.left
            }
        }
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|_, _| Timer { left: 5 });
        assert_eq!(stats.rounds, 5);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn sub_executor_inherits_configuration() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let h = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g);
        sim.set_cap(5);
        let mut sub = Executor::sub(&sim, &h);
        assert_eq!(Executor::cap(&sub), 5);
        let (_, stats) = Executor::run(&mut sub, |_, _| Burst { k: 10, received: 0 });
        assert_eq!(stats.rounds, 2, "inherited cap 5 halves the rounds");
        assert_eq!(
            sim.total(),
            RunStats::default(),
            "sub stats are independent"
        );
    }

    use lightgraph::generators;
    use lightgraph::Graph;
}
