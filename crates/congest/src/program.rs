//! The engine-agnostic per-node interface.
//!
//! A CONGEST algorithm is written once against [`Program`] and [`Ctx`]
//! and can then be executed by any conforming engine: the sequential
//! [`Simulator`](crate::Simulator) in this crate, or the parallel
//! engine in `crates/engine`. Both must obey the same contract — see
//! [`Executor`](crate::Executor) — and produce bit-identical outputs
//! and statistics.

use crate::message::{Message, Word};
use lightgraph::{EdgeId, NodeId, Weight};

/// Round and message counts for one run (or accumulated over several —
/// see [`Executor::total`](crate::Executor::total)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds executed.
    pub rounds: u64,
    /// Number of logical messages sent (one per [`Ctx::send`]). Without
    /// a combiner every sent message is also delivered, so this equals
    /// the delivered count; with one (contract clause 7), the
    /// [`RunStats::messages_combined`] of them were merged into a
    /// co-queued message instead of crossing the edge individually.
    pub messages: u64,
    /// Messages absorbed by per-edge combining instead of being
    /// delivered individually (see [`Program::combine_key`]). Always 0
    /// for programs without a combiner.
    pub messages_combined: u64,
}

impl RunStats {
    /// Adds another run's counts into this one.
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.messages_combined += other.messages_combined;
    }

    /// Messages physically delivered to inboxes: every sent message
    /// that was not merged away by a combiner.
    pub fn messages_delivered(&self) -> u64 {
        self.messages - self.messages_combined
    }

    /// The difference `self - start` — phase accounting for composite
    /// algorithms (`let start = sim.total(); …; sim.total().since(start)`).
    pub fn since(&self, start: RunStats) -> RunStats {
        RunStats {
            rounds: self.rounds - start.rounds,
            messages: self.messages - start.messages,
            messages_combined: self.messages_combined - start.messages_combined,
        }
    }
}

/// Frontier-scheduling statistics for one run (or accumulated — see
/// [`Executor::frontier_total`](crate::Executor::frontier_total)).
///
/// Engines schedule a node in a round only while it is *active* (see
/// the activation contract in [`Executor`](crate::Executor)); these
/// counters expose how sparse that schedule actually was. They are
/// bookkeeping about the engine, not about the simulated algorithm:
/// `RunStats` are contract-pinned and engine-identical, and so are
/// these (the active set is determined by delivered messages and
/// quiescence reports, both deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Number of [`Program::round`] invocations executed. A dense
    /// scheduler would execute `rounds * n`; the gap is the saved work.
    pub invocations: u64,
    /// Largest active-node count in any single round.
    pub peak_active: u64,
    /// Rounds actually executed by the scheduler. Unlike
    /// `RunStats::rounds` totals, this never includes analytically
    /// charged rounds (see [`Executor::charge`](crate::Executor::charge)),
    /// so it is the honest denominator for [`FrontierStats::mean_active`].
    pub rounds: u64,
}

impl FrontierStats {
    /// Accumulates another run's counters (invocations and rounds add,
    /// peaks max).
    pub fn absorb(&mut self, other: FrontierStats) {
        self.invocations += other.invocations;
        self.peak_active = self.peak_active.max(other.peak_active);
        self.rounds += other.rounds;
    }

    /// Mean active-node count per executed round.
    pub fn mean_active(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.invocations as f64 / self.rounds as f64
        }
    }
}

/// The per-node interface handed to [`Program`] callbacks.
///
/// A `Ctx` deliberately exposes only what a CONGEST processor knows
/// locally: its own id, `n`, the current round, and its incident edges.
pub struct Ctx<'a> {
    node: NodeId,
    n: usize,
    round: u64,
    neighbors: &'a [(NodeId, Weight, EdgeId)],
    staged: &'a mut Vec<(NodeId, Message)>,
}

impl<'a> Ctx<'a> {
    /// Creates a context. Only execution engines call this; programs
    /// always receive a ready-made `Ctx`.
    ///
    /// `staged` collects this node's outgoing `(to, message)` pairs for
    /// the engine to drain after the callback returns.
    #[doc(hidden)]
    pub fn new(
        node: NodeId,
        n: usize,
        round: u64,
        neighbors: &'a [(NodeId, Weight, EdgeId)],
        staged: &'a mut Vec<(NodeId, Message)>,
    ) -> Self {
        Ctx {
            node,
            n,
            round,
            neighbors,
            staged,
        }
    }

    /// This processor's vertex id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of vertices in the network (globally known, as usual in
    /// CONGEST algorithm statements).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current round (0 during [`Program::init`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Incident edges: `(neighbor, weight, edge id)`.
    pub fn neighbors(&self) -> &[(NodeId, Weight, EdgeId)] {
        self.neighbors
    }

    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Enqueues `msg` on the edge towards `to`. The message is delivered
    /// in a later round, once the edge's earlier traffic has drained
    /// (at most [`Executor::cap`](crate::Executor::cap) messages cross
    /// per round).
    ///
    /// # Panics
    /// Panics if `to` is not a neighbor — a CONGEST processor can only
    /// ever address its neighbors.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        debug_assert!(
            self.neighbors.iter().any(|&(v, _, _)| v == to),
            "node {} tried to send to non-neighbor {}",
            self.node,
            to
        );
        self.staged.push((to, msg));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, msg: Message) {
        let targets: Vec<NodeId> = self.neighbors.iter().map(|&(v, _, _)| v).collect();
        for v in targets {
            self.send(v, msg.clone());
        }
    }
}

/// A per-node state machine executed by an [`Executor`](crate::Executor).
///
/// One instance exists per vertex. `init` runs before the first round;
/// `round` runs in every round in which the node is *active* (see
/// below). Execution stops when every edge queue is empty and every
/// program reports [`Program::is_quiescent`].
///
/// # Activation contract
///
/// Engines schedule rounds by frontier: a node is **active** in a round
/// iff it received at least one message this round, or it reported
/// `is_quiescent() == false` at its previous activation boundary (after
/// `init`, or after its most recent `round` call). `round` is invoked
/// exactly for the active nodes; inactive nodes are skipped entirely.
///
/// For skipping to be unobservable, every program must be
/// **activation-correct**: while `is_quiescent()` returns `true`, a
/// `round` call with an empty inbox must be a no-op — no state change,
/// no sends. Put differently, a quiescent node may only be woken by a
/// message; a node that intends to act on its own in a future round
/// (timers, counters, multi-round holds) must report `false` from
/// `is_quiescent` until it is done, which keeps it scheduled every
/// round exactly as a dense scheduler would.
///
/// `is_quiescent` is consulted once after `init` (for every node) and
/// once after each `round` invocation (for that node); it takes `&self`
/// and must be a pure function of the program state — the cached answer
/// of a skipped node is reused until its next activation.
///
/// # Per-edge message combining (opt-in)
///
/// A program whose message streams carry *superseding* information —
/// relaxation-style distance updates, idempotent marks, monotone table
/// pushes — may declare a **combiner** by overriding
/// [`Program::combine_key`] and [`Program::combine`]. When a staged
/// message's key matches a message still queued (undelivered) on the
/// same directed edge, engines merge the two in place instead of
/// queueing a second copy; the merged message keeps the earlier
/// message's queue position (see clause 7 of the
/// [`Executor`](crate::Executor) contract). This shrinks delivered
/// message volume — and, when the bandwidth cap was the bottleneck,
/// the backlog and therefore the round count — at the source.
///
/// A declared combiner must be **combine-correct**:
///
/// * `combine` is associative and commutative per key, and
///   *key-stable*: `combine_key(combine(a, b)) == combine_key(a)`
///   whenever `combine_key(a) == combine_key(b)`. Both are pure
///   functions of the message (and immutable program configuration).
/// * the merged message must *dominate* the messages it absorbed: the
///   program's final outputs must not depend on receiving the absorbed
///   messages individually. Canonically the merge keeps a componentwise
///   minimum/maximum, so delivering only the survivor leads the
///   receiver to the same fixed point.
///
/// Combining never affects programs that do not opt in, and it is
/// applied identically by every conforming engine, so outputs,
/// [`RunStats`], and [`FrontierStats`] remain bit-identical *across
/// engines*. Relative to an uncombined run of the same program: when
/// the cap does not bind (every same-round batch would have been
/// delivered together anyway), combining is observable only in
/// [`RunStats::messages_combined`]; when the cap binds, queues drain
/// in fewer rounds — the intended speedup — and a combine-correct
/// program reaches the same outputs along the compressed schedule.
/// The simulator's validation mode
/// ([`Simulator::set_validate_activation`](crate::Simulator::set_validate_activation))
/// re-folds every merged delivery in reverse order and panics when the
/// result differs — catching non-associative or non-commutative merges.
pub trait Program {
    /// Per-node result collected by [`Executor::run`](crate::Executor::run).
    type Output;

    /// Called once before round 1; may send messages.
    fn init(&mut self, ctx: &mut Ctx<'_>);

    /// Called in each round in which this node is active, with this
    /// round's delivered messages (possibly empty, when the node is
    /// carried over as non-quiescent), as `(sender, message)` pairs
    /// ordered deterministically by edge.
    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]);

    /// Whether this node is passive (waiting for messages). A node that
    /// intends to act in a future round despite an empty inbox must
    /// return `false`, otherwise it is skipped until the next message
    /// arrives (and the simulation may stop early). See the trait docs
    /// for the full activation contract.
    fn is_quiescent(&self) -> bool {
        true
    }

    /// Combining key for `msg` on its outgoing edge, or `None` (the
    /// default) to always deliver the message verbatim. Returning
    /// `Some(k)` opts the message into per-edge combining: if a message
    /// with the same key is still queued on the same directed edge, the
    /// two are merged with [`Program::combine`]. See the trait docs for
    /// the combine-correctness obligations.
    fn combine_key(&self, msg: &Message) -> Option<Word> {
        let _ = msg;
        None
    }

    /// Merges `incoming` into the co-queued `queued` message carrying
    /// the same [`Program::combine_key`]. Must be associative,
    /// commutative, and key-stable (see the trait docs); the default
    /// panics, so it must be overridden whenever `combine_key` can
    /// return `Some`.
    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        let _ = (queued, incoming);
        unreachable!("Program::combine must be overridden when combine_key returns Some")
    }

    /// Consumes the program and yields its output after the run.
    fn finish(self) -> Self::Output;
}
