//! The engine-agnostic per-node interface.
//!
//! A CONGEST algorithm is written once against [`Program`] and [`Ctx`]
//! and can then be executed by any conforming engine: the sequential
//! [`Simulator`](crate::Simulator) in this crate, or the parallel
//! engine in `crates/engine`. Both must obey the same contract — see
//! [`Executor`](crate::Executor) — and produce bit-identical outputs
//! and statistics.

use crate::message::Message;
use lightgraph::{EdgeId, NodeId, Weight};

/// Round and message counts for one run (or accumulated over several —
/// see [`Executor::total`](crate::Executor::total)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds executed.
    pub rounds: u64,
    /// Number of messages delivered.
    pub messages: u64,
}

impl RunStats {
    /// Adds another run's counts into this one.
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
    }
}

/// Frontier-scheduling statistics for one run (or accumulated — see
/// [`Executor::frontier_total`](crate::Executor::frontier_total)).
///
/// Engines schedule a node in a round only while it is *active* (see
/// the activation contract in [`Executor`](crate::Executor)); these
/// counters expose how sparse that schedule actually was. They are
/// bookkeeping about the engine, not about the simulated algorithm:
/// `RunStats` are contract-pinned and engine-identical, and so are
/// these (the active set is determined by delivered messages and
/// quiescence reports, both deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Number of [`Program::round`] invocations executed. A dense
    /// scheduler would execute `rounds * n`; the gap is the saved work.
    pub invocations: u64,
    /// Largest active-node count in any single round.
    pub peak_active: u64,
    /// Rounds actually executed by the scheduler. Unlike
    /// `RunStats::rounds` totals, this never includes analytically
    /// charged rounds (see [`Executor::charge`](crate::Executor::charge)),
    /// so it is the honest denominator for [`FrontierStats::mean_active`].
    pub rounds: u64,
}

impl FrontierStats {
    /// Accumulates another run's counters (invocations and rounds add,
    /// peaks max).
    pub fn absorb(&mut self, other: FrontierStats) {
        self.invocations += other.invocations;
        self.peak_active = self.peak_active.max(other.peak_active);
        self.rounds += other.rounds;
    }

    /// Mean active-node count per executed round.
    pub fn mean_active(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.invocations as f64 / self.rounds as f64
        }
    }
}

/// The per-node interface handed to [`Program`] callbacks.
///
/// A `Ctx` deliberately exposes only what a CONGEST processor knows
/// locally: its own id, `n`, the current round, and its incident edges.
pub struct Ctx<'a> {
    node: NodeId,
    n: usize,
    round: u64,
    neighbors: &'a [(NodeId, Weight, EdgeId)],
    staged: &'a mut Vec<(NodeId, Message)>,
}

impl<'a> Ctx<'a> {
    /// Creates a context. Only execution engines call this; programs
    /// always receive a ready-made `Ctx`.
    ///
    /// `staged` collects this node's outgoing `(to, message)` pairs for
    /// the engine to drain after the callback returns.
    #[doc(hidden)]
    pub fn new(
        node: NodeId,
        n: usize,
        round: u64,
        neighbors: &'a [(NodeId, Weight, EdgeId)],
        staged: &'a mut Vec<(NodeId, Message)>,
    ) -> Self {
        Ctx {
            node,
            n,
            round,
            neighbors,
            staged,
        }
    }

    /// This processor's vertex id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of vertices in the network (globally known, as usual in
    /// CONGEST algorithm statements).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current round (0 during [`Program::init`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Incident edges: `(neighbor, weight, edge id)`.
    pub fn neighbors(&self) -> &[(NodeId, Weight, EdgeId)] {
        self.neighbors
    }

    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Enqueues `msg` on the edge towards `to`. The message is delivered
    /// in a later round, once the edge's earlier traffic has drained
    /// (at most [`Executor::cap`](crate::Executor::cap) messages cross
    /// per round).
    ///
    /// # Panics
    /// Panics if `to` is not a neighbor — a CONGEST processor can only
    /// ever address its neighbors.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        debug_assert!(
            self.neighbors.iter().any(|&(v, _, _)| v == to),
            "node {} tried to send to non-neighbor {}",
            self.node,
            to
        );
        self.staged.push((to, msg));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, msg: Message) {
        let targets: Vec<NodeId> = self.neighbors.iter().map(|&(v, _, _)| v).collect();
        for v in targets {
            self.send(v, msg.clone());
        }
    }
}

/// A per-node state machine executed by an [`Executor`](crate::Executor).
///
/// One instance exists per vertex. `init` runs before the first round;
/// `round` runs in every round in which the node is *active* (see
/// below). Execution stops when every edge queue is empty and every
/// program reports [`Program::is_quiescent`].
///
/// # Activation contract
///
/// Engines schedule rounds by frontier: a node is **active** in a round
/// iff it received at least one message this round, or it reported
/// `is_quiescent() == false` at its previous activation boundary (after
/// `init`, or after its most recent `round` call). `round` is invoked
/// exactly for the active nodes; inactive nodes are skipped entirely.
///
/// For skipping to be unobservable, every program must be
/// **activation-correct**: while `is_quiescent()` returns `true`, a
/// `round` call with an empty inbox must be a no-op — no state change,
/// no sends. Put differently, a quiescent node may only be woken by a
/// message; a node that intends to act on its own in a future round
/// (timers, counters, multi-round holds) must report `false` from
/// `is_quiescent` until it is done, which keeps it scheduled every
/// round exactly as a dense scheduler would.
///
/// `is_quiescent` is consulted once after `init` (for every node) and
/// once after each `round` invocation (for that node); it takes `&self`
/// and must be a pure function of the program state — the cached answer
/// of a skipped node is reused until its next activation.
pub trait Program {
    /// Per-node result collected by [`Executor::run`](crate::Executor::run).
    type Output;

    /// Called once before round 1; may send messages.
    fn init(&mut self, ctx: &mut Ctx<'_>);

    /// Called in each round in which this node is active, with this
    /// round's delivered messages (possibly empty, when the node is
    /// carried over as non-quiescent), as `(sender, message)` pairs
    /// ordered deterministically by edge.
    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]);

    /// Whether this node is passive (waiting for messages). A node that
    /// intends to act in a future round despite an empty inbox must
    /// return `false`, otherwise it is skipped until the next message
    /// arrives (and the simulation may stop early). See the trait docs
    /// for the full activation contract.
    fn is_quiescent(&self) -> bool {
        true
    }

    /// Consumes the program and yields its output after the run.
    fn finish(self) -> Self::Output;
}
