//! Cross-executor topology-plan cache.
//!
//! Composite algorithms (SLT = tree + spanner + contractions) spawn
//! sub-executors on derived graphs and issue hundreds of sub-runs; PR 9
//! made the *message* path allocation-free, which left per-run and
//! per-sub-executor **setup** — routing tables, receiver maps, shard
//! locality — as the dominant cost of the small rows. This module holds
//! the shared piece of the run-session layer: a cache of structures
//! derivable from the input **topology alone** (node count plus the
//! ordered edge-endpoint list — explicitly *not* weights, which none of
//! the cached structures read), keyed by a topology fingerprint and
//! shared by every sub-executor spawned from one root executor.
//!
//! Reuse is semantics-invisible by the determinism contract
//! ([`crate::exec`], "plan reuse" note): observable behavior is a pure
//! function of `(graph, programs, cap)`, never of when or how often
//! derived structure was built. The cache therefore needs no
//! invalidation beyond identity — graphs are immutable for the life of
//! an executor borrowing them, and a different topology hashes to a
//! different key.
//!
//! # Fingerprint collisions
//!
//! Keys are `(n, m, fp₁, fp₂)` with two independent 64-bit
//! splitmix-fold streams over the endpoint list — 128 fingerprint bits.
//! A collision would require two distinct topologies with equal `n`,
//! `m`, and both streams; at the cache's size bound the probability is
//! on the order of 2⁻¹²⁸ · |cache|², far below hardware error rates.

use lightgraph::Graph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide setup wall accumulator: every executor (`Simulator`
/// and the parallel engine, root and sub alike) adds its per-run setup
/// wall — plan/arena acquisition and program construction — here, so a
/// driver can report the setup floor of a composite workload without
/// reaching into the sub-executors it spawns internally (`bench`'s
/// `setup_ms` column reads the delta around each workload). Wall-clock
/// only — never part of any deterministic quantity (contract clause 8).
static SETUP_WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Adds one run's setup wall (called by executors; see
/// [`setup_wall_ns`]).
pub fn add_setup_ns(ns: u64) {
    SETUP_WALL_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Cumulative process-wide executor setup wall, in nanoseconds.
pub fn setup_wall_ns() -> u64 {
    SETUP_WALL_NS.load(Ordering::Relaxed)
}

/// Process-wide per-phase wall accumulators (deliver, compute,
/// barrier), fed by every *timed* run (metrics or tracing enabled) of
/// every executor — the cross-sub-executor counterpart of
/// `Engine::wall_total` for breakdown reporting.
static PHASE_WALL_NS: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

/// Adds one timed run's `(deliver_ns, compute_ns, barrier_ns)`.
pub fn add_phase_wall_ns(deliver: u64, compute: u64, barrier: u64) {
    PHASE_WALL_NS[0].fetch_add(deliver, Ordering::Relaxed);
    PHASE_WALL_NS[1].fetch_add(compute, Ordering::Relaxed);
    PHASE_WALL_NS[2].fetch_add(barrier, Ordering::Relaxed);
}

/// Cumulative process-wide `(deliver_ns, compute_ns, barrier_ns)`.
pub fn phase_wall_ns() -> (u64, u64, u64) {
    (
        PHASE_WALL_NS[0].load(Ordering::Relaxed),
        PHASE_WALL_NS[1].load(Ordering::Relaxed),
        PHASE_WALL_NS[2].load(Ordering::Relaxed),
    )
}

/// Size bound: a pathological workload that churns unique topologies
/// (property tests sweep thousands of random graphs) must not grow the
/// cache without bound. On overflow the map is cleared — correctness is
/// unaffected (a miss rebuilds), and real composite algorithms touch
/// far fewer distinct topologies than this.
const CACHE_CAP: usize = 64;

/// `(n, m, fp₁, fp₂)` — see the module docs on collision odds.
pub type TopoKey = (usize, usize, u64, u64);

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The cache key for `graph`: a pure function of the topology (ordered
/// endpoint list), independent of edge weights.
pub fn topo_key(graph: &Graph) -> TopoKey {
    let mut s1: u64 = 0x243F_6A88_85A3_08D3; // pi digits; any fixed seeds do
    let mut s2: u64 = 0x1319_8A2E_0370_7344;
    let (mut fp1, mut fp2) = (0u64, 0u64);
    for e in graph.edges() {
        let word = ((e.u as u64) << 32) | e.v as u64;
        let mut a = s1 ^ word;
        fp1 = fp1.wrapping_add(splitmix(&mut a)).rotate_left(7);
        let mut b = s2 ^ word;
        fp2 = fp2.wrapping_add(splitmix(&mut b)).rotate_left(11);
        s1 = s1.wrapping_add(1);
        s2 = s2.wrapping_add(3);
    }
    (graph.n(), graph.m(), fp1, fp2)
}

/// A concurrent cache of topology-derived executor structure (`T`),
/// shared by a root executor and all its sub-executors via `Arc`.
///
/// The single correctness requirement on `T` is that it is derivable
/// from the topology key alone: node count and the ordered edge
/// endpoint list. Anything reading weights, program state, or executor
/// configuration must **not** be cached here.
pub struct TopoCache<T> {
    map: Mutex<HashMap<TopoKey, Arc<T>>>,
}

impl<T> Default for TopoCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TopoCache<T> {
    pub fn new() -> Self {
        TopoCache {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the cached structure for `graph`'s topology, building
    /// and inserting it on a miss. A poisoned lock (a builder panicked
    /// on another thread) degrades to an uncached build.
    pub fn get_or_build(&self, graph: &Graph, build: impl FnOnce(&Graph) -> T) -> Arc<T> {
        let key = topo_key(graph);
        let Ok(mut map) = self.map.lock() else {
            return Arc::new(build(graph));
        };
        if let Some(t) = map.get(&key) {
            return t.clone();
        }
        if map.len() >= CACHE_CAP {
            map.clear();
        }
        let t = Arc::new(build(graph));
        map.insert(key, t.clone());
        t
    }

    /// Number of distinct topologies currently cached (diagnostics and
    /// tests).
    pub fn cached(&self) -> usize {
        self.map.lock().map(|m| m.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightgraph::generators;

    #[test]
    fn same_topology_hits_regardless_of_weights() {
        let g1 = Graph::from_edges(3, [(0, 1, 5), (1, 2, 7)]).unwrap();
        let g2 = Graph::from_edges(3, [(0, 1, 9), (1, 2, 1)]).unwrap();
        assert_eq!(topo_key(&g1), topo_key(&g2));
        let cache: TopoCache<usize> = TopoCache::new();
        let a = cache.get_or_build(&g1, |g| g.n());
        let b = cache.get_or_build(&g2, |g| g.n());
        assert!(Arc::ptr_eq(&a, &b), "identical topology must hit");
        assert_eq!(cache.cached(), 1);
    }

    #[test]
    fn distinct_topologies_get_distinct_keys() {
        let mut keys = std::collections::HashSet::new();
        for seed in 0..32u64 {
            let g = generators::erdos_renyi(24, 0.2, 3, seed);
            assert!(keys.insert(topo_key(&g)), "key collision at seed {seed}");
        }
        // Reordered endpoints are a different topology fingerprint.
        let a = Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let b = Graph::from_edges(3, [(1, 2, 1), (0, 1, 1)]).unwrap();
        assert_ne!(topo_key(&a), topo_key(&b));
    }

    #[test]
    fn cache_cap_clears_instead_of_growing() {
        let cache: TopoCache<usize> = TopoCache::new();
        for seed in 0..(CACHE_CAP as u64 + 8) {
            let g = generators::erdos_renyi(16, 0.3, 2, seed);
            cache.get_or_build(&g, |g| g.n());
        }
        assert!(cache.cached() <= CACHE_CAP);
    }
}
