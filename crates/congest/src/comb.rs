//! The per-directed-edge combining queue shared by both engines
//! (determinism-contract clause 7).
//!
//! Like [`for_each_active`](crate::exec::for_each_active) for the
//! activation contract, this is the *single* implementation of the
//! combining semantics: the sequential [`Simulator`](crate::Simulator)
//! and the parallel engine both stage and pop through [`CombQueue`],
//! so the merge rules (which message absorbs which, and where the
//! survivor sits in the FIFO) cannot drift between the oracle and an
//! engine.
//!
//! Semantics: a staged message carrying `Some(key)` merges into the
//! queued, undelivered message with the same key on the same edge, if
//! one exists — the merged message **keeps the earlier message's queue
//! position**, so it is delivered no later than the message it grew
//! from. At most one entry per key is ever queued. Messages staged
//! with `None` (no combiner, or an uncombinable payload) always append.

use crate::message::Word;
use std::collections::{HashMap, VecDeque};

/// A FIFO of `T` payloads with per-key in-place merging. The payload is
/// engine-specific (the simulator queues full `Message`s, the parallel
/// engine queues inline word arrays); the key/position bookkeeping is
/// shared.
#[derive(Debug)]
pub struct CombQueue<T> {
    /// Queued entries, front = next to deliver.
    q: VecDeque<(Option<Word>, T)>,
    /// Entries popped from this queue over its lifetime; the entry at
    /// index `i` has absolute sequence number `popped + i`.
    popped: u64,
    /// Key → absolute sequence number of the (unique) queued entry
    /// carrying it. Empty until the first keyed message, so unkeyed
    /// programs pay no allocation.
    index: HashMap<Word, u64>,
}

impl<T> CombQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CombQueue {
            q: VecDeque::new(),
            popped: 0,
            index: HashMap::new(),
        }
    }

    /// Number of queued (undelivered) entries.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether no entry is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Stages one message. If `key` is `Some` and an entry with the
    /// same key is queued, `merge(queued, item)` updates that entry in
    /// place (keeping its queue position) and `true` is returned — the
    /// staged message was absorbed. Otherwise the item is appended and
    /// `false` is returned.
    pub fn stage(&mut self, key: Option<Word>, item: T, merge: impl FnOnce(&mut T, T)) -> bool {
        if let Some(k) = key {
            if let Some(&seq) = self.index.get(&k) {
                let slot = (seq - self.popped) as usize;
                merge(&mut self.q[slot].1, item);
                return true;
            }
            self.index.insert(k, self.popped + self.q.len() as u64);
        }
        self.q.push_back((key, item));
        false
    }

    /// Pops the front entry, releasing its key for future stagings.
    pub fn pop(&mut self) -> Option<(Option<Word>, T)> {
        let (key, item) = self.q.pop_front()?;
        self.popped += 1;
        if let Some(k) = key {
            self.index.remove(&k);
        }
        Some((key, item))
    }
}

impl<T> Default for CombQueue<T> {
    fn default() -> Self {
        CombQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unkeyed_entries_form_a_plain_fifo() {
        let mut q: CombQueue<u64> = CombQueue::new();
        assert!(!q.stage(None, 1, |_, _| unreachable!()));
        assert!(!q.stage(None, 2, |_, _| unreachable!()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((None, 1)));
        assert_eq!(q.pop(), Some((None, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_key_merges_in_place_keeping_position() {
        let mut q: CombQueue<u64> = CombQueue::new();
        assert!(!q.stage(Some(7), 10, |_, _| unreachable!()));
        assert!(!q.stage(None, 99, |_, _| unreachable!()));
        assert!(q.stage(Some(7), 3, |old, new| *old = (*old).min(new)));
        assert_eq!(q.len(), 2, "merge adds no entry");
        assert_eq!(q.pop(), Some((Some(7), 3)), "survivor kept slot 0");
        assert_eq!(q.pop(), Some((None, 99)));
    }

    #[test]
    fn popped_key_can_be_staged_again() {
        let mut q: CombQueue<u64> = CombQueue::new();
        q.stage(Some(1), 5, |_, _| unreachable!());
        assert_eq!(q.pop(), Some((Some(1), 5)));
        assert!(!q.stage(Some(1), 6, |_, _| unreachable!()), "fresh entry");
        assert!(q.stage(Some(1), 2, |old, new| *old = (*old).min(new)));
        assert_eq!(q.pop(), Some((Some(1), 2)));
    }

    #[test]
    fn distinct_keys_never_merge() {
        let mut q: CombQueue<u64> = CombQueue::new();
        assert!(!q.stage(Some(1), 5, |_, _| unreachable!()));
        assert!(!q.stage(Some(2), 6, |_, _| unreachable!()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn merge_targets_mid_queue_slots_after_pops() {
        let mut q: CombQueue<u64> = CombQueue::new();
        q.stage(None, 0, |_, _| unreachable!());
        q.stage(None, 1, |_, _| unreachable!());
        q.stage(Some(9), 40, |_, _| unreachable!());
        q.pop();
        // Key 9 now sits at index 1 (absolute seq 2, popped 1).
        assert!(q.stage(Some(9), 30, |old, new| *old = (*old).min(new)));
        assert_eq!(q.pop(), Some((None, 1)));
        assert_eq!(q.pop(), Some((Some(9), 30)));
    }
}
