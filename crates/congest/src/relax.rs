//! The keyed-relaxation subsystem: one implementation of the keyed
//! bounded distance-table machinery that every relaxation-style program
//! in this repository used to hand-roll.
//!
//! A *keyed relaxation* is the common core of multi-source Bellman–Ford
//! (§4/§7 of the paper), net deactivation (§6), and LE-list style
//! flooding: each node maintains, per key (a source index, an origin
//! vertex, …), a monotonically improving `(distance, aux)` estimate
//! with a predecessor pointer, absorbs neighbor announcements, and
//! re-announces its own improvements — subject to a distance bound and
//! a hop bound. Before this module existed, five files re-implemented
//! that loop with per-node `HashMap<NodeId, (Weight, Option<NodeId>)>`
//! tables and copy-pasted combiner boilerplate; now they share:
//!
//! * a **canonical wire codec** ([`RelaxMsg`]): 3 words —
//!   `pack2(tag, key)`, `dist`, `aux` (a hop counter for Bellman–Ford
//!   programs, a permutation rank for LE lists),
//! * the **lawful clause-7 combiner** ([`combine_key`]/[`combine_min`]):
//!   componentwise minimum over `(dist, aux)`, key-stable by
//!   construction because the merged message keeps word 0 verbatim —
//!   the single merge every keyed-relaxation program declares,
//! * a **dense table** ([`KeyedRelaxation`]): keys are small integers
//!   (source *indices*, not node ids), so per-node state is a flat
//!   `Vec` of [`Slot`]s — allocated lazily on first touch, so nodes a
//!   bounded exploration never reaches pay nothing — instead of a hash
//!   map per node,
//! * **activation/quiescence handling**: the ready-made
//!   [`RelaxProgram`] is message-driven (activation-correct by
//!   construction) and batches announcements per round — each key is
//!   re-announced at most once per [`Program::round`], with the final
//!   improved state, never once per improving inbox message,
//! * **truncation detection**: the table records whether any accepted
//!   improvement arrived with an exhausted hop budget. When the flag is
//!   `false` after an unbounded-distance run, *no relaxation was ever
//!   blocked by the hop bound*, so the run is — deterministically, not
//!   just w.h.p. — identical to an unbounded Bellman–Ford and its
//!   distances are exact. The landmark SPT's adaptive cutoff is built
//!   on exactly this certificate (see `dist_sssp::landmark`).

use crate::message::{pack2, unpack2, Message, Word};
use crate::program::{Ctx, Program};
use lightgraph::{NodeId, Weight, INF};
use std::sync::{Mutex, OnceLock};

/// Sentinel for "no predecessor" in a [`Slot`].
const NO_PARENT: u64 = u64::MAX;

/// Upper bound on pooled tables/weight lists retained for reuse. Set
/// high enough that one full run's tables (one per reached node) come
/// back in the next sub-run — session-scoped retention, the same
/// policy as the executor run arenas — while still bounding a
/// pathological churn workload.
const POOL_CAP: usize = 1 << 16;

/// A recycled dense table: the slot storage, its validity stamps, and
/// the last epoch the pair was used under. Stamps only ever hold
/// epochs `<=` the recorded one, so `epoch + 1` is fresh — no refill
/// needed on checkout (the epoch-reset trick; see DESIGN.md, "Run
/// lifecycle & plan cache").
struct PooledTable {
    slots: Vec<Slot>,
    stamps: Vec<u32>,
    epoch: u32,
}

fn slot_pool() -> &'static Mutex<Vec<PooledTable>> {
    static POOL: OnceLock<Mutex<Vec<PooledTable>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Checks a `(slots, stamps)` pair out of the pool, or allocates fresh
/// on an empty/contended pool. Every pre-existing stamp is `< epoch`,
/// so the whole table is logically `EMPTY_SLOT` without a memset —
/// slots revalidate lazily, one at a time, as they are written.
/// `try_lock` keeps the pool off the lock-contention path: engine
/// workers touch tables concurrently, and a miss just allocates.
fn table_checkout(keys: usize) -> (Vec<Slot>, Vec<u32>, u32) {
    let pooled = slot_pool().try_lock().ok().and_then(|mut p| p.pop());
    match pooled {
        Some(mut p) => {
            let epoch = p.epoch.wrapping_add(1);
            if epoch == 0 {
                // The 32-bit epoch wrapped: stale stamps could now
                // collide with future epochs, so invalidate them all.
                p.stamps.clear();
            }
            p.slots.truncate(keys);
            p.slots.resize(keys, EMPTY_SLOT);
            p.stamps.truncate(keys);
            p.stamps.resize(keys, epoch.wrapping_sub(1));
            (p.slots, p.stamps, epoch)
        }
        None => (vec![EMPTY_SLOT; keys], vec![0; keys], 1),
    }
}

fn table_checkin(slots: Vec<Slot>, stamps: Vec<u32>, epoch: u32) {
    if slots.capacity() == 0 {
        return;
    }
    if let Ok(mut pool) = slot_pool().try_lock() {
        if pool.len() < POOL_CAP {
            pool.push(PooledTable {
                slots,
                stamps,
                epoch,
            });
        }
    }
}

fn weights_pool() -> &'static Mutex<Vec<Vec<(NodeId, Weight)>>> {
    static POOL: OnceLock<Mutex<Vec<Vec<(NodeId, Weight)>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

fn weights_checkout() -> Vec<(NodeId, Weight)> {
    weights_pool()
        .try_lock()
        .ok()
        .and_then(|mut p| p.pop())
        .map(|mut v| {
            v.clear();
            v
        })
        .unwrap_or_default()
}

fn weights_checkin(w: Vec<(NodeId, Weight)>) {
    if w.capacity() == 0 {
        return;
    }
    if let Ok(mut pool) = weights_pool().try_lock() {
        if pool.len() < POOL_CAP {
            pool.push(w);
        }
    }
}

/// A decoded keyed-relaxation message (see the canonical codec in the
/// module docs): `key` identifies the table slot, `dist` is the
/// sender's estimate, `aux` rides along under the same componentwise
/// minimum (hop counters, permutation ranks).
///
/// # Examples
///
/// The canonical 3-word wire format survives an encode/decode
/// round-trip, and word 0 is the [`pack2`]-packed `(tag, key)` pair —
/// exactly the clause-7 combining key:
///
/// ```
/// use congest::pack2;
/// use congest::relax::{combine_key, RelaxMsg};
///
/// let update = RelaxMsg { key: 3, dist: 17, aux: 2 };
/// let wire = update.encode(9);
/// assert_eq!(wire.len(), 3, "tag+key, dist, aux");
/// assert_eq!(wire.word(0), pack2(9, 3));
/// assert_eq!(combine_key(&wire), wire.word(0));
/// assert_eq!(RelaxMsg::decode(9, &wire), update);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaxMsg {
    /// Table key (a source index or origin vertex; must fit 32 bits).
    pub key: u64,
    /// Distance estimate.
    pub dist: Weight,
    /// Auxiliary word (hop counter, rank, …).
    pub aux: u64,
}

impl RelaxMsg {
    /// Encodes into the canonical 3-word wire format under `tag`.
    ///
    /// # Panics
    /// Panics if `tag` or `key` do not fit in 32 bits (via [`pack2`]).
    pub fn encode(&self, tag: u64) -> Message {
        Message::words(&[pack2(tag, self.key), self.dist, self.aux])
    }

    /// Decodes a canonical message, debug-asserting its tag.
    pub fn decode(tag: u64, msg: &Message) -> RelaxMsg {
        let (t, key) = unpack2(msg.word(0));
        debug_assert_eq!(t, tag, "relaxation message tag mismatch");
        RelaxMsg {
            key,
            dist: msg.word(1),
            aux: msg.word(2),
        }
    }
}

/// The combining key of a canonical relaxation message: word 0, which
/// packs `(tag, key)` — unique per `(message family, table key)`, so
/// updates for distinct keys never merge.
pub fn combine_key(msg: &Message) -> Word {
    msg.word(0)
}

/// The lawful clause-7 merge shared by every keyed-relaxation program:
/// componentwise minimum over `(dist, aux)`. Associative and
/// commutative (minima are), and key-stable because word 0 is kept
/// verbatim. The merged message *dominates* what it absorbed for
/// min-monotone tables: delivering only the survivor leads the receiver
/// to the same fixed point (see the clause-7 obligations in
/// [`Program`]).
pub fn combine_min(queued: &Message, incoming: &Message) -> Message {
    debug_assert_eq!(queued.word(0), incoming.word(0), "same (tag, key)");
    Message::words(&[
        queued.word(0),
        queued.word(1).min(incoming.word(1)),
        queued.word(2).min(incoming.word(2)),
    ])
}

/// One dense table slot: the best-known estimate for one key at one
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Best distance estimate ([`INF`] = not reached).
    pub dist: Weight,
    /// Hop counter of the accepted estimate (travels in the message, so
    /// congestion delay never consumes hop budget).
    pub hops: u64,
    /// Predecessor towards the key's origin ([`NO_PARENT`] sentinel).
    parent: u64,
    /// Improved since the last flush?
    dirty: bool,
}

const EMPTY_SLOT: Slot = Slot {
    dist: INF,
    hops: 0,
    parent: NO_PARENT,
    dirty: false,
};

impl Slot {
    /// Whether this slot was ever reached (holds a finite estimate).
    pub fn reached(&self) -> bool {
        self.dist < INF
    }

    /// The predecessor, if any.
    pub fn parent(&self) -> Option<NodeId> {
        (self.parent != NO_PARENT).then_some(self.parent as NodeId)
    }
}

/// The dense keyed-relaxation component embedded by relaxation
/// programs: per-key `(dist, hops, parent)` slots, bound/hop-bound
/// gating, per-round announcement batching, and the canonical
/// codec/combiner. See the module docs for the design.
#[derive(Debug)]
pub struct KeyedRelaxation {
    tag: u64,
    keys: usize,
    bound: Weight,
    hop_bound: u64,
    /// Dense table, lazily *checked out of the session pool* on first
    /// touch (`seed`/`absorb`): a node never reached by the exploration
    /// allocates nothing, and warmed sub-runs allocate nothing either.
    /// A slot is logically [`EMPTY_SLOT`] unless `stamps[key] == epoch`
    /// — pooled storage carries stale bytes from its previous life that
    /// must never be read.
    slots: Vec<Slot>,
    stamps: Vec<u32>,
    epoch: u32,
    /// Keys improved since the last flush, in first-improvement order
    /// (deterministic: inbox order is contract-pinned).
    improved: Vec<u32>,
    truncated: bool,
}

impl KeyedRelaxation {
    /// Creates an empty table over `keys` keys with a distance bound
    /// and a hop bound (`u64::MAX` = unbounded).
    ///
    /// # Panics
    /// Panics if `tag` or `keys` do not fit in 32 bits (the canonical
    /// codec packs both into one word).
    pub fn new(tag: u64, keys: usize, bound: Weight, hop_bound: u64) -> Self {
        assert!(tag < (1 << 32), "relaxation tag must fit in 32 bits");
        assert!((keys as u64) < (1 << 32), "keys must fit in 32 bits");
        KeyedRelaxation {
            tag,
            keys,
            bound,
            hop_bound,
            slots: Vec::new(),
            stamps: Vec::new(),
            epoch: 0,
            improved: Vec::new(),
            truncated: false,
        }
    }

    fn touch(&mut self) {
        if self.slots.is_empty() && self.keys > 0 {
            let (slots, stamps, epoch) = table_checkout(self.keys);
            self.slots = slots;
            self.stamps = stamps;
            self.epoch = epoch;
        }
    }

    /// The logical value of `key`'s slot: pooled storage is only live
    /// where the stamp matches the current epoch.
    fn slot_get(&self, key: usize) -> Slot {
        if self.stamps[key] == self.epoch {
            self.slots[key]
        } else {
            EMPTY_SLOT
        }
    }

    /// Validates `key`'s slot (stale storage becomes [`EMPTY_SLOT`])
    /// and hands out the storage for writing.
    fn slot_mut(&mut self, key: usize) -> &mut Slot {
        if self.stamps[key] != self.epoch {
            self.stamps[key] = self.epoch;
            self.slots[key] = EMPTY_SLOT;
        }
        &mut self.slots[key]
    }

    fn mark(&mut self, key: usize) {
        let slot = self.slot_mut(key);
        if !slot.dirty {
            slot.dirty = true;
            self.improved.push(key as u32);
        }
    }

    /// Seeds `key` at this node: distance 0, no predecessor. Call from
    /// [`Program::init`]; the seed is announced by the next
    /// [`KeyedRelaxation::flush`].
    pub fn seed(&mut self, key: usize) {
        self.touch();
        *self.slot_mut(key) = Slot {
            dist: 0,
            hops: 0,
            parent: NO_PARENT,
            dirty: false,
        };
        self.mark(key);
    }

    /// Absorbs one announcement from neighbor `from` across an edge of
    /// weight `w`: decodes the canonical message and relaxes the slot.
    /// Returns whether the slot improved; improvements are announced by
    /// the next [`KeyedRelaxation::flush`].
    pub fn absorb(&mut self, from: NodeId, w: Weight, msg: &Message) -> bool {
        let m = RelaxMsg::decode(self.tag, msg);
        let key = m.key as usize;
        debug_assert!(key < self.keys, "key {key} out of range {}", self.keys);
        let nd = m.dist.saturating_add(w);
        // Hop counts travel in the message: congestion may delay a
        // relaxation past round h without consuming hop budget.
        let nh = m.aux + 1;
        if nd > self.bound {
            return false;
        }
        self.touch();
        let cur = self.slot_get(key);
        if nd >= cur.dist {
            return false;
        }
        *self.slot_mut(key) = Slot {
            dist: nd,
            hops: nh,
            parent: from as u64,
            dirty: cur.dirty,
        };
        self.mark(key);
        if nh >= self.hop_bound {
            // The improvement arrived with an exhausted hop budget: the
            // next flush will not forward it, so the run may differ
            // from an unbounded one (see `truncated`).
            self.truncated = true;
        }
        true
    }

    /// Announces every key improved since the last flush to all
    /// neighbors — once per key, with the final improved state, in
    /// first-improvement order — and clears the improvement set. Keys
    /// whose hop budget is exhausted are not forwarded.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.improved.len() {
            let key = self.improved[i] as usize;
            let slot = &mut self.slots[key];
            slot.dirty = false;
            let (dist, hops) = (slot.dist, slot.hops);
            if hops < self.hop_bound {
                ctx.send_all(
                    RelaxMsg {
                        key: key as u64,
                        dist,
                        aux: hops,
                    }
                    .encode(self.tag),
                );
            }
        }
        self.improved.clear();
    }

    /// The clause-7 combining key for this table's messages (delegate
    /// [`Program::combine_key`] here).
    pub fn combine_key(&self, msg: &Message) -> Option<Word> {
        debug_assert_eq!(unpack2(msg.word(0)).0, self.tag);
        Some(combine_key(msg))
    }

    /// The clause-7 merge for this table's messages (delegate
    /// [`Program::combine`] here): see [`combine_min`].
    pub fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        combine_min(queued, incoming)
    }

    /// Finishes the table into its per-node output.
    pub fn finish(self) -> RelaxTable {
        RelaxTable {
            keys: self.keys,
            slots: self.slots,
            stamps: self.stamps,
            epoch: self.epoch,
            truncated: self.truncated,
        }
    }
}

/// A finished per-node relaxation table: dense slots over the key
/// space (empty when nothing reached this node — lazy allocation).
///
/// The storage is pooled: slots carry epoch stamps, and dropping the
/// table returns `(slots, stamps)` to the session pool for the next
/// sub-run to check out (with a bumped epoch, so stale bytes stay
/// invisible without a refill). Equality and every accessor operate on
/// the *logical* view — an unstamped slot reads as unreached — so
/// pooling never leaks one run's contents into another's comparisons.
#[derive(Debug, Clone)]
pub struct RelaxTable {
    keys: usize,
    slots: Vec<Slot>,
    stamps: Vec<u32>,
    epoch: u32,
    /// Whether some accepted improvement at this node arrived with an
    /// exhausted hop budget. If **no** node of an unbounded-distance
    /// run reports this, the hop bound never blocked a relaxation and
    /// the distances are exactly the unbounded fixed point — the
    /// certificate behind the landmark SPT's adaptive cutoff.
    pub truncated: bool,
}

impl Drop for RelaxTable {
    fn drop(&mut self) {
        table_checkin(
            std::mem::take(&mut self.slots),
            std::mem::take(&mut self.stamps),
            self.epoch,
        );
    }
}

impl PartialEq for RelaxTable {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys
            && self.truncated == other.truncated
            && (0..self.keys).all(|k| self.logical(k) == other.logical(k))
    }
}

impl Eq for RelaxTable {}

impl RelaxTable {
    /// The logical value of `key`'s slot (stale pooled storage reads as
    /// [`EMPTY_SLOT`]).
    fn logical(&self, key: usize) -> Slot {
        match self.slots.get(key) {
            Some(&s) if self.stamps[key] == self.epoch => s,
            _ => EMPTY_SLOT,
        }
    }

    /// Number of keys in the table's key space.
    pub fn keys(&self) -> usize {
        self.keys
    }

    /// The slot for `key`, if reached.
    pub fn get(&self, key: usize) -> Option<&Slot> {
        self.slots
            .get(key)
            .filter(|_| self.stamps[key] == self.epoch)
            .filter(|s| s.reached())
    }

    /// Distance for `key`, if reached.
    pub fn dist(&self, key: usize) -> Option<Weight> {
        self.get(key).map(|s| s.dist)
    }

    /// Predecessor for `key` (`None` also when `key` is seeded here).
    pub fn parent(&self, key: usize) -> Option<NodeId> {
        self.get(key).and_then(Slot::parent)
    }

    /// Number of reached keys.
    pub fn reached_len(&self) -> usize {
        (0..self.slots.len())
            .filter(|&k| self.logical(k).reached())
            .count()
    }

    /// Iterates the reached keys in ascending key order as
    /// `(key, dist, parent)`.
    pub fn iter_reached(&self) -> impl Iterator<Item = (usize, Weight, Option<NodeId>)> + '_ {
        (0..self.slots.len()).filter_map(move |k| {
            let s = self.logical(k);
            s.reached().then(|| (k, s.dist, s.parent()))
        })
    }

    /// The nearest reached key with its distance (ties broken towards
    /// the smaller key — deterministic).
    pub fn nearest(&self) -> Option<(usize, Weight)> {
        self.iter_reached()
            .map(|(k, d, _)| (d, k))
            .min()
            .map(|(d, k)| (k, d))
    }
}

/// The ready-made keyed-relaxation [`Program`]: seeds the given keys at
/// this node, absorbs announcements (edge weights resolved from
/// [`Ctx::neighbors`]), and re-announces per-round improvements. This
/// is multi-source distance/hop-bounded Bellman–Ford with per-key path
/// reporting; `dist_sssp::bellman` is a thin wrapper over it.
///
/// Activation-correct by construction (it acts only on inbox messages)
/// and declares the subsystem's lawful combiner.
#[derive(Debug)]
pub struct RelaxProgram {
    core: KeyedRelaxation,
    seeds: Vec<u32>,
    /// Incident edge weights sorted by neighbor id, built lazily on the
    /// first delivery so unreached nodes allocate nothing: resolving a
    /// sender's weight is a binary search, not an `O(deg)` scan per
    /// message on the subsystem's hottest path.
    weights: Vec<(NodeId, Weight)>,
}

impl RelaxProgram {
    /// A program over `keys` keys, seeding `seeds` at this node.
    pub fn new(tag: u64, keys: usize, bound: Weight, hop_bound: u64, seeds: Vec<u32>) -> Self {
        RelaxProgram {
            core: KeyedRelaxation::new(tag, keys, bound, hop_bound),
            seeds,
            weights: Vec::new(),
        }
    }
}

impl Program for RelaxProgram {
    type Output = RelaxTable;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.seeds.len() {
            let key = self.seeds[i] as usize;
            self.core.seed(key);
        }
        self.core.flush(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        if self.weights.is_empty() && !inbox.is_empty() {
            self.weights = weights_checkout();
            self.weights
                .extend(ctx.neighbors().iter().map(|&(u, w, _)| (u, w)));
            self.weights.sort_unstable();
        }
        for (from, msg) in inbox {
            let slot = self
                .weights
                .binary_search_by_key(from, |&(u, _)| u)
                .expect("sender is a neighbor");
            let w = self.weights[slot].1;
            self.core.absorb(*from, w, msg);
        }
        self.core.flush(ctx);
    }

    fn combine_key(&self, msg: &Message) -> Option<Word> {
        self.core.combine_key(msg)
    }

    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        self.core.combine(queued, incoming)
    }

    fn finish(self) -> RelaxTable {
        weights_checkin(self.weights);
        self.core.finish()
    }
}

/// Largest finite entry of a distance vector, 0 if none — the shared
/// headline-metric kernel behind `max_finite_dist` accessors.
///
/// "Finite" means strictly below [`INF`]: entries at or above `INF`
/// (unreached slots, and pessimistic `INF.saturating_add(w)` sums that
/// overflow past it) are ignored. On an all-unreachable table this
/// deliberately returns 0 — the same value as a table whose only
/// reached vertex is the source itself — so callers that must
/// distinguish "nothing reached" should test reachability explicitly
/// rather than compare against 0.
pub fn max_finite(dist: &[Weight]) -> Weight {
    dist.iter().copied().filter(|&d| d < INF).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use lightgraph::{generators, Graph};

    #[test]
    fn codec_roundtrips() {
        let m = RelaxMsg {
            key: 17,
            dist: 123,
            aux: 9,
        };
        let msg = m.encode(21);
        assert_eq!(msg.len(), 3);
        assert_eq!(RelaxMsg::decode(21, &msg), m);
        assert_eq!(combine_key(&msg), pack2(21, 17));
    }

    #[test]
    fn combine_min_is_componentwise() {
        let a = RelaxMsg {
            key: 3,
            dist: 10,
            aux: 7,
        }
        .encode(5);
        let b = RelaxMsg {
            key: 3,
            dist: 12,
            aux: 2,
        }
        .encode(5);
        let m = combine_min(&a, &b);
        assert_eq!(
            RelaxMsg::decode(5, &m),
            RelaxMsg {
                key: 3,
                dist: 10,
                aux: 2
            }
        );
        // commutative
        assert_eq!(combine_min(&b, &a), m);
    }

    #[test]
    fn single_source_matches_dijkstra() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(40, 0.15, 30, seed);
            let mut sim = Simulator::new(&g);
            let (out, _) = sim.run(|v, _| {
                RelaxProgram::new(7, 1, INF, u64::MAX, if v == 0 { vec![0] } else { vec![] })
            });
            let oracle = lightgraph::dijkstra::shortest_paths(&g, 0);
            for v in 0..g.n() {
                assert_eq!(out[v].dist(0), Some(oracle.dist[v]), "v={v}");
            }
            assert!(
                out.iter().all(|t| !t.truncated),
                "unbounded ⇒ no truncation"
            );
        }
    }

    #[test]
    fn distance_bound_gates_reach() {
        let g = generators::path(6, 10);
        let mut sim = Simulator::new(&g);
        let (out, _) = sim.run(|v, _| {
            RelaxProgram::new(7, 1, 25, u64::MAX, if v == 0 { vec![0] } else { vec![] })
        });
        assert_eq!(out[2].dist(0), Some(20));
        assert_eq!(out[3].dist(0), None, "30 > bound");
        assert!(out[3].get(0).is_none());
    }

    #[test]
    fn hop_bound_truncation_is_flagged_exactly_when_it_bites() {
        let g = generators::path(8, 1);
        // hop bound 3 cuts the wave mid-path: flagged.
        let mut sim = Simulator::new(&g);
        let (out, _) =
            sim.run(|v, _| RelaxProgram::new(7, 1, INF, 3, if v == 0 { vec![0] } else { vec![] }));
        assert_eq!(out[3].dist(0), Some(3));
        assert_eq!(out[4].dist(0), None, "4 hops exceeds the bound");
        assert!(out.iter().any(|t| t.truncated), "the bound visibly bit");
        // hop bound 10 > path length: unbounded behavior, no flag.
        let mut sim = Simulator::new(&g);
        let (out, _) =
            sim.run(|v, _| RelaxProgram::new(7, 1, INF, 10, if v == 0 { vec![0] } else { vec![] }));
        assert_eq!(out[7].dist(0), Some(7));
        assert!(out.iter().all(|t| !t.truncated));
    }

    #[test]
    fn multi_key_tables_are_dense_and_lazy() {
        let g = generators::path(5, 10);
        let mut sim = Simulator::new(&g);
        // Sources at ends, bound keeps the middle unreached by key 1.
        let (out, _) = sim.run(|v, _| {
            let seeds = match v {
                0 => vec![0],
                4 => vec![1],
                _ => vec![],
            };
            RelaxProgram::new(7, 2, 15, u64::MAX, seeds)
        });
        assert_eq!(out[1].dist(0), Some(10));
        assert_eq!(out[1].dist(1), None, "30 > bound");
        assert_eq!(out[1].nearest(), Some((0, 10)));
        assert_eq!(out[1].parent(0), Some(0));
        assert_eq!(out[0].parent(0), None, "seeds have no parent");
        assert_eq!(out[2].reached_len(), 0, "middle unreached");
        assert_eq!(
            out[4].iter_reached().collect::<Vec<_>>(),
            vec![(1, 0, None)],
        );
    }

    #[test]
    fn announcements_batch_per_round() {
        // Star center receives two improving announcements for the same
        // key in one round (from two leaves seeded at different
        // distances via edge weights) and must re-announce only once.
        let g = Graph::from_edges(4, [(0, 1, 5), (0, 2, 1), (0, 3, 50)]).unwrap();
        let mut sim = Simulator::new(&g);
        let (out, stats) = sim.run(|v, _| {
            let seeds = if v == 1 || v == 2 { vec![0] } else { vec![] };
            RelaxProgram::new(7, 1, INF, u64::MAX, seeds)
        });
        assert_eq!(out[0].dist(0), Some(1));
        assert_eq!(out[3].dist(0), Some(51));
        // init: 1 and 2 announce (1 msg each); round 1: the center
        // improves twice but announces once to each of its 3 neighbors
        // (batched); round 2: nodes 1 and 2 reject, node 3 improves and
        // echoes once back to the center (rejected there).
        assert_eq!(stats.messages, 2 + 3 + 1, "center announced once, batched");
    }

    #[test]
    fn max_finite_handles_all_unreachable_and_overflowed_entries() {
        assert_eq!(max_finite(&[]), 0);
        assert_eq!(max_finite(&[INF, INF]), 0, "all-unreachable table");
        assert_eq!(max_finite(&[3, INF, 7]), 7);
        // Pessimistic sums past INF are not genuine distances.
        assert_eq!(max_finite(&[5, INF.saturating_add(40)]), 5);
    }
}
