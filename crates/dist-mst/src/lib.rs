//! Distributed MST and the Euler tour of the MST (paper §3).
//!
//! * [`boruvka`] — two-phase distributed MST producing the base-fragment
//!   structure of \[KP98\]/\[Elk17b\] that §3 consumes: `O(√n)` fragments of
//!   bounded hop-diameter, a fragment tree `T′`, and the external edges.
//! * [`euler`] — the distributed Euler tour (Lemma 2): every vertex
//!   learns its appearances in the preorder traversal `L` of the MST and
//!   their weighted visit times, in `Õ(√n + D)` rounds given the
//!   fragments.
//! * [`passes`] — fragment-tree communication passes (up / down /
//!   re-root) shared by both.

pub mod boruvka;
pub mod euler;
pub mod passes;

pub use boruvka::{distributed_mst, MstResult};
pub use euler::{distributed_euler_tour, DistEulerTour};
