//! The distributed Euler tour of the MST (§3, Lemma 2).
//!
//! Given the base-fragment structure produced by
//! [`crate::boruvka::distributed_mst`], computes the preorder traversal
//! `L = {rt = x_0, x_1, …, x_{2n-2}}` of the MST: every vertex learns its
//! set of appearances `L(v)` with both the *index* and the *weighted
//! visit time* `R_x` of each appearance. Children are ordered by vertex
//! id, exactly like the sequential reference
//! [`lightgraph::tree::RootedTree::euler_tour`].
//!
//! The implementation follows §3.1–3.3, with the fragment-tree
//! recurrences *batch-contracted at `rt`* instead of broadcast to (and
//! replayed by) every vertex:
//!
//! 1. gather the external edges to `rt` through the combiner-aware
//!    convergecast and assemble the fragment tree `T′` there, in dense
//!    compact-index tables — `O(√n + D)` rounds, `O(√n · D)` messages
//!    where the old global broadcast paid `O(√n · n)`,
//! 2. re-root each base fragment at its root `r_i` (designated by a
//!    [`congest::collective::downcast`] along BFS-tree paths),
//! 3. *local tour lengths* `ℓ(v)` by a bottom-up fragment pass,
//! 4. gather `{ℓ(r_i)}` to `rt`, contract the `g`-recurrence over `T′`
//!    bottom-up in one batch, and downcast to each *attach vertex* the
//!    `g`-value of the fragments hanging off it,
//! 5. *global tour lengths* `g(v)` by a second bottom-up pass seeded
//!    with the external children's `g`-values,
//! 6. DFS *intervals* by a top-down fragment pass (child-fragment roots
//!    receive their interval inside the parent fragment but do not
//!    propagate it),
//! 7. shifts `s_i`: root-interval starts gather to `rt`, the shift
//!    recursion `s_i = s_{parent} + b_i` — the sequential pointer chase
//!    up `T′` — is contracted in one batched sweep, and each fragment's
//!    shift returns by downcast to `r_i` plus an intra-fragment flood,
//! 8. every vertex locally derives all its visit times; a second run of
//!    passes 3–7 with unit weights yields the tour *indices* (the paper:
//!    "running the same algorithm that finds visiting times, ignoring
//!    the weights").

use crate::boruvka::MstResult;
use crate::passes::{self, FragView, Val};
use congest::collective;
use congest::obs;
use congest::tree::BfsTree;
use congest::{pack2, unpack2, Executor, RunStats};
use lightgraph::{EdgeId, Graph, NodeId, Weight};
use std::collections::VecDeque;

/// The distributed Euler tour: per-vertex appearances in `L`.
#[derive(Debug, Clone)]
pub struct DistEulerTour {
    /// `appearances[v]` = the positions and weighted visit times of `v`
    /// in `L`, sorted by position (the set `L(v)` with times `R_x`).
    pub appearances: Vec<Vec<(usize, Weight)>>,
    /// Total weighted tour length (`2 · w(MST)`).
    pub total_length: Weight,
    /// Rounds/messages spent computing the tour (excluding the MST).
    pub stats: RunStats,
}

impl DistEulerTour {
    /// Reassembles the full tour sequence `L` (positions → vertices and
    /// visit times) — a *global* view used by tests and experiments, not
    /// available to any single vertex in the real model.
    pub fn assemble(&self) -> (Vec<NodeId>, Vec<Weight>) {
        let total: usize = self.appearances.iter().map(Vec::len).sum();
        let mut seq = vec![usize::MAX; total];
        let mut times = vec![0; total];
        for (v, apps) in self.appearances.iter().enumerate() {
            for &(i, t) in apps {
                seq[i] = v;
                times[i] = t;
            }
        }
        assert!(seq.iter().all(|&v| v != usize::MAX), "tour has holes");
        (seq, times)
    }
}

/// The fragment tree `T′`, assembled **at `rt` only** from the merged
/// gather of external edges, in dense tables keyed by a *compact
/// fragment index* assigned in BFS (root-to-leaf) discovery order — so
/// `parent[i] < i`, a forward scan is top-down, and a reverse scan is
/// bottom-up. Fragment ids are leader vertex ids, so the id → index map
/// is a plain `Vec` over vertex ids (no `HashMap` on the hot path).
struct FragTree {
    /// Fragment id (= phase-1 leader vertex) per compact index.
    ids: Vec<u64>,
    /// Compact index per fragment id (`usize::MAX` for non-ids).
    idx_of: Vec<usize>,
    /// Root vertex `r_i` per compact index (`rt` for index 0).
    root_of: Vec<NodeId>,
    /// Parent fragment per compact index (`None` only for index 0).
    parent: Vec<Option<usize>>,
    /// Child fragments per compact index.
    children: Vec<Vec<usize>>,
    /// Attach vertex (the endpoint of the external edge inside the
    /// parent fragment) per compact index (`rt` itself for index 0).
    attach_of: Vec<NodeId>,
}

impl FragTree {
    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Step 1: converge the external edges to `rt` (unique `(edge, side)`
/// keys, so the eager min-merge is trivially lawful) and assemble `T′`
/// there. Nothing is broadcast — per-fragment answers later return by
/// targeted downcasts.
fn gather_fragment_tree(
    sim: &mut impl Executor,
    g: &Graph,
    tau: &BfsTree,
    mst: &MstResult,
    rt: NodeId,
) -> FragTree {
    let frag = &mst.base_fragment_of;
    let mut is_ext = vec![false; g.m()];
    for &e in &mst.external_edges {
        is_ext[e] = true;
    }
    // Each endpoint of an external edge contributes (fragment, vertex),
    // keyed by (edge, side); 2 items per edge, ≤ 2√n total.
    let (table, _) = collective::gather_merged(sim, tau, |v| {
        let mut out: Vec<collective::Item> = Vec::new();
        for &(u, _, e) in g.neighbors(v) {
            if is_ext[e] {
                let side = u64::from(v > u);
                out.push((pack2(e as u64, side), [frag[v], v as u64]));
            }
        }
        out
    });

    // rt-local assembly. Keys sort as (edge, side), so the two sides of
    // an edge are adjacent.
    let flat: Vec<collective::Item> = table.iter().map(|(&k, &v)| (k, v)).collect();
    assert!(flat.len().is_multiple_of(2), "external edge reported once");
    let edges: Vec<(EdgeId, (u64, NodeId), (u64, NodeId))> = flat
        .chunks(2)
        .map(|pair| {
            let (k0, v0) = pair[0];
            let (k1, v1) = pair[1];
            let (e0, s0) = unpack2(k0);
            let (e1, s1) = unpack2(k1);
            assert!(
                e0 == e1 && s0 == 0 && s1 == 1,
                "external edge reported once"
            );
            (
                e0 as EdgeId,
                (v0[0], v0[1] as NodeId),
                (v1[0], v1[1] as NodeId),
            )
        })
        .collect();

    let n = g.n();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // by fragment id
    for (i, &(_, (fa, _), (fb, _))) in edges.iter().enumerate() {
        adj[fa as usize].push(i);
        adj[fb as usize].push(i);
    }
    let root_frag = frag[rt];
    let mut ft = FragTree {
        ids: vec![root_frag],
        idx_of: vec![usize::MAX; n],
        root_of: vec![rt],
        parent: vec![None],
        children: vec![Vec::new()],
        attach_of: vec![rt],
    };
    ft.idx_of[root_frag as usize] = 0;
    let mut queue = VecDeque::from([0usize]);
    while let Some(fi) = queue.pop_front() {
        let fid = ft.ids[fi];
        for &i in &adj[fid as usize] {
            let (_, (fa, va), (fb, vb)) = edges[i];
            let (cf, cv, attach) = if fa == fid {
                (fb, vb, va)
            } else {
                (fa, va, vb)
            };
            if ft.idx_of[cf as usize] == usize::MAX {
                let ci = ft.len();
                ft.idx_of[cf as usize] = ci;
                ft.ids.push(cf);
                ft.root_of.push(cv);
                ft.parent.push(Some(fi));
                ft.children.push(Vec::new());
                ft.attach_of.push(attach);
                ft.children[fi].push(ci);
                queue.push_back(ci);
            }
        }
    }
    assert_eq!(ft.len(), mst.fragment_count(), "T′ must span all fragments");
    ft
}

/// Steps 3–8 for one weight function; returns per-vertex visit "times"
/// of all appearances, in traversal order.
fn tour_times(
    sim: &mut impl Executor,
    tau: &BfsTree,
    views: &[FragView],
    ft: &FragTree,
    frag: &[u64],
    wf: &dyn Fn(NodeId, NodeId) -> Weight,
) -> Vec<Vec<Weight>> {
    let n = views.len();
    let f_count = ft.len();
    let parent_weight = |v: NodeId| -> Weight { views[v].parent.map(|p| wf(v, p)).unwrap_or(0) };

    // (3) local tour lengths ℓ(v): child sends ℓ(child) + 2·w(child, v).
    let (ell, _) = passes::up_pass_full(
        sim,
        views,
        |_| [0, 0, 0],
        |a, b| [a[0] + b[0], 0, 0],
        |v| {
            let wp = 2 * parent_weight(v);
            move |val: Val| [val[0] + wp, 0, 0]
        },
    );

    // (4) gather {ℓ(r_i)} to rt (unique fragment-id keys); contract the
    // g-recurrence bottom-up over the dense T′ in one batch, and hand
    // each attach vertex the (g, root) of the fragments hanging off it.
    let (ltable, _) = collective::gather_merged(sim, tau, |v| {
        if views[v].parent.is_none() {
            vec![(frag[v], [ell[v].0[0], 0])]
        } else {
            Vec::new()
        }
    });
    // external-edge weight between a fragment's root and its attach
    // vertex, under the current weight function
    let ext_w = |ci: usize| -> Weight { wf(ft.attach_of[ci], ft.root_of[ci]) };
    let mut g_root: Vec<Weight> = vec![0; f_count];
    for fi in (0..f_count).rev() {
        let mut total = ltable[&ft.ids[fi]][0];
        for &ci in &ft.children[fi] {
            total += g_root[ci] + 2 * ext_w(ci);
        }
        g_root[fi] = total;
    }
    let g_items: Vec<(NodeId, collective::Item)> = (1..f_count)
        .map(|ci| {
            (
                ft.attach_of[ci],
                (ft.ids[ci], [g_root[ci], ft.root_of[ci] as u64]),
            )
        })
        .collect();
    // ext[v]: the external children of v as (child frag id, [g, root]).
    let (ext, _) = collective::downcast(sim, tau, g_items);

    // (5) global tour lengths g(v).
    let ext_ref = &ext;
    let (gvals, _) = passes::up_pass_full(
        sim,
        views,
        |v| {
            let own: Weight = ext_ref[v]
                .iter()
                .map(|&(_, [gc, croot])| gc + 2 * wf(v, croot as NodeId))
                .sum();
            [own, 0, 0]
        },
        |a, b| [a[0] + b[0], 0, 0],
        |v| {
            let wp = 2 * parent_weight(v);
            move |val: Val| [val[0] + wp, 0, 0]
        },
    );
    for v in 0..n {
        if views[v].parent.is_none() {
            debug_assert_eq!(
                gvals[v].0[0], g_root[ft.idx_of[frag[v] as usize]],
                "distributed g(r_i) disagrees with the contracted T′ computation"
            );
        }
    }

    // T-children of every vertex in id order with m = g(child) + 2w.
    let mut t_children: Vec<Vec<(NodeId, Weight, Weight)>> = vec![Vec::new(); n];
    for v in 0..n {
        for &(child, mval) in &gvals[v].1 {
            t_children[v].push((child, mval[0], wf(v, child)));
        }
        for &(_, [gc, croot]) in &ext[v] {
            let croot = croot as NodeId;
            t_children[v].push((croot, gc + 2 * wf(v, croot), wf(v, croot)));
        }
        t_children[v].sort_by_key(|&(c, _, _)| c);
    }

    // (6) interval starts: top-down, fragment-relative; external
    // children receive (over the external edge) their interval inside
    // the parent fragment but do not propagate it.
    let t_children_ref = &t_children;
    let (starts, _) = passes::down_pass(
        sim,
        views,
        |_| [0, 0, 0],
        |v| {
            let ch = t_children_ref[v].clone();
            move |_, val: Val| {
                let mut acc = val[0];
                let mut out = Vec::with_capacity(ch.len());
                for &(c, m, w) in &ch {
                    out.push((c, [acc + w, 0, 0]));
                    acc += m;
                }
                out
            }
        },
    );

    // (7) shifts: fragment roots report the start of their interval in
    // the parent fragment; rt contracts the shift recursion
    // s_i = s_parent + b_i in one top-down batch (parent-before-child by
    // compact-index order) and downcasts each fragment's shift to its
    // root; an intra-fragment flood spreads it.
    let (btable, _) = collective::gather_merged(sim, tau, |v| {
        if views[v].parent.is_none() && starts[v].len() > 1 {
            vec![(frag[v], [starts[v][1][0], 0])]
        } else {
            Vec::new()
        }
    });
    let mut shift: Vec<Weight> = vec![0; f_count];
    for fi in 1..f_count {
        shift[fi] = shift[ft.parent[fi].expect("non-root fragment")] + btable[&ft.ids[fi]][0];
    }
    let shift_items: Vec<(NodeId, collective::Item)> = (0..f_count)
        .map(|fi| (ft.root_of[fi], (ft.ids[fi], [shift[fi], 0])))
        .collect();
    let (shift_recv, _) = collective::downcast(sim, tau, shift_items);
    let shift_recv_ref = &shift_recv;
    let (flooded, _) = passes::flood_pass(sim, views, |v| {
        // only evaluated at fragment roots, each of which received its
        // shift (index-0's rt designation was a free local delivery)
        let s = shift_recv_ref[v].first().map(|&(_, [s, _])| s).unwrap_or(0);
        [s, 0, 0]
    });

    // (8) local visit times: entry, then one appearance after each
    // child's subtree.
    (0..n)
        .map(|v| {
            let entry = flooded[v].expect("flood reaches all")[0] + starts[v][0][0];
            let mut out = Vec::with_capacity(t_children[v].len() + 1);
            let mut t = entry;
            out.push(t);
            for &(_, m, _) in &t_children[v] {
                t += m;
                out.push(t);
            }
            out
        })
        .collect()
}

/// Computes the distributed Euler tour of the MST rooted at `rt`
/// (Lemma 2: `Õ(√n + D)` rounds given the fragment structure).
///
/// `mst` must come from [`crate::boruvka::distributed_mst`] on the same
/// graph; `tau` is the shared BFS tree.
///
/// Deterministic under the `congest::exec` engine contract: the same
/// appearances and `RunStats` on the simulator and the parallel engine
/// (property-tested in `crates/engine/tests/equivalence.rs`), which is
/// what lets the `scenario` runner sweep `euler` on either engine.
pub fn distributed_euler_tour(
    sim: &mut impl Executor,
    tau: &BfsTree,
    mst: &MstResult,
    rt: NodeId,
) -> DistEulerTour {
    let start = sim.total();
    // Owned copy: closures below capture `g` across `&mut sim` phases
    // (see `distributed_mst`).
    let g_owned = sim.graph().clone();
    let g: &Graph = &g_owned;
    let n = g.n();
    if n == 0 {
        return DistEulerTour {
            appearances: Vec::new(),
            total_length: 0,
            stats: RunStats::default(),
        };
    }

    // (1) gather + contract T′ at rt.
    let ft = obs::span(sim, "frag_tree", |sim| {
        gather_fragment_tree(sim, g, tau, mst, rt)
    });
    let frag = &mst.base_fragment_of;

    // (2) designate the r_i by downcast, then re-root base fragments.
    let root_items: Vec<(NodeId, collective::Item)> = ft
        .root_of
        .iter()
        .zip(&ft.ids)
        .map(|(&r, &id)| (r, (id, [1, 0])))
        .collect();
    let (views, _) = obs::span(sim, "reroot", |sim| {
        let (desig, _) = collective::downcast(sim, tau, root_items);
        passes::reroot(sim, &mst.base_views, |v| !desig[v].is_empty())
    });

    // (3–8) weighted pass for times, unit pass for indices.
    let weight_of = |a: NodeId, b: NodeId| -> Weight {
        g.neighbors(a)
            .iter()
            .find(|&&(u, _, _)| u == b)
            .map(|&(_, w, _)| w)
            .expect("tree edge exists")
    };
    let times = obs::span(sim, "times", |sim| {
        tour_times(sim, tau, &views, &ft, frag, &weight_of)
    });
    let unit = |_: NodeId, _: NodeId| 1 as Weight;
    let indices = obs::span(sim, "indices", |sim| {
        tour_times(sim, tau, &views, &ft, frag, &unit)
    });

    let mut appearances: Vec<Vec<(usize, Weight)>> = vec![Vec::new(); n];
    let mut total_length = 0;
    for v in 0..n {
        assert_eq!(times[v].len(), indices[v].len());
        for (&t, &i) in times[v].iter().zip(&indices[v]) {
            appearances[v].push((i as usize, t));
            total_length = total_length.max(t);
        }
        appearances[v].sort_unstable();
    }

    let stats = sim.total().since(start);
    DistEulerTour {
        appearances,
        total_length,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boruvka::distributed_mst;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::tree::RootedTree;
    use lightgraph::{generators, Graph};

    fn check_tour(g: &Graph, rt: NodeId, seed: u64) -> DistEulerTour {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);
        let mst = distributed_mst(&mut sim, &tau, rt, seed);
        let tour = distributed_euler_tour(&mut sim, &tau, &mst, rt);
        // sequential reference on the same (unique) MST
        let t = RootedTree::from_edge_ids(g, &mst.mst_edges, rt);
        let reference = t.euler_tour();
        let (seq, times) = tour.assemble();
        assert_eq!(seq, reference.seq, "tour sequence mismatch");
        assert_eq!(times, reference.times, "tour times mismatch");
        assert_eq!(tour.total_length, 2 * mst.weight);
        tour
    }

    #[test]
    fn tour_matches_sequential_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(50, 0.1, 30, seed);
            check_tour(&g, 0, seed);
        }
    }

    #[test]
    fn tour_matches_on_structured_graphs() {
        check_tour(&generators::path(30, 4), 0, 1);
        check_tour(&generators::star(20, 9, 2), 0, 2);
        check_tour(&generators::grid(6, 7, 15, 3), 5, 3);
        check_tour(&generators::random_geometric(40, 0.3, 4), 7, 4);
        check_tour(&generators::caterpillar(10, 2, 5), 3, 5);
    }

    #[test]
    fn tour_of_tiny_graphs() {
        check_tour(&Graph::from_edges(2, [(0, 1, 5)]).unwrap(), 0, 0);
        check_tour(&Graph::from_edges(3, [(0, 1, 2), (1, 2, 3)]).unwrap(), 1, 0);
    }

    #[test]
    fn every_vertex_knows_only_its_own_appearances() {
        let g = generators::erdos_renyi(40, 0.12, 25, 5);
        let tour = check_tour(&g, 0, 5);
        let t: usize = tour.appearances.iter().map(Vec::len).sum();
        assert_eq!(t, 2 * g.n() - 1);
        for apps in &tour.appearances {
            for w in apps.windows(2) {
                assert!(w[0].0 < w[1].0, "appearances must be sorted and distinct");
            }
        }
    }

    #[test]
    fn paper_worked_example_lengths() {
        // Figure 1's invariants on a concrete instance: with unit
        // weights, ℓ(r_1) of the whole tree as one fragment is 2(n-1)
        // and g values decompose along fragments. We verify the
        // distributed g(rt) equals twice the MST weight on a unit path.
        let g = generators::path(12, 1);
        let tour = check_tour(&g, 0, 7);
        assert_eq!(tour.total_length, 2 * 11);
    }

    #[test]
    fn tour_transport_beats_the_broadcast_wall() {
        // The contracted transport must scale like O(n + F·D), not the
        // O(F·n) the broadcast-everything version paid: on a 200-vertex
        // geometric graph the tour must spend well under n per fragment.
        let g = generators::random_geometric(200, 0.12, 8);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let mst = distributed_mst(&mut sim, &tau, 0, 8);
        let f = mst.fragment_count() as u64;
        let tour = distributed_euler_tour(&mut sim, &tau, &mst, 0);
        assert!(f > 2, "test needs a multi-fragment instance, got {f}");
        let delivered = tour.stats.messages_delivered();
        let n = g.n() as u64;
        assert!(
            delivered < f * n,
            "tour transport not contracted: {delivered} deliveries ≥ F·n = {}",
            f * n
        );
    }
}
