//! The distributed Euler tour of the MST (§3, Lemma 2).
//!
//! Given the base-fragment structure produced by
//! [`crate::boruvka::distributed_mst`], computes the preorder traversal
//! `L = {rt = x_0, x_1, …, x_{2n-2}}` of the MST: every vertex learns its
//! set of appearances `L(v)` with both the *index* and the *weighted
//! visit time* `R_x` of each appearance. Children are ordered by vertex
//! id, exactly like the sequential reference
//! [`lightgraph::tree::RootedTree::euler_tour`].
//!
//! The implementation follows §3.1–3.3 step by step:
//!
//! 1. broadcast the fragment tree `T′` (external edges with endpoint
//!    fragments, endpoints and weights) — `O(√n + D)` rounds,
//! 2. re-root each base fragment at its root `r_i` (the endpoint of the
//!    external edge towards the parent fragment),
//! 3. *local tour lengths* `ℓ(v)` by a bottom-up fragment pass,
//! 4. broadcast `{ℓ(r_i)}` and locally derive the *global tour lengths*
//!    `g(r_i)` of all fragment roots from `T′`,
//! 5. *global tour lengths* `g(v)` by a second bottom-up pass seeded
//!    with the external children's `g`-values,
//! 6. DFS *intervals* by a top-down fragment pass (child-fragment roots
//!    receive their interval inside the parent fragment but do not
//!    propagate it),
//! 7. shifts `s_i` computed at `rt` from the gathered root intervals and
//!    broadcast — `O(√n + D)` rounds,
//! 8. every vertex locally derives all its visit times; a second run of
//!    passes 3–7 with unit weights yields the tour *indices* (the paper:
//!    "running the same algorithm that finds visiting times, ignoring
//!    the weights").

use crate::boruvka::MstResult;
use crate::passes::{self, FragView, Val};
use congest::collective;
use congest::obs;
use congest::tree::BfsTree;
use congest::{pack2, unpack2, Executor, RunStats};
use lightgraph::{EdgeId, Graph, NodeId, Weight};
use std::collections::{HashMap, HashSet, VecDeque};

/// The distributed Euler tour: per-vertex appearances in `L`.
#[derive(Debug, Clone)]
pub struct DistEulerTour {
    /// `appearances[v]` = the positions and weighted visit times of `v`
    /// in `L`, sorted by position (the set `L(v)` with times `R_x`).
    pub appearances: Vec<Vec<(usize, Weight)>>,
    /// Total weighted tour length (`2 · w(MST)`).
    pub total_length: Weight,
    /// Rounds/messages spent computing the tour (excluding the MST).
    pub stats: RunStats,
}

impl DistEulerTour {
    /// Reassembles the full tour sequence `L` (positions → vertices and
    /// visit times) — a *global* view used by tests and experiments, not
    /// available to any single vertex in the real model.
    pub fn assemble(&self) -> (Vec<NodeId>, Vec<Weight>) {
        let total: usize = self.appearances.iter().map(Vec::len).sum();
        let mut seq = vec![usize::MAX; total];
        let mut times = vec![0; total];
        for (v, apps) in self.appearances.iter().enumerate() {
            for &(i, t) in apps {
                seq[i] = v;
                times[i] = t;
            }
        }
        assert!(seq.iter().all(|&v| v != usize::MAX), "tour has holes");
        (seq, times)
    }
}

/// Fragment-tree (`T′`) data derivable locally by every vertex after the
/// external-edge broadcast.
struct FragTree {
    /// Root vertex `r_i` of every fragment (or `rt` for the root
    /// fragment), keyed by fragment id.
    root_of: HashMap<u64, NodeId>,
    /// Parent fragment of each non-root fragment.
    parent_frag: HashMap<u64, u64>,
    /// External children attached at a vertex: `(child fragment, child
    /// root vertex)` lists.
    ext_children_at: HashMap<NodeId, Vec<(u64, NodeId)>>,
    /// Fragment ids in root-to-leaf BFS order over `T′`.
    order: Vec<u64>,
}

/// Step 1: gather + broadcast the external edges, then assemble `T′`
/// (the assembly itself is free local computation, identical at every
/// vertex; the orchestrator performs it once on their behalf).
fn broadcast_fragment_tree(
    sim: &mut impl Executor,
    g: &Graph,
    tau: &BfsTree,
    mst: &MstResult,
    rt: NodeId,
) -> FragTree {
    let frag = &mst.base_fragment_of;
    let external: HashSet<EdgeId> = mst.external_edges.iter().copied().collect();
    // Each endpoint of an external edge contributes (fragment, vertex),
    // keyed by (edge, side); 2 items per edge, ≤ 2√n total.
    let (table, _) = collective::gather(sim, tau, |v| {
        let mut out: Vec<collective::Item> = Vec::new();
        for &(u, _, e) in g.neighbors(v) {
            if external.contains(&e) {
                let side = u64::from(v > u);
                out.push((pack2(e as u64, side), [frag[v], v as u64]));
            }
        }
        out
    });
    let bcast: Vec<collective::Item> = table.iter().map(|(&k, &v)| (k, v)).collect();
    let (recv, _) = collective::broadcast(sim, tau, bcast);
    debug_assert!(recv.iter().all(|r| r.len() == table.len()));

    // Local assembly.
    let mut sides: HashMap<EdgeId, [(u64, NodeId); 2]> = HashMap::new();
    for (&key, &val) in &table {
        let (e, side) = unpack2(key);
        let entry = sides
            .entry(e as EdgeId)
            .or_insert([(u64::MAX, 0), (u64::MAX, 0)]);
        entry[side as usize] = (val[0], val[1] as NodeId);
    }
    let mut edges: Vec<(EdgeId, (u64, NodeId), (u64, NodeId))> = sides
        .into_iter()
        .map(|(e, [a, b])| {
            assert!(
                a.0 != u64::MAX && b.0 != u64::MAX,
                "external edge reported once"
            );
            (e, a, b)
        })
        .collect();
    edges.sort_by_key(|&(e, _, _)| e);

    let root_frag = frag[rt];
    let mut adj: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, &(_, (fa, _), (fb, _))) in edges.iter().enumerate() {
        adj.entry(fa).or_default().push(i);
        adj.entry(fb).or_default().push(i);
    }
    let mut ft = FragTree {
        root_of: HashMap::from([(root_frag, rt)]),
        parent_frag: HashMap::new(),
        ext_children_at: HashMap::new(),
        order: vec![root_frag],
    };
    let mut queue = VecDeque::from([root_frag]);
    let mut seen = HashSet::from([root_frag]);
    while let Some(f) = queue.pop_front() {
        for &i in adj.get(&f).into_iter().flatten() {
            let (_, (fa, va), (fb, vb)) = edges[i];
            let (cf, cv, attach) = if fa == f { (fb, vb, va) } else { (fa, va, vb) };
            if seen.insert(cf) {
                ft.root_of.insert(cf, cv);
                ft.parent_frag.insert(cf, f);
                ft.ext_children_at.entry(attach).or_default().push((cf, cv));
                ft.order.push(cf);
                queue.push_back(cf);
            }
        }
    }
    assert_eq!(seen.len(), ft.order.len());
    ft
}

/// Steps 3–8 for one weight function; returns per-vertex visit "times"
/// of all appearances, in traversal order.
fn tour_times(
    sim: &mut impl Executor,
    tau: &BfsTree,
    views: &[FragView],
    ft: &FragTree,
    frag: &[u64],
    wf: &dyn Fn(NodeId, NodeId) -> Weight,
) -> Vec<Vec<Weight>> {
    let n = views.len();
    let parent_weight = |v: NodeId| -> Weight { views[v].parent.map(|p| wf(v, p)).unwrap_or(0) };

    // (3) local tour lengths ℓ(v): child sends ℓ(child) + 2·w(child, v).
    let (ell, _) = passes::up_pass_full(
        sim,
        views,
        |_| [0, 0, 0],
        |a, b| [a[0] + b[0], 0, 0],
        |v| {
            let wp = 2 * parent_weight(v);
            move |val: Val| [val[0] + wp, 0, 0]
        },
    );

    // (4) gather + broadcast {ℓ(r_i)}; derive g(r_i) over T′ locally.
    let (ltable, _) = collective::gather(sim, tau, |v| {
        if views[v].parent.is_none() {
            vec![(frag[v], [ell[v].0[0], 0])]
        } else {
            Vec::new()
        }
    });
    let bcast: Vec<collective::Item> = ltable.iter().map(|(&k, &v)| (k, v)).collect();
    let (recv, _) = collective::broadcast(sim, tau, bcast);
    debug_assert!(recv.iter().all(|r| r.len() == ltable.len()));

    // external-edge weight between a child fragment's root and its
    // attach vertex, under the current weight function
    let mut attach_of: HashMap<u64, NodeId> = HashMap::new();
    for (&attach, children) in &ft.ext_children_at {
        for &(cf, _) in children {
            attach_of.insert(cf, attach);
        }
    }
    let ext_w = |cf: u64| -> Weight { wf(attach_of[&cf], ft.root_of[&cf]) };

    let mut children_of: HashMap<u64, Vec<u64>> = HashMap::new();
    for (&f, &pf) in &ft.parent_frag {
        children_of.entry(pf).or_default().push(f);
    }
    let mut g_root: HashMap<u64, Weight> = HashMap::new();
    for &f in ft.order.iter().rev() {
        let mut total = ltable[&f][0];
        for &cf in children_of.get(&f).into_iter().flatten() {
            total += g_root[&cf] + 2 * ext_w(cf);
        }
        g_root.insert(f, total);
    }

    // (5) global tour lengths g(v).
    let g_root_ref = &g_root;
    let (gvals, _) = passes::up_pass_full(
        sim,
        views,
        |v| {
            let own: Weight = ft
                .ext_children_at
                .get(&v)
                .into_iter()
                .flatten()
                .map(|&(cf, croot)| g_root_ref[&cf] + 2 * wf(v, croot))
                .sum();
            [own, 0, 0]
        },
        |a, b| [a[0] + b[0], 0, 0],
        |v| {
            let wp = 2 * parent_weight(v);
            move |val: Val| [val[0] + wp, 0, 0]
        },
    );
    for v in 0..n {
        if views[v].parent.is_none() {
            debug_assert_eq!(
                gvals[v].0[0], g_root[&frag[v]],
                "distributed g(r_i) disagrees with the local T′ computation"
            );
        }
    }

    // T-children of every vertex in id order with m = g(child) + 2w.
    let mut t_children: Vec<Vec<(NodeId, Weight, Weight)>> = vec![Vec::new(); n];
    for v in 0..n {
        for &(child, mval) in &gvals[v].1 {
            t_children[v].push((child, mval[0], wf(v, child)));
        }
        for &(cf, croot) in ft.ext_children_at.get(&v).into_iter().flatten() {
            t_children[v].push((croot, g_root[&cf] + 2 * wf(v, croot), wf(v, croot)));
        }
        t_children[v].sort_by_key(|&(c, _, _)| c);
    }

    // (6) interval starts: top-down, fragment-relative; external
    // children receive (over the external edge) their interval inside
    // the parent fragment but do not propagate it.
    let t_children_ref = &t_children;
    let (starts, _) = passes::down_pass(
        sim,
        views,
        |_| [0, 0, 0],
        |v| {
            let ch = t_children_ref[v].clone();
            move |_, val: Val| {
                let mut acc = val[0];
                let mut out = Vec::with_capacity(ch.len());
                for &(c, m, w) in &ch {
                    out.push((c, [acc + w, 0, 0]));
                    acc += m;
                }
                out
            }
        },
    );

    // (7) shifts: fragment roots report the start of their interval in
    // the parent fragment; rt resolves the recursion and broadcasts.
    let (btable, _) = collective::gather(sim, tau, |v| {
        if views[v].parent.is_none() && starts[v].len() > 1 {
            vec![(frag[v], [starts[v][1][0], 0])]
        } else {
            Vec::new()
        }
    });
    let shift_items: Vec<collective::Item> = {
        let mut s: HashMap<u64, Weight> = HashMap::new();
        for &f in &ft.order {
            match ft.parent_frag.get(&f) {
                None => {
                    s.insert(f, 0);
                }
                Some(pf) => {
                    s.insert(f, s[pf] + btable[&f][0]);
                }
            }
        }
        s.into_iter().map(|(f, v)| (f, [v, 0])).collect()
    };
    let (shift_recv, _) = collective::broadcast(sim, tau, shift_items.clone());
    debug_assert!(shift_recv.iter().all(|r| r.len() == shift_items.len()));
    let shifts: HashMap<u64, Weight> = shift_items.into_iter().map(|(f, [v, _])| (f, v)).collect();

    // (8) local visit times: entry, then one appearance after each
    // child's subtree.
    (0..n)
        .map(|v| {
            let entry = shifts[&frag[v]] + starts[v][0][0];
            let mut out = Vec::with_capacity(t_children[v].len() + 1);
            let mut t = entry;
            out.push(t);
            for &(_, m, _) in &t_children[v] {
                t += m;
                out.push(t);
            }
            out
        })
        .collect()
}

/// Computes the distributed Euler tour of the MST rooted at `rt`
/// (Lemma 2: `Õ(√n + D)` rounds given the fragment structure).
///
/// `mst` must come from [`crate::boruvka::distributed_mst`] on the same
/// graph; `tau` is the shared BFS tree.
///
/// Deterministic under the `congest::exec` engine contract: the same
/// appearances and `RunStats` on the simulator and the parallel engine
/// (property-tested in `crates/engine/tests/equivalence.rs`), which is
/// what lets the `scenario` runner sweep `euler` on either engine.
pub fn distributed_euler_tour(
    sim: &mut impl Executor,
    tau: &BfsTree,
    mst: &MstResult,
    rt: NodeId,
) -> DistEulerTour {
    let start = sim.total();
    // Owned copy: closures below capture `g` across `&mut sim` phases
    // (see `distributed_mst`).
    let g_owned = sim.graph().clone();
    let g: &Graph = &g_owned;
    let n = g.n();
    if n == 0 {
        return DistEulerTour {
            appearances: Vec::new(),
            total_length: 0,
            stats: RunStats::default(),
        };
    }

    // (1) broadcast T′.
    let ft = obs::span(sim, "frag_tree", |sim| {
        broadcast_fragment_tree(sim, g, tau, mst, rt)
    });
    let frag = &mst.base_fragment_of;

    // (2) re-root base fragments at r_i.
    let root_of = ft.root_of.clone();
    let (views, _) = obs::span(sim, "reroot", |sim| {
        passes::reroot(sim, &mst.base_views, |v| root_of[&frag[v]] == v)
    });

    // (3–8) weighted pass for times, unit pass for indices.
    let weight_of = |a: NodeId, b: NodeId| -> Weight {
        g.neighbors(a)
            .iter()
            .find(|&&(u, _, _)| u == b)
            .map(|&(_, w, _)| w)
            .expect("tree edge exists")
    };
    let times = obs::span(sim, "times", |sim| {
        tour_times(sim, tau, &views, &ft, frag, &weight_of)
    });
    let unit = |_: NodeId, _: NodeId| 1 as Weight;
    let indices = obs::span(sim, "indices", |sim| {
        tour_times(sim, tau, &views, &ft, frag, &unit)
    });

    let mut appearances: Vec<Vec<(usize, Weight)>> = vec![Vec::new(); n];
    let mut total_length = 0;
    for v in 0..n {
        assert_eq!(times[v].len(), indices[v].len());
        for (&t, &i) in times[v].iter().zip(&indices[v]) {
            appearances[v].push((i as usize, t));
            total_length = total_length.max(t);
        }
        appearances[v].sort_unstable();
    }

    let stats = sim.total().since(start);
    DistEulerTour {
        appearances,
        total_length,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boruvka::distributed_mst;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::tree::RootedTree;
    use lightgraph::{generators, Graph};

    fn check_tour(g: &Graph, rt: NodeId, seed: u64) -> DistEulerTour {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);
        let mst = distributed_mst(&mut sim, &tau, rt, seed);
        let tour = distributed_euler_tour(&mut sim, &tau, &mst, rt);
        // sequential reference on the same (unique) MST
        let t = RootedTree::from_edge_ids(g, &mst.mst_edges, rt);
        let reference = t.euler_tour();
        let (seq, times) = tour.assemble();
        assert_eq!(seq, reference.seq, "tour sequence mismatch");
        assert_eq!(times, reference.times, "tour times mismatch");
        assert_eq!(tour.total_length, 2 * mst.weight);
        tour
    }

    #[test]
    fn tour_matches_sequential_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(50, 0.1, 30, seed);
            check_tour(&g, 0, seed);
        }
    }

    #[test]
    fn tour_matches_on_structured_graphs() {
        check_tour(&generators::path(30, 4), 0, 1);
        check_tour(&generators::star(20, 9, 2), 0, 2);
        check_tour(&generators::grid(6, 7, 15, 3), 5, 3);
        check_tour(&generators::random_geometric(40, 0.3, 4), 7, 4);
        check_tour(&generators::caterpillar(10, 2, 5), 3, 5);
    }

    #[test]
    fn tour_of_tiny_graphs() {
        check_tour(&Graph::from_edges(2, [(0, 1, 5)]).unwrap(), 0, 0);
        check_tour(&Graph::from_edges(3, [(0, 1, 2), (1, 2, 3)]).unwrap(), 1, 0);
    }

    #[test]
    fn every_vertex_knows_only_its_own_appearances() {
        let g = generators::erdos_renyi(40, 0.12, 25, 5);
        let tour = check_tour(&g, 0, 5);
        let t: usize = tour.appearances.iter().map(Vec::len).sum();
        assert_eq!(t, 2 * g.n() - 1);
        for apps in &tour.appearances {
            for w in apps.windows(2) {
                assert!(w[0].0 < w[1].0, "appearances must be sorted and distinct");
            }
        }
    }

    #[test]
    fn paper_worked_example_lengths() {
        // Figure 1's invariants on a concrete instance: with unit
        // weights, ℓ(r_1) of the whole tree as one fragment is 2(n-1)
        // and g values decompose along fragments. We verify the
        // distributed g(rt) equals twice the MST weight on a unit path.
        let g = generators::path(12, 1);
        let tour = check_tour(&g, 0, 7);
        assert_eq!(tour.total_length, 2 * 11);
    }
}
