//! Two-phase distributed MST (the \[KP98\]/\[Elk17b\] substitute of §3.1).
//!
//! Phase 1 grows *base fragments* by local star-merges with a diameter
//! cap: every fragment maintains a spanning tree of real graph edges and
//! a diameter estimate held at its leader; each phase, small fragments
//! find their minimum-weight outgoing edge (MWOE) by an intra-fragment
//! convergecast, flip a common-seed coin, and tails merge into heads (or
//! into frozen large fragments) across their MWOE. Star merges keep the
//! merge depth at one, and the estimate cap keeps base-fragment
//! hop-diameter `O(√n · log n)`; fragments of diameter `≥ √n` number at
//! most `√n`, so phase 1 ends with `O(√n)` base fragments — exactly the
//! structure §3 consumes.
//!
//! Phase 2 finishes the MST globally: per-fragment MWOEs flow up the
//! BFS tree through the **combiner-aware convergecast**
//! ([`congest::collective::converge_merged`]) — the lexicographic
//! `(weight, edge)` minimum is a semilattice merge, so candidates merge
//! *in flight* inside the clause-7 per-edge queues instead of waiting on
//! watermark schedules — the root resolves the merges once and returns
//! each re-labeled component id along tree paths
//! ([`congest::collective::downcast`] to the affected base-fragment
//! leaders, then a selective intra-fragment flood). Borůvka halving
//! gives `O(log n)` global phases. Neighbor fragment ids are kept in a
//! persistent per-edge table (`NbrTable`) refreshed *incrementally*:
//! only vertices whose id changed re-announce, and only across their
//! cross-fragment edges — same-fragment neighbors made the identical
//! relabel move and repair their entries locally. The table opens at
//! identity knowledge (neighbor ids are readable off the edge list in
//! CONGEST), so the historical `2m` opening flood is never paid and
//! every refresh charges only the boundary of what actually merged.
//!
//! Ties are broken by `(weight, edge id)` throughout, which makes edge
//! weights effectively unique, the MST unique, and the distributed
//! result bit-identical to sequential Kruskal with the same tie-break.

use crate::passes::{self, FragView, Val};
use congest::collective;
use congest::obs;
use congest::tree::BfsTree;
use congest::{pack2, unpack2, Ctx, Executor, Message, Program, RunStats, Word};
use lightgraph::{EdgeId, Graph, NodeId, Weight, INF};
use std::collections::{BTreeMap, HashMap, HashSet};

const STATUS_TAIL: u64 = 0;
const STATUS_HEAD: u64 = 1;
const STATUS_FROZEN: u64 = 2;

const TAG_FRAG: u64 = 10;
const TAG_REQ: u64 = 11;
const TAG_ACC: u64 = 12;
const TAG_REJ: u64 = 13;
const TAG_RELABEL: u64 = 14;

/// Result of the distributed MST construction.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// All `n - 1` MST edge ids, sorted.
    pub mst_edges: Vec<EdgeId>,
    /// Total MST weight.
    pub weight: Weight,
    /// Base fragment of each vertex (the fragment *leader's* vertex id —
    /// stable across the run).
    pub base_fragment_of: Vec<u64>,
    /// Phase-1 fragment trees: parent orientation towards each
    /// fragment's leader, `tree_neighbors` = incident internal edges.
    pub base_views: Vec<FragView>,
    /// The phase-2 MST edges crossing between base fragments ("external
    /// edges" in §3.1); `|external_edges| = #fragments - 1`.
    pub external_edges: Vec<EdgeId>,
    /// Number of phase-1 (local growth) iterations executed.
    pub phase1_iterations: usize,
    /// Number of phase-2 (global Borůvka) iterations executed.
    pub phase2_iterations: usize,
    /// Rounds and messages consumed by the whole construction.
    pub stats: RunStats,
    /// Cached base-fragment count (one leader per fragment), computed
    /// once at construction — [`Self::fragment_count`] used to clone and
    /// sort `base_fragment_of` on every call.
    fragments: usize,
}

impl MstResult {
    /// Number of base fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One announcement round of the incremental exchange: a vertex with
/// `announce = Some((f, targets))` tells exactly `targets` (in
/// neighbor-slot order, matching `send_all`'s order) its new fragment
/// id `f`. Targets are the neighbors whose [`NbrTable`] entry for this
/// vertex is actually stale — see [`NbrTable::refresh`] for why
/// same-fragment neighbors need no message.
struct Announce {
    announce: Option<(u64, Vec<NodeId>)>,
    heard: Vec<(NodeId, u64)>,
}

impl Program for Announce {
    type Output = Vec<(NodeId, u64)>;
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((f, targets)) = self.announce.take() {
            let msg = Message::words(&[TAG_FRAG, f]);
            for u in targets {
                ctx.send(u, msg.clone());
            }
        }
    }
    fn round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_FRAG);
            self.heard.push((*from, msg.word(1)));
        }
    }
    fn finish(self) -> Self::Output {
        self.heard
    }
}

/// Persistent neighbor-fragment table: `frag_at[v][i]` holds the latest
/// fragment id known for the `i`-th neighbor of `v` (slot-aligned with
/// `g.neighbors(v)`, a dense `Vec` rather than a per-round `HashMap`).
/// The table opens at identity knowledge (see [`NbrTable::new`]) and
/// [`NbrTable::refresh`] is *incremental*: a vertex re-announces only
/// when its fragment id changed since its last announcement, and only
/// across edges whose far endpoint cannot deduce the change locally —
/// each refresh charges only the cross-fragment boundary of what
/// actually merged, never a `2m` flood.
struct NbrTable {
    /// Neighbor id → slot, built once at construction (off the per-phase
    /// hot path; lookups during a refresh are one hash per *update*).
    slot: Vec<HashMap<NodeId, usize>>,
    frag_at: Vec<Vec<u64>>,
    last_announced: Vec<u64>,
}

impl NbrTable {
    /// Starts from *identity knowledge*: every vertex begins in its own
    /// singleton fragment (`frag[v] = v`), and in CONGEST a vertex's
    /// neighbor list already names each neighbor's id — so the table
    /// opens as `frag_at[v][i] = u` and `last_announced[v] = v` with
    /// zero messages. The historical `2m` opening flood announced
    /// exactly this (every vertex telling neighbors its own id, which
    /// they could already read off the edge), so skipping it changes no
    /// observable state, only the message bill.
    fn new(g: &Graph) -> Self {
        NbrTable {
            slot: (0..g.n())
                .map(|v| {
                    g.neighbors(v)
                        .iter()
                        .enumerate()
                        .map(|(i, &(u, _, _))| (u, i))
                        .collect()
                })
                .collect(),
            frag_at: (0..g.n())
                .map(|v| g.neighbors(v).iter().map(|&(u, _, _)| u as u64).collect())
                .collect(),
            last_announced: (0..g.n() as u64).collect(),
        }
    }

    /// Brings the table up to date with `frag`, charging only changed
    /// vertices — and, per changed vertex, only its *cross-fragment*
    /// edges.
    ///
    /// Relabels are fragment-uniform: every vertex sharing a fragment
    /// id relabels to the same new id in the same step, and exactly one
    /// relabel step separates two refreshes. So when `v` moved from
    /// `old` to `frag[v]`, a neighbor that `v` last saw in `old` made
    /// the *identical* move and can repair its own table locally —
    /// each changed vertex rewrites its entries equal to its own old id
    /// (the "rewrite pass" below) instead of receiving a message. Only
    /// neighbors `v` last saw in a *different* fragment hold a stale
    /// entry no local rule can fix; those are the announce targets.
    /// Received updates and local rewrites touch disjoint slots (a
    /// neighbor announces to `v` only when their old ids differ, and
    /// the rewrite touches only entries equal to `v`'s old id), so
    /// application order is irrelevant.
    fn refresh(&mut self, sim: &mut impl Executor, frag: &[u64]) {
        let last = &self.last_announced;
        let frag_at = &self.frag_at;
        // Targets are computed against the pre-rewrite table: entries
        // still hold what `v` knew at its last announcement.
        let (heard, _) = sim.run(|v, g| {
            let announce = (frag[v] != last[v]).then(|| {
                let old = last[v];
                let targets = g
                    .neighbors(v)
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| frag_at[v][i] != old)
                    .map(|(_, &(u, _, _))| u)
                    .collect();
                (frag[v], targets)
            });
            Announce {
                announce,
                heard: Vec::new(),
            }
        });
        // Rewrite pass: a changed vertex repairs same-old-fragment
        // entries locally (they all made the same move it did).
        for v in 0..frag.len() {
            let old = self.last_announced[v];
            if frag[v] != old {
                for e in &mut self.frag_at[v] {
                    if *e == old {
                        *e = frag[v];
                    }
                }
            }
        }
        for (v, updates) in heard.into_iter().enumerate() {
            for (u, f) in updates {
                self.frag_at[v][self.slot[v][&u]] = f;
            }
        }
        self.last_announced.copy_from_slice(frag);
    }
}

/// The tail→head merge negotiation across MWOE edges (two rounds).
struct Negotiate {
    /// `Some((partner vertex, own frag, own est))` if this vertex is the
    /// acting endpoint of a participating tail fragment.
    request: Option<(NodeId, u64, u64)>,
    /// This vertex's fragment status (from the status flood).
    status: u64,
    frag: u64,
    /// Suitors accepted at this vertex: `(tail endpoint, tail est)`.
    accepted: Vec<(NodeId, u64)>,
    /// Merge decision if this vertex's request was accepted.
    merge_into: Option<(u64, NodeId)>,
}

impl Program for Negotiate {
    type Output = (Vec<(NodeId, u64)>, Option<(u64, NodeId)>);
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((partner, frag, est)) = self.request {
            ctx.send(partner, Message::words(&[TAG_REQ, frag, est]));
        }
    }
    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            match msg.word(0) {
                TAG_REQ => {
                    if self.status == STATUS_HEAD || self.status == STATUS_FROZEN {
                        self.accepted.push((*from, msg.word(2)));
                        ctx.send(*from, Message::words(&[TAG_ACC, self.frag]));
                    } else {
                        ctx.send(*from, Message::words(&[TAG_REJ]));
                    }
                }
                TAG_ACC => {
                    self.merge_into = Some((msg.word(1), *from));
                }
                TAG_REJ => {}
                other => unreachable!("unexpected tag {other}"),
            }
        }
    }
    fn finish(self) -> Self::Output {
        (self.accepted, self.merge_into)
    }
}

/// Re-label + re-root flood inside merged tail fragments.
struct Relabel {
    /// `Some((new frag, partner))` at the acting endpoint.
    start: Option<(u64, NodeId)>,
    tree_neighbors: Vec<NodeId>,
    adopted: Option<(u64, Option<NodeId>)>,
}

impl Relabel {
    fn spread(&mut self, ctx: &mut Ctx<'_>, new_frag: u64, skip: Option<NodeId>) {
        for &u in &self.tree_neighbors.clone() {
            if Some(u) != skip {
                ctx.send(u, Message::words(&[TAG_RELABEL, new_frag]));
            }
        }
    }
}

impl Program for Relabel {
    type Output = Option<(u64, Option<NodeId>)>;
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((new_frag, partner)) = self.start {
            self.adopted = Some((new_frag, Some(partner)));
            self.spread(ctx, new_frag, None);
        }
    }
    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_RELABEL);
            if self.adopted.is_none() {
                let new_frag = msg.word(1);
                self.adopted = Some((new_frag, Some(*from)));
                self.spread(ctx, new_frag, Some(*from));
            }
        }
    }
    fn finish(self) -> Self::Output {
        self.adopted
    }
}

/// Per-vertex local minimum outgoing edge, as an up-pass value
/// `[weight, pack2(edge, partner fragment), 0]` (`[INF, MAX, 0]` if
/// none). `nbr_frag` is the vertex's slot-aligned [`NbrTable`] row.
fn local_mwoe(g: &Graph, v: NodeId, frag: &[u64], nbr_frag: &[u64]) -> Val {
    let mut best: Val = [INF, Word::MAX, 0];
    for (i, &(_, w, e)) in g.neighbors(v).iter().enumerate() {
        let uf = nbr_frag[i];
        debug_assert_ne!(uf, u64::MAX, "neighbor id exchanged");
        if uf != frag[v] {
            let cand = [w, pack2(e as u64, uf), 0];
            if (cand[0], cand[1]) < (best[0], best[1]) {
                best = cand;
            }
        }
    }
    best
}

fn min_by_weight_edge(a: Val, b: Val) -> Val {
    if (a[0], a[1]) <= (b[0], b[1]) {
        a
    } else {
        b
    }
}

/// Runs the two-phase distributed MST rooted at `rt`.
///
/// `tau` is the BFS tree used for global coordination (build it once
/// with [`congest::tree::build_bfs_tree`]); `seed` feeds the phase-1
/// coin flips. Round/message costs accrue in `sim` and are reported in
/// [`MstResult::stats`].
///
/// # Panics
/// Panics if the graph is disconnected.
pub fn distributed_mst(sim: &mut impl Executor, tau: &BfsTree, rt: NodeId, seed: u64) -> MstResult {
    // Owned copy: phase closures capture `g` across `&mut sim` runs,
    // which the borrow checker cannot tie to the executor's inner
    // graph lifetime through the `Executor` trait. O(n + m) once,
    // negligible against the simulation itself.
    let g_owned = sim.graph().clone();
    let g = &g_owned;
    let n = g.n();
    let start_stats = sim.total();
    let diam_cap = (n as f64).sqrt().ceil() as u64;
    let target_frags = ((n as f64).sqrt().ceil() as usize).max(1);
    let max_phase1 = 4 * (usize::BITS - n.leading_zeros()) as usize + 8;

    let mut frag: Vec<u64> = (0..n as u64).collect();
    let mut views: Vec<FragView> = vec![FragView::default(); n];
    let mut est: Vec<u64> = vec![0; n]; // meaningful at leaders
    let mut phase1_iterations = 0;
    // Persistent neighbor-fragment table, shared by both phases.
    let mut nbr_table = NbrTable::new(g);

    obs::span(sim, "grow", |sim| {
        if n > 1 {
            loop {
                phase1_iterations += 1;
                // (a) neighbors learn each other's fragment ids
                // (incremental: only re-labeled vertices announce).
                nbr_table.refresh(sim, &frag);
                let nbr = &nbr_table.frag_at;
                // (b) intra-fragment MWOE convergecast.
                let frag_ref = &frag;
                let (mwoe, _) = passes::up_pass(
                    sim,
                    &views,
                    |v| local_mwoe(g, v, frag_ref, &nbr[v]),
                    min_by_weight_edge,
                );
                // (c) leaders pick a status and flood it with the MWOE.
                let est_ref = &est;
                let phase_salt = splitmix64(seed ^ (phase1_iterations as u64) << 17);
                let (flood, _) = passes::flood_pass(sim, &views, |v| {
                    // only evaluated at fragment roots
                    let has_mwoe = mwoe[v][0] < INF;
                    let status = if !has_mwoe || est_ref[v] >= diam_cap {
                        STATUS_FROZEN
                    } else if splitmix64(phase_salt ^ frag_ref[v]) & 1 == 1 {
                        STATUS_HEAD
                    } else {
                        STATUS_TAIL
                    };
                    let edge_word = if has_mwoe {
                        unpack2(mwoe[v][1]).0
                    } else {
                        Word::MAX
                    };
                    [status, edge_word, est_ref[v]]
                });
                let flood: Vec<Val> = flood
                    .into_iter()
                    .map(|o| o.expect("flood reaches all"))
                    .collect();
                // (d) negotiate across MWOE edges.
                let (negotiated, _) = sim.run(|v, _| {
                    let [status, mwoe_edge, fest] = flood[v];
                    let mut request = None;
                    if status == STATUS_TAIL && mwoe_edge != Word::MAX {
                        for (i, &(u, _, e)) in g.neighbors(v).iter().enumerate() {
                            if e as u64 == mwoe_edge && nbr[v][i] != frag[v] {
                                request = Some((u, frag[v], fest));
                            }
                        }
                    }
                    Negotiate {
                        request,
                        status,
                        frag: frag[v],
                        accepted: Vec::new(),
                        merge_into: None,
                    }
                });
                // (e) diameter-bump convergecast over the (old) head trees.
                let (bump, _) = passes::up_pass(
                    sim,
                    &views,
                    |v| {
                        let b = negotiated[v]
                            .0
                            .iter()
                            .map(|&(_, e)| e + 1)
                            .max()
                            .unwrap_or(0);
                        [b, 0, 0]
                    },
                    |a, b| [a[0].max(b[0]), 0, 0],
                );
                // (f) relabel/re-root flood inside merged tails.
                let (relabels, _) = sim.run(|v, _| Relabel {
                    start: negotiated[v].1,
                    tree_neighbors: views[v].tree_neighbors.clone(),
                    adopted: None,
                });
                // (g) local state updates (free).
                for v in 0..n {
                    for &(suitor, _) in &negotiated[v].0 {
                        views[v].tree_neighbors.push(suitor);
                    }
                }
                for v in 0..n {
                    if let Some((new_frag, new_parent)) = relabels[v] {
                        frag[v] = new_frag;
                        views[v].parent = new_parent;
                        if let Some((_, partner)) = negotiated[v].1 {
                            if !views[v].tree_neighbors.contains(&partner) {
                                views[v].tree_neighbors.push(partner);
                            }
                        }
                    }
                }
                for v in 0..n {
                    if views[v].parent.is_none() && bump[v][0] > 0 {
                        est[v] += 2 * bump[v][0];
                    }
                }
                // (h) global termination census (leaders report). Sums
                // are not idempotent, so this stays on the watermark
                // convergecast (see `converge_merged`'s merge law).
                let views_ref = &views;
                let flood_ref = &flood;
                let (census, _) = collective::converge_sum(sim, tau, |v| {
                    if views_ref[v].parent.is_none() {
                        let active = (flood_ref[v][0] != STATUS_FROZEN
                            && flood_ref[v][1] != Word::MAX)
                            as u64;
                        vec![(0, [1, active])]
                    } else {
                        Vec::new()
                    }
                });
                let [fragments, active] = census.get(&0).copied().unwrap_or([0, 0]);
                if fragments <= target_frags as u64
                    || active == 0
                    || phase1_iterations >= max_phase1
                {
                    break;
                }
            }
        }
    });

    // Base fragment structure is frozen here.
    let base_fragment_of = frag.clone();
    let base_views = views.clone();
    // One leader (parent-less vertex) per base fragment.
    let fragments = (0..n).filter(|&v| base_views[v].parent.is_none()).count();

    // ------------------------------------------------------------------
    // Phase 2: global pipelined Borůvka on the fragment graph.
    // ------------------------------------------------------------------
    let mut external_edges: Vec<EdgeId> = Vec::new();
    let mut chosen_set: HashSet<EdgeId> = HashSet::new();
    let mut phase2_iterations = 0;
    obs::span(sim, "merge", |sim| loop {
        phase2_iterations += 1;
        nbr_table.refresh(sim, &frag);
        let nbr = &nbr_table.frag_at;
        let frag_ref = &frag;
        // Per-fragment MWOEs merge *in flight* through the eager
        // combiner-aware convergecast: the lexicographic (weight, edge)
        // min is a lawful semilattice merge, and the root map is
        // key-for-key identical to the watermark `converge`'s, so the
        // union-find replay below — and the MST — is bit-identical to
        // the pre-pipelined construction.
        let (map, _) = collective::converge_merged(
            sim,
            tau,
            |v| {
                let best = local_mwoe(g, v, frag_ref, &nbr[v]);
                if best[0] < INF {
                    vec![(frag_ref[v], [best[0], best[1]])]
                } else {
                    Vec::new()
                }
            },
            |_, a, b| {
                if (a[0], a[1]) <= (b[0], b[1]) {
                    a
                } else {
                    b
                }
            },
        );
        if map.is_empty() {
            break; // single fragment: MST complete
        }
        // Deterministic merge resolution (identical at every vertex;
        // performed once here on their behalf, in key order).
        let mut rep: BTreeMap<u64, u64> = BTreeMap::new();
        let find = |rep: &mut BTreeMap<u64, u64>, mut x: u64| {
            while rep.get(&x).copied().unwrap_or(x) != x {
                x = rep[&x];
            }
            x
        };
        for (&frag_a, &[_, packed]) in &map {
            let (edge, frag_b) = unpack2(packed);
            let (ra, rb) = (find(&mut rep, frag_a), find(&mut rep, frag_b));
            if ra != rb {
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                rep.insert(hi, lo);
            }
            if chosen_set.insert(edge as EdgeId) {
                external_edges.push(edge as EdgeId);
            }
        }
        // Instead of broadcasting every chosen edge to every vertex,
        // the root unicasts each *changed* component id to the affected
        // base-fragment leaders (members of a base fragment always share
        // their phase-2 id), and a selective flood spreads it inside
        // exactly those fragments.
        let mut relabel_items: Vec<(NodeId, collective::Item)> = Vec::new();
        for v in 0..n {
            if base_views[v].parent.is_none() {
                let new = find(&mut rep, frag[v]);
                if new != frag[v] {
                    relabel_items.push((v, (v as u64, [new, 0])));
                }
            }
        }
        let (newid, _) = collective::downcast(sim, tau, relabel_items);
        let newid_ref = &newid;
        let (flooded, _) = passes::flood_pass_opt(sim, &base_views, |v| {
            newid_ref[v].first().map(|&(_, [f, _])| [f, 0, 0])
        });
        for v in 0..n {
            frag[v] = find(&mut rep, frag[v]);
            debug_assert_eq!(
                flooded[v].map(|val| val[0]).unwrap_or(frag[v]),
                frag[v],
                "flooded relabel disagrees with the replay"
            );
        }
        assert!(
            phase2_iterations <= 2 * usize::BITS as usize,
            "phase 2 failed to converge — disconnected graph?"
        );
    });

    // Assemble the MST edge set: internal (fragment tree) + external.
    let mut mst_edges: Vec<EdgeId> = Vec::with_capacity(n.saturating_sub(1));
    for v in 0..n {
        if let Some(p) = base_views[v].parent {
            let e = g
                .neighbors(v)
                .iter()
                .find(|&&(u, _, _)| u == p)
                .map(|&(_, _, e)| e)
                .expect("fragment tree edge exists in graph");
            mst_edges.push(e);
        }
    }
    mst_edges.extend(&external_edges);
    mst_edges.sort_unstable();
    mst_edges.dedup();
    assert_eq!(
        mst_edges.len(),
        n.saturating_sub(1),
        "MST must have n-1 edges — graph disconnected or merge bug"
    );
    let weight = mst_edges.iter().map(|&e| g.edge(e).w).sum();

    let _ = rt;
    let stats = sim.total().since(start_stats);

    MstResult {
        mst_edges,
        weight,
        base_fragment_of,
        base_views,
        external_edges,
        phase1_iterations,
        phase2_iterations,
        stats,
        fragments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::{generators, mst::kruskal};

    fn check_graph(g: &Graph, seed: u64) -> MstResult {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let result = distributed_mst(&mut sim, &tau, 0, seed);
        let reference = kruskal(g);
        assert_eq!(result.weight, reference.weight, "weight mismatch");
        assert_eq!(result.mst_edges, reference.edges, "edge set mismatch");
        result
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::erdos_renyi(60, 0.1, 50, seed);
            check_graph(&g, seed);
        }
    }

    #[test]
    fn matches_kruskal_on_structured_graphs() {
        check_graph(&generators::path(40, 7), 1);
        check_graph(&generators::cycle(33, 5), 2);
        check_graph(&generators::star(25, 9, 3), 3);
        check_graph(&generators::grid(7, 8, 20, 4), 4);
        check_graph(&generators::complete(20, 30, 5), 5);
        check_graph(&generators::random_geometric(50, 0.3, 6), 6);
    }

    #[test]
    fn single_vertex_and_edge() {
        check_graph(&Graph::new(1), 0);
        check_graph(&Graph::from_edges(2, [(0, 1, 5)]).unwrap(), 0);
    }

    #[test]
    fn fragment_structure_is_consistent() {
        let g = generators::erdos_renyi(100, 0.08, 40, 9);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = distributed_mst(&mut sim, &tau, 0, 9);
        let f = r.fragment_count();
        assert_eq!(
            r.external_edges.len(),
            f - 1,
            "T' must be a tree on fragments"
        );
        // each fragment has exactly one leader (parent == None), and the
        // fragment id equals the leader's vertex id
        for v in 0..g.n() {
            if r.base_views[v].parent.is_none() {
                assert_eq!(r.base_fragment_of[v], v as u64);
            }
        }
        // fragment trees are internally consistent: following parents
        // stays within the fragment and reaches the leader
        for v in 0..g.n() {
            let mut cur = v;
            let mut steps = 0;
            while let Some(p) = r.base_views[cur].parent {
                assert_eq!(r.base_fragment_of[p], r.base_fragment_of[v]);
                cur = p;
                steps += 1;
                assert!(steps <= g.n());
            }
            assert_eq!(cur as u64, r.base_fragment_of[v]);
        }
        // external edges really cross fragments
        for &e in &r.external_edges {
            let edge = g.edge(e);
            assert_ne!(r.base_fragment_of[edge.u], r.base_fragment_of[edge.v]);
        }
    }

    #[test]
    fn fragments_have_bounded_diameter_on_paths() {
        // A path is the diameter-growth worst case; the cap must hold.
        let g = generators::path(100, 3);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = distributed_mst(&mut sim, &tau, 0, 11);
        // fragment sizes bound fragment diameter on a path
        let mut sizes: HashMap<u64, usize> = HashMap::new();
        for v in 0..g.n() {
            *sizes.entry(r.base_fragment_of[v]).or_insert(0) += 1;
        }
        let cap = 100f64.sqrt().ceil() as usize;
        for (&id, &s) in &sizes {
            // est-based cap allows a constant factor above √n
            assert!(s <= 8 * cap, "fragment {id} has size {s}, cap {cap}");
        }
    }
}
