//! Reusable fragment-tree passes.
//!
//! The fragment machinery of §3 repeatedly runs three communication
//! patterns *inside* base fragments (whose trees consist of real graph
//! edges, so messages travel on actual edges and cost real rounds):
//!
//! * [`up_pass`] — bottom-up aggregation: leaves start, every vertex
//!   combines its children's values with its own and forwards to its
//!   parent. `O(height)` rounds.
//! * [`down_pass`] — top-down distribution: fragment roots start, every
//!   vertex derives a per-child payload from the payload it received.
//!   `O(height)` rounds.
//! * [`reroot`] — re-roots every fragment tree at a designated vertex by
//!   flooding along tree edges; each vertex's new parent is the flood
//!   predecessor. `O(height)` rounds.
//!
//! All passes run in *all fragments in parallel*, exactly as the paper
//! prescribes ("locally in each fragment, i.e. in all the base fragments
//! in parallel").

use congest::{Ctx, Executor, Message, Program, RunStats, Word};
use lightgraph::NodeId;

/// A three-word payload travelling through a fragment pass.
pub type Val = [Word; 3];

const TAG_UP: u64 = 1;
const TAG_DOWN: u64 = 2;
const TAG_RESET: u64 = 3;

/// Per-vertex fragment-tree view used by the passes.
#[derive(Debug, Clone, Default)]
pub struct FragView {
    /// Parent within the fragment tree; `None` for the fragment root.
    pub parent: Option<NodeId>,
    /// All fragment-tree neighbors (parent and children).
    pub tree_neighbors: Vec<NodeId>,
}

impl FragView {
    /// Children = tree neighbors minus the parent.
    pub fn children(&self) -> Vec<NodeId> {
        self.tree_neighbors
            .iter()
            .copied()
            .filter(|&v| Some(v) != self.parent)
            .collect()
    }
}

// ---------------------------------------------------------------------
// Up pass
// ---------------------------------------------------------------------

struct UpProgram<C, T> {
    parent: Option<NodeId>,
    pending_children: usize,
    acc: Val,
    combine: C,
    outgoing: T,
    received: Vec<(NodeId, Val)>,
    sent: bool,
}

impl<C: Fn(Val, Val) -> Val, T: Fn(Val) -> Val> UpProgram<C, T> {
    fn try_send(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending_children == 0 && !self.sent {
            self.sent = true;
            if let Some(p) = self.parent {
                let [a, b, c] = (self.outgoing)(self.acc);
                ctx.send(p, Message::words(&[TAG_UP, a, b, c]));
            }
        }
    }
}

impl<C: Fn(Val, Val) -> Val, T: Fn(Val) -> Val> Program for UpProgram<C, T> {
    type Output = (Val, Vec<(NodeId, Val)>);

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.try_send(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_UP);
            let v = [msg.word(1), msg.word(2), msg.word(3)];
            self.received.push((*from, v));
            self.acc = (self.combine)(self.acc, v);
            self.pending_children -= 1;
        }
        self.try_send(ctx);
    }

    fn finish(self) -> Self::Output {
        (self.acc, self.received)
    }
}

/// Bottom-up aggregation over all fragment trees in parallel.
///
/// `own(v)` is the vertex's initial value; `combine` must be associative
/// and commutative. Returns each vertex's aggregate over its fragment
/// subtree (fragment roots hold the fragment-wide aggregate).
pub fn up_pass<C>(
    sim: &mut impl Executor,
    views: &[FragView],
    own: impl Fn(NodeId) -> Val,
    combine: C,
) -> (Vec<Val>, RunStats)
where
    C: Fn(Val, Val) -> Val + Clone + Send,
{
    let (out, stats) = up_pass_full(sim, views, own, combine, |_| identity_transform());
    (out.into_iter().map(|(acc, _)| acc).collect(), stats)
}

fn identity_transform() -> impl Fn(Val) -> Val {
    |v| v
}

/// Full-control bottom-up pass: like [`up_pass`] but the value a vertex
/// *sends* to its parent is `outgoing(v)(aggregate)` (e.g. "subtree tour
/// length plus twice the parent edge weight", §3.2), and the result
/// includes the individual values received from each child.
pub fn up_pass_full<C, T>(
    sim: &mut impl Executor,
    views: &[FragView],
    own: impl Fn(NodeId) -> Val,
    combine: C,
    mut outgoing: impl FnMut(NodeId) -> T,
) -> (Vec<(Val, Vec<(NodeId, Val)>)>, RunStats)
where
    C: Fn(Val, Val) -> Val + Clone + Send,
    T: Fn(Val) -> Val + Send,
{
    sim.run(|v, _| UpProgram {
        parent: views[v].parent,
        pending_children: views[v].children().len(),
        acc: own(v),
        combine: combine.clone(),
        outgoing: outgoing(v),
        received: Vec::new(),
        sent: false,
    })
}

// ---------------------------------------------------------------------
// Down pass
// ---------------------------------------------------------------------

type ChildPayloads = Vec<(NodeId, Val)>;

struct DownProgram<F> {
    is_root: bool,
    root_val: Val,
    derive: F,
    fired: bool,
    received: Vec<Val>,
}

impl<F: FnMut(NodeId, Val) -> ChildPayloads> DownProgram<F> {
    fn fire(&mut self, ctx: &mut Ctx<'_>, val: Val) {
        self.fired = true;
        let node = ctx.node();
        for (child, [a, b, c]) in (self.derive)(node, val) {
            ctx.send(child, Message::words(&[TAG_DOWN, a, b, c]));
        }
    }
}

impl<F: FnMut(NodeId, Val) -> ChildPayloads> Program for DownProgram<F> {
    type Output = Vec<Val>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_root {
            let val = self.root_val;
            self.received.push(val);
            self.fire(ctx, val);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (_, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_DOWN);
            let val = [msg.word(1), msg.word(2), msg.word(3)];
            self.received.push(val);
            if !self.fired {
                self.fire(ctx, val);
            }
        }
    }

    fn finish(self) -> Vec<Val> {
        self.received
    }
}

/// Top-down distribution over all fragment trees in parallel.
///
/// Fragment roots start with `root_val(root)`; every vertex receiving
/// its *first* value computes per-child payloads with
/// `derive(vertex, value)` (which may capture per-vertex data, e.g.
/// children's subtree aggregates from a previous [`up_pass`]) and sends
/// them — to arbitrary neighbors, not only fragment-tree children, which
/// §3.3 uses to hand child-fragment roots their interval inside the
/// parent fragment. Later values are recorded but not propagated
/// (paper: "roots do not initiate another interval assignment when they
/// receive a message from their parent").
///
/// Returns every value each vertex received, in arrival order; fragment
/// roots see their own `root_val` first.
pub fn down_pass<F>(
    sim: &mut impl Executor,
    views: &[FragView],
    root_val: impl Fn(NodeId) -> Val,
    mut make_derive: impl FnMut(NodeId) -> F,
) -> (Vec<Vec<Val>>, RunStats)
where
    F: FnMut(NodeId, Val) -> ChildPayloads + Send,
{
    sim.run(|v, _| DownProgram {
        is_root: views[v].parent.is_none(),
        root_val: root_val(v),
        derive: make_derive(v),
        fired: false,
        received: Vec::new(),
    })
}

/// Broadcasts the fragment root's value to every vertex of the fragment
/// (a [`down_pass`] that forwards verbatim).
pub fn flood_pass(
    sim: &mut impl Executor,
    views: &[FragView],
    root_val: impl Fn(NodeId) -> Val,
) -> (Vec<Option<Val>>, RunStats) {
    flood_pass_opt(sim, views, |v| Some(root_val(v)))
}

/// Selective [`flood_pass`]: only fragments whose root returns
/// `Some(val)` flood; the others stay silent and their vertices spend no
/// messages (and return `None`). Used by the global Borůvka phase to
/// re-label only the fragments whose component id actually changed.
pub fn flood_pass_opt(
    sim: &mut impl Executor,
    views: &[FragView],
    root_val: impl Fn(NodeId) -> Option<Val>,
) -> (Vec<Option<Val>>, RunStats) {
    let children: Vec<Vec<NodeId>> = views.iter().map(FragView::children).collect();
    let (out, stats) = sim.run(|v, _| {
        let start = views[v].parent.is_none().then(|| root_val(v)).flatten();
        let ch = children[v].clone();
        DownProgram {
            is_root: start.is_some(),
            root_val: start.unwrap_or_default(),
            derive: move |_, val| ch.iter().map(|&c| (c, val)).collect::<ChildPayloads>(),
            fired: false,
            received: Vec::new(),
        }
    });
    (
        out.into_iter()
            .map(|vals| vals.into_iter().next())
            .collect(),
        stats,
    )
}

// ---------------------------------------------------------------------
// Re-rooting flood
// ---------------------------------------------------------------------

struct RerootProgram {
    is_new_root: bool,
    tree_neighbors: Vec<NodeId>,
    new_parent: Option<NodeId>,
    done: bool,
}

impl RerootProgram {
    fn spread(&mut self, ctx: &mut Ctx<'_>, skip: Option<NodeId>) {
        for &u in &self.tree_neighbors.clone() {
            if Some(u) != skip {
                ctx.send(u, Message::words(&[TAG_RESET]));
            }
        }
    }
}

impl Program for RerootProgram {
    type Output = Option<NodeId>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_new_root {
            self.done = true;
            self.spread(ctx, None);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        for (from, _) in inbox {
            if !self.done {
                self.done = true;
                self.new_parent = Some(*from);
                self.spread(ctx, Some(*from));
            }
        }
    }

    fn finish(self) -> Option<NodeId> {
        self.new_parent
    }
}

/// Re-roots each fragment tree at its vertex `v` with `is_new_root(v)`.
///
/// Returns updated views (same tree edges, new parent orientation).
///
/// # Panics
/// Panics if some fragment has no designated new root (its vertices
/// would keep `None` parents *and* miss the flood — detected by the
/// returned orientation check in debug builds).
pub fn reroot(
    sim: &mut impl Executor,
    views: &[FragView],
    is_new_root: impl Fn(NodeId) -> bool,
) -> (Vec<FragView>, RunStats) {
    let (parents, stats) = sim.run(|v, _| RerootProgram {
        is_new_root: is_new_root(v),
        tree_neighbors: views[v].tree_neighbors.clone(),
        new_parent: None,
        done: false,
    });
    let new_views = views
        .iter()
        .zip(parents)
        .map(|(view, parent)| FragView {
            parent,
            tree_neighbors: view.tree_neighbors.clone(),
        })
        .collect();
    (new_views, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::Simulator;
    use lightgraph::generators;
    use lightgraph::mst::kruskal;
    use lightgraph::tree::RootedTree;

    /// Builds views for the whole MST as one fragment rooted at `root`.
    fn mst_views(g: &lightgraph::Graph, root: NodeId) -> (RootedTree, Vec<FragView>) {
        let m = kruskal(g);
        let t = RootedTree::from_edge_ids(g, &m.edges, root);
        let views = (0..g.n())
            .map(|v| {
                let mut tn: Vec<NodeId> = t.children(v).to_vec();
                if let Some((p, _, _)) = t.parent(v) {
                    tn.push(p);
                }
                FragView {
                    parent: t.parent(v).map(|(p, _, _)| p),
                    tree_neighbors: tn,
                }
            })
            .collect();
        (t, views)
    }

    #[test]
    fn up_pass_sums_subtrees() {
        let g = generators::erdos_renyi(40, 0.1, 20, 1);
        let (t, views) = mst_views(&g, 0);
        let mut sim = Simulator::new(&g);
        let (vals, stats) = up_pass(&mut sim, &views, |_| [1, 0, 0], |a, b| [a[0] + b[0], 0, 0]);
        // root's aggregate = n
        assert_eq!(vals[0][0], 40);
        // every vertex's aggregate = its subtree size
        let mut size = vec![1u64; g.n()];
        for &v in t.bfs_order().iter().rev() {
            if let Some((p, _, _)) = t.parent(v) {
                size[p] += size[v];
            }
        }
        for v in 0..g.n() {
            assert_eq!(vals[v][0], size[v], "vertex {v}");
        }
        assert!(stats.rounds <= g.n() as u64 + 2);
    }

    #[test]
    fn flood_reaches_all_with_root_value() {
        let g = generators::grid(5, 5, 7, 2);
        let (_, views) = mst_views(&g, 3);
        let mut sim = Simulator::new(&g);
        let (vals, _) = flood_pass(&mut sim, &views, |v| [v as u64 * 10 + 9, 1, 2]);
        for v in 0..g.n() {
            assert_eq!(vals[v], Some([39, 1, 2]), "vertex {v}");
        }
    }

    #[test]
    fn down_pass_assigns_distinct_child_payloads() {
        let g = generators::path(6, 1);
        let (_, views) = mst_views(&g, 0);
        let mut sim = Simulator::new(&g);
        // each vertex passes val+1 down the path
        let views2 = views.clone();
        let (vals, _) = down_pass(
            &mut sim,
            &views,
            |_| [100, 0, 0],
            |v| {
                let ch = views2[v].children();
                move |_, val: Val| ch.iter().map(|&c| (c, [val[0] + 1, 0, 0])).collect()
            },
        );
        for v in 0..6 {
            assert_eq!(vals[v][0][0], 100 + v as u64);
        }
    }

    #[test]
    fn reroot_flips_orientation() {
        let g = generators::erdos_renyi(30, 0.15, 9, 5);
        let (_, views) = mst_views(&g, 0);
        let mut sim = Simulator::new(&g);
        let new_root = 17;
        let (nv, _) = reroot(&mut sim, &views, |v| v == new_root);
        assert_eq!(nv[new_root].parent, None);
        // every other vertex has a parent among its tree neighbors, and
        // following parents reaches the new root without cycles
        for v in 0..g.n() {
            if v == new_root {
                continue;
            }
            let p = nv[v].parent.expect("oriented");
            assert!(nv[v].tree_neighbors.contains(&p));
            let mut cur = v;
            let mut steps = 0;
            while let Some(p) = nv[cur].parent {
                cur = p;
                steps += 1;
                assert!(steps <= g.n(), "cycle after reroot");
            }
            assert_eq!(cur, new_root);
        }
    }

    #[test]
    fn passes_run_in_parallel_fragments() {
        // two disjoint path fragments inside a connected graph
        let g = generators::path(8, 1);
        // fragment A = 0..4 rooted at 0, fragment B = 4..8 rooted at 7
        let mut views = vec![FragView::default(); 8];
        for v in 0..4usize {
            let mut tn = Vec::new();
            if v > 0 {
                tn.push(v - 1);
            }
            if v < 3 {
                tn.push(v + 1);
            }
            views[v] = FragView {
                parent: (v > 0).then(|| v - 1),
                tree_neighbors: tn,
            };
        }
        for v in 4..8usize {
            let mut tn = Vec::new();
            if v > 4 {
                tn.push(v - 1);
            }
            if v < 7 {
                tn.push(v + 1);
            }
            views[v] = FragView {
                parent: (v < 7).then(|| v + 1),
                tree_neighbors: tn,
            };
        }
        let mut sim = Simulator::new(&g);
        let (vals, _) = up_pass(&mut sim, &views, |_| [1, 0, 0], |a, b| [a[0] + b[0], 0, 0]);
        assert_eq!(vals[0][0], 4, "fragment A root sees its 4 vertices");
        assert_eq!(vals[7][0], 4, "fragment B root sees its 4 vertices");
    }
}
