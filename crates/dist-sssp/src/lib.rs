//! Distributed shortest paths and Least-Element lists.
//!
//! The substrates consumed by §4 (SLT), §6 (nets) and §7 (doubling
//! spanners) of *Distributed Construction of Light Networks*:
//!
//! * [`bellman`] — exact and distance/hop-bounded Bellman–Ford, single
//!   and multi source, with per-source path reporting (the \[EN16\]
//!   hopset-exploration substitute),
//! * [`landmark`] — `Õ(√n + D)`-style approximate shortest-path trees
//!   (the \[BKKL17\] substitute),
//! * [`mod@le_lists`] — distributed Cohen Least-Element lists w.r.t. an
//!   auxiliary (1+δ)-approximation (the \[FL16\] substitute).
//!
//! See DESIGN.md §3 for the substitution rationale.

pub mod bellman;
pub mod landmark;
pub mod le_lists;

/// The shared headline-metric kernel behind `SsspResult::max_finite_dist`
/// and `ApproxSpt::max_finite_dist` now lives in the keyed-relaxation
/// subsystem ([`congest::relax::max_finite`]) next to the tables it
/// summarizes; re-exported here for the crate's consumers. See its docs
/// for the all-unreachable and overflowed-entry conventions.
pub use congest::relax::max_finite;

pub use bellman::{
    bellman_ford, bounded_bellman_ford, multi_source_bounded, MultiSourceResult, SsspResult,
};
pub use landmark::{approx_spt, ApproxSpt, SptConfig};
pub use le_lists::{le_lists, LeLists};
