//! Distributed Bellman–Ford: single-source and multi-source, with
//! optional distance and hop bounds and per-source path reporting.
//!
//! These are the workhorses behind the approximate SPTs of §4, the net
//! deactivation of §6, and the ∆-bounded multi-source explorations of
//! §7. Congestion from overlapping sources is charged automatically by
//! the simulator's per-edge queues.
//!
//! Both entry points are thin wrappers over the shared
//! **keyed-relaxation subsystem** ([`congest::relax`]): sources become
//! dense key *indices*, per-node state is a flat slot table instead of
//! a hash map, announcements batch per round, and the lawful clause-7
//! combiner (componentwise minimum over `(distance, hops)` per source)
//! collapses co-queued superseded updates — the multi-source table
//! churn that made SLT sweeps message-bound (see ROADMAP). For
//! unbounded runs the fixed point (and hence the outputs) equals the
//! classic Bellman–Ford one; for hop-bounded runs the merged hop
//! counter is never larger than any absorbed one, so the exploration
//! reaches a (deterministic, engine-identical) superset of what an
//! uncombined run reaches, with distances that are still genuine path
//! lengths.
//!
//! The subsystem also reports **truncation**: whether any accepted
//! improvement arrived with an exhausted hop budget. A run that never
//! truncated is *provably* identical to an unbounded Bellman–Ford —
//! the certificate behind [`crate::landmark`]'s adaptive cutoff.

use congest::obs;
use congest::relax::{max_finite, RelaxProgram, RelaxTable};
use congest::{Executor, RunStats};
use lightgraph::{NodeId, Weight, INF};

const TAG_RELAX: u64 = 20;
const TAG_MRELAX: u64 = 21;

/// Result of a single-source run.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// Distance estimates (exact within the bounds; [`INF`] beyond).
    pub dist: Vec<Weight>,
    /// Predecessor towards the source along a shortest path.
    pub parent: Vec<Option<NodeId>>,
    /// Whether the hop bound visibly truncated the exploration at any
    /// node. `false` certifies the distances equal the unbounded fixed
    /// point (see [`congest::relax::RelaxTable::truncated`]).
    pub truncated: bool,
    /// Rounds/messages of this computation.
    pub stats: RunStats,
}

impl SsspResult {
    /// Largest finite distance estimate — the weighted eccentricity of
    /// the source when the run was unbounded (0 if nothing was
    /// reached). Headline metric for the `scenario` runner's `bellman`
    /// sweeps. See [`congest::relax::max_finite`] for the edge-case
    /// conventions (shared with [`crate::ApproxSpt::max_finite_dist`]).
    pub fn max_finite_dist(&self) -> Weight {
        max_finite(&self.dist)
    }
}

/// Exact single-source shortest paths by distributed Bellman–Ford.
///
/// Runs until quiescence: the number of rounds is the weighted
/// shortest-path hop depth, which the paper's substitutes avoid — see
/// [`crate::landmark`] for the `Õ(√n + D)`-round version.
pub fn bellman_ford(sim: &mut impl Executor, src: NodeId) -> SsspResult {
    bounded_bellman_ford(sim, src, INF, u64::MAX)
}

/// Single-source Bellman–Ford restricted to distance ≤ `bound` and at
/// most `hop_bound` relaxation rounds.
///
/// The hop bound is a *reach floor*, not a ceiling: the shared
/// combiner (module docs) merges co-queued updates to the
/// componentwise `(min distance, min hops)`, so a merged update may
/// carry a smaller hop counter than the path behind its distance and
/// travel further than an uncombined run would — every returned
/// distance is still a genuine path length ≤ `bound`, and everything
/// an uncombined run reaches is reached. (A single-source program
/// stages at most one update per edge per round, so with the default
/// cap the combiner never actually fires here; the caveat is live in
/// [`multi_source_bounded`].)
pub fn bounded_bellman_ford(
    sim: &mut impl Executor,
    src: NodeId,
    bound: Weight,
    hop_bound: u64,
) -> SsspResult {
    let (tables, stats) = obs::span(sim, "relax", |sim| {
        sim.run(|v, _| {
            RelaxProgram::new(
                TAG_RELAX,
                1,
                bound,
                hop_bound,
                if v == src { vec![0] } else { Vec::new() },
            )
        })
    });
    let truncated = tables.iter().any(|t| t.truncated);
    let (dist, parent) = tables
        .iter()
        .map(|t| (t.dist(0).unwrap_or(INF), t.parent(0)))
        .unzip();
    SsspResult {
        dist,
        parent,
        truncated,
        stats,
    }
}

/// Result of a multi-source run: dense per-vertex tables keyed by
/// *source index* (the position of the source in the sorted, deduped
/// [`MultiSourceResult::sources`]), straight from the keyed-relaxation
/// subsystem — no per-node hash maps.
#[derive(Debug, Clone)]
pub struct MultiSourceResult {
    /// The sources, sorted ascending and deduplicated: the key space of
    /// every table.
    pub sources: Vec<NodeId>,
    /// `tables[v]` — the dense relaxation table of vertex `v` (empty
    /// when the bounded exploration never reached `v`).
    pub tables: Vec<RelaxTable>,
    /// Whether the hop bound visibly truncated any exploration (see
    /// [`SsspResult::truncated`]).
    pub truncated: bool,
    /// Rounds/messages of this computation.
    pub stats: RunStats,
}

impl MultiSourceResult {
    /// The key index of `src`, if it was a source.
    pub fn source_index(&self, src: NodeId) -> Option<usize> {
        self.sources.binary_search(&src).ok()
    }

    /// Distance from `src` to `v`, if the exploration reached it.
    pub fn dist(&self, src: NodeId, v: NodeId) -> Option<Weight> {
        self.tables[v].dist(self.source_index(src)?)
    }

    /// Nearest source to `v` with its distance (ties broken towards the
    /// smaller source id, matching the ascending key order).
    pub fn nearest(&self, v: NodeId) -> Option<(NodeId, Weight)> {
        self.tables[v].nearest().map(|(k, d)| (self.sources[k], d))
    }

    /// Iterates the sources that reached `v` in ascending source order,
    /// as `(source, distance, predecessor)`.
    pub fn reached(
        &self,
        v: NodeId,
    ) -> impl Iterator<Item = (NodeId, Weight, Option<NodeId>)> + '_ {
        self.tables[v]
            .iter_reached()
            .map(|(k, d, p)| (self.sources[k], d, p))
    }

    /// Walks predecessors from `v` back to `src`, returning the vertex
    /// path `[src, …, v]`, or `None` if `src` never reached `v`.
    pub fn path_from(&self, src: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        let key = self.source_index(src)?;
        self.tables[v].get(key)?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.tables[cur].parent(key) {
            path.push(p);
            cur = p;
        }
        (cur == src).then(|| {
            path.reverse();
            path
        })
    }
}

/// Multi-source distance/hop-bounded Bellman–Ford with per-source
/// predecessor (path) reporting — the \[EN16\] hopset-exploration
/// substitute used by §7 (see DESIGN.md), as one [`RelaxProgram`] run
/// over the sorted source indices.
///
/// All sources explore in parallel; the per-edge bandwidth cap charges
/// the congestion of overlapping explorations honestly.
///
/// Like [`bounded_bellman_ford`], `hop_bound` is a *reach floor*, not
/// a ceiling: the per-source combiner merges co-queued updates
/// componentwise, so the returned tables are a (deterministic,
/// engine-identical) superset of an uncombined run's, with
/// pointwise-≤ distances that are all genuine path lengths ≤ `bound`.
/// With `hop_bound == u64::MAX` the tables are bit-identical to the
/// uncombined fixed point. See the clause-7 audit in DESIGN.md for why
/// the landmark SPT's exactness guarantees survive this.
pub fn multi_source_bounded(
    sim: &mut impl Executor,
    sources: &[NodeId],
    bound: Weight,
    hop_bound: u64,
) -> MultiSourceResult {
    let mut sorted: Vec<NodeId> = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let keys = sorted.len();
    let sorted_ref = &sorted;
    let (tables, stats) = obs::span(sim, "relax", |sim| {
        sim.run(|v, _| {
            let seeds = sorted_ref
                .binary_search(&v)
                .ok()
                .map(|k| vec![k as u32])
                .unwrap_or_default();
            RelaxProgram::new(TAG_MRELAX, keys, bound, hop_bound, seeds)
        })
    });
    let truncated = tables.iter().any(|t| t.truncated);
    MultiSourceResult {
        sources: sorted,
        tables,
        truncated,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::Simulator;
    use lightgraph::{dijkstra, generators};

    #[test]
    fn exact_bf_matches_dijkstra() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(40, 0.15, 30, seed);
            let mut sim = Simulator::new(&g);
            let r = bellman_ford(&mut sim, 0);
            let oracle = dijkstra::shortest_paths(&g, 0);
            assert_eq!(r.dist, oracle.dist);
            assert!(!r.truncated, "unbounded runs never truncate");
        }
    }

    #[test]
    fn parents_form_shortest_path_tree() {
        let g = generators::grid(6, 6, 9, 1);
        let mut sim = Simulator::new(&g);
        let r = bellman_ford(&mut sim, 3);
        for v in 0..g.n() {
            if v == 3 {
                assert!(r.parent[v].is_none());
                continue;
            }
            let p = r.parent[v].expect("connected");
            let w = g
                .neighbors(v)
                .iter()
                .find(|&&(u, _, _)| u == p)
                .map(|&(_, w, _)| w)
                .unwrap();
            assert_eq!(r.dist[v], r.dist[p] + w, "tight tree edge at {v}");
        }
    }

    #[test]
    fn distance_bound_truncates() {
        let g = generators::path(6, 10);
        let mut sim = Simulator::new(&g);
        let r = bounded_bellman_ford(&mut sim, 0, 25, u64::MAX);
        assert_eq!(r.dist[0], 0);
        assert_eq!(r.dist[2], 20);
        assert_eq!(r.dist[3], INF);
    }

    #[test]
    fn hop_bound_truncates_and_is_flagged() {
        let g = generators::path(8, 1);
        let mut sim = Simulator::new(&g);
        let r = bounded_bellman_ford(&mut sim, 0, INF, 3);
        assert_eq!(r.dist[3], 3);
        assert_eq!(r.dist[4], INF, "4 hops exceeds the bound");
        assert!(r.truncated, "the bound visibly bit");
        let mut sim = Simulator::new(&g);
        let r = bounded_bellman_ford(&mut sim, 0, INF, 20);
        assert_eq!(r.dist[7], 7);
        assert!(!r.truncated, "slack bound behaves as unbounded");
    }

    #[test]
    fn multi_source_matches_per_source_dijkstra() {
        let g = generators::erdos_renyi(35, 0.2, 20, 4);
        let sources = [0, 7, 19];
        let mut sim = Simulator::new(&g);
        let r = multi_source_bounded(&mut sim, &sources, INF, u64::MAX);
        for &s in &sources {
            let oracle = dijkstra::shortest_paths(&g, s);
            for v in 0..g.n() {
                assert_eq!(r.dist(s, v), Some(oracle.dist[v]), "src {s}, v {v}");
            }
        }
    }

    #[test]
    fn multi_source_bound_limits_tables() {
        let g = generators::path(10, 5);
        let mut sim = Simulator::new(&g);
        let r = multi_source_bounded(&mut sim, &[0, 9], 12, u64::MAX);
        assert_eq!(r.dist(0, 2), Some(10));
        assert_eq!(r.dist(0, 3), None, "15 > bound");
        assert_eq!(
            r.nearest(4),
            None,
            "vertex 4 is beyond the bound from both sources"
        );
        assert_eq!(r.nearest(1), Some((0, 5)));
        assert_eq!(
            r.reached(1).collect::<Vec<_>>(),
            vec![(0, 5, Some(0))],
            "dense tables iterate in ascending source order"
        );
    }

    #[test]
    fn multi_source_paths_are_real_and_shortest() {
        let g = generators::random_geometric(30, 0.4, 2);
        let sources = [1, 5];
        let mut sim = Simulator::new(&g);
        let r = multi_source_bounded(&mut sim, &sources, INF, u64::MAX);
        let oracle = dijkstra::shortest_paths(&g, 1);
        for v in 0..g.n() {
            let path = r.path_from(1, v).expect("connected");
            assert_eq!(*path.first().unwrap(), 1);
            assert_eq!(*path.last().unwrap(), v);
            // consecutive path vertices are adjacent; total = dist
            let mut total = 0;
            for pair in path.windows(2) {
                let w = g
                    .neighbors(pair[0])
                    .iter()
                    .find(|&&(u, _, _)| u == pair[1])
                    .map(|&(_, w, _)| w)
                    .expect("path uses real edges");
                total += w;
            }
            assert_eq!(total, oracle.dist[v]);
        }
    }

    #[test]
    fn duplicate_and_unsorted_sources_are_canonicalized() {
        let g = generators::path(6, 2);
        let mut sim = Simulator::new(&g);
        let r = multi_source_bounded(&mut sim, &[5, 0, 5], INF, u64::MAX);
        assert_eq!(r.sources, vec![0, 5]);
        assert_eq!(r.source_index(5), Some(1));
        assert_eq!(r.dist(5, 3), Some(4));
    }
}
