//! Distributed Bellman–Ford: single-source and multi-source, with
//! optional distance and hop bounds and per-source path reporting.
//!
//! These are the workhorses behind the approximate SPTs of §4, the net
//! deactivation of §6, and the ∆-bounded multi-source explorations of
//! §7. Congestion from overlapping sources is charged automatically by
//! the simulator's per-edge queues.
//!
//! Both programs declare a **per-edge combiner** (contract clause 7):
//! relaxation messages for the same source supersede each other, so a
//! staged update merges into the co-queued update for that source by
//! componentwise minimum over `(distance, hops)` — the survivor
//! dominates everything it absorbed. For unbounded runs the fixed
//! point (and hence the outputs) is untouched; for hop-bounded runs
//! the merged hop counter is never larger than any absorbed one, so
//! the exploration reaches a (deterministic, engine-identical)
//! superset of what an uncombined run reaches, with distances that are
//! still genuine path lengths. The multi-source table churn this
//! removes is what made SLT sweeps message-bound (see ROADMAP).

use congest::{pack2, Ctx, Executor, Message, Program, RunStats, Word};
use lightgraph::{NodeId, Weight, INF};
use std::collections::HashMap;

const TAG_RELAX: u64 = 20;

/// Result of a single-source run.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// Distance estimates (exact within the bounds; [`INF`] beyond).
    pub dist: Vec<Weight>,
    /// Predecessor towards the source along a shortest path.
    pub parent: Vec<Option<NodeId>>,
    /// Rounds/messages of this computation.
    pub stats: RunStats,
}

impl SsspResult {
    /// Largest finite distance estimate — the weighted eccentricity of
    /// the source when the run was unbounded (0 if nothing was
    /// reached). Headline metric for the `scenario` runner's `bellman`
    /// sweeps.
    pub fn max_finite_dist(&self) -> Weight {
        crate::max_finite(&self.dist)
    }
}

struct BellmanFord {
    is_source: bool,
    dist: Weight,
    hops: u64,
    parent: Option<NodeId>,
    bound: Weight,
    hop_bound: u64,
}

impl Program for BellmanFord {
    type Output = (Weight, Option<NodeId>);

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_source {
            self.dist = 0;
            self.hops = 0;
            if self.hop_bound > 0 {
                ctx.send_all(Message::words(&[TAG_RELAX, 0, 0]));
            }
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        let mut improved = false;
        for (from, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_RELAX);
            let w = ctx
                .neighbors()
                .iter()
                .find(|&&(u, _, _)| u == *from)
                .map(|&(_, w, _)| w)
                .expect("sender is a neighbor");
            let nd = msg.word(1).saturating_add(w);
            // Hop counts travel in the message: congestion may delay a
            // relaxation past round h without consuming hop budget.
            let nh = msg.word(2) + 1;
            if nd < self.dist && nd <= self.bound {
                self.dist = nd;
                self.hops = nh;
                self.parent = Some(*from);
                improved = true;
            }
        }
        if improved && self.hops < self.hop_bound {
            ctx.send_all(Message::words(&[TAG_RELAX, self.dist, self.hops]));
        }
    }

    fn combine_key(&self, msg: &Message) -> Option<Word> {
        debug_assert_eq!(msg.word(0), TAG_RELAX);
        Some(TAG_RELAX)
    }

    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        Message::words(&[
            TAG_RELAX,
            queued.word(1).min(incoming.word(1)),
            queued.word(2).min(incoming.word(2)),
        ])
    }

    fn finish(self) -> Self::Output {
        (self.dist, self.parent)
    }
}

/// Exact single-source shortest paths by distributed Bellman–Ford.
///
/// Runs until quiescence: the number of rounds is the weighted
/// shortest-path hop depth, which the paper's substitutes avoid — see
/// [`crate::landmark`] for the `Õ(√n + D)`-round version.
pub fn bellman_ford(sim: &mut impl Executor, src: NodeId) -> SsspResult {
    bounded_bellman_ford(sim, src, INF, u64::MAX)
}

/// Single-source Bellman–Ford restricted to distance ≤ `bound` and at
/// most `hop_bound` relaxation rounds.
///
/// The hop bound is a *reach floor*, not a ceiling: the per-edge
/// combiner (module docs) merges co-queued updates to the
/// componentwise `(min distance, min hops)`, so a merged update may
/// carry a smaller hop counter than the path behind its distance and
/// travel further than an uncombined run would — every returned
/// distance is still a genuine path length ≤ `bound`, and everything
/// an uncombined run reaches is reached. (A single-source program
/// stages at most one update per edge per round, so with the default
/// cap the combiner never actually fires here; the caveat is live in
/// [`multi_source_bounded`].)
pub fn bounded_bellman_ford(
    sim: &mut impl Executor,
    src: NodeId,
    bound: Weight,
    hop_bound: u64,
) -> SsspResult {
    let (out, stats) = sim.run(|v, _| BellmanFord {
        is_source: v == src,
        dist: INF,
        hops: 0,
        parent: None,
        bound,
        hop_bound,
    });
    let (dist, parent) = out.into_iter().unzip();
    SsspResult {
        dist,
        parent,
        stats,
    }
}

/// Result of a multi-source run: per-vertex tables keyed by source.
#[derive(Debug, Clone)]
pub struct MultiSourceResult {
    /// `tables[v][src] = (distance, predecessor towards src)`.
    pub tables: Vec<HashMap<NodeId, (Weight, Option<NodeId>)>>,
    /// Rounds/messages of this computation.
    pub stats: RunStats,
}

impl MultiSourceResult {
    /// Distance from `src` to `v`, if the exploration reached it.
    pub fn dist(&self, src: NodeId, v: NodeId) -> Option<Weight> {
        self.tables[v].get(&src).map(|&(d, _)| d)
    }

    /// Nearest source to `v` with its distance.
    pub fn nearest(&self, v: NodeId) -> Option<(NodeId, Weight)> {
        self.tables[v]
            .iter()
            .map(|(&s, &(d, _))| (s, d))
            .min_by_key(|&(s, d)| (d, s))
    }

    /// Walks predecessors from `v` back to `src`, returning the vertex
    /// path `[src, …, v]`, or `None` if `src` never reached `v`.
    pub fn path_from(&self, src: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.tables[v].get(&src)?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(&(_, Some(p))) = self.tables[cur].get(&src) {
            path.push(p);
            cur = p;
        }
        (cur == src).then(|| {
            path.reverse();
            path
        })
    }
}

const TAG_MRELAX: u64 = 21;

struct MultiBellmanFord {
    source_here: bool,
    bound: Weight,
    hop_bound: u64,
    table: HashMap<NodeId, (Weight, Option<NodeId>)>,
    hops: HashMap<NodeId, u64>,
}

impl Program for MultiBellmanFord {
    type Output = HashMap<NodeId, (Weight, Option<NodeId>)>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.source_here {
            self.table.insert(ctx.node(), (0, None));
            self.hops.insert(ctx.node(), 0);
            if self.hop_bound > 0 {
                ctx.send_all(Message::words(&[TAG_MRELAX, ctx.node() as u64, 0, 0]));
            }
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        let mut updates: Vec<(NodeId, Weight, u64)> = Vec::new();
        for (from, msg) in inbox {
            debug_assert_eq!(msg.word(0), TAG_MRELAX);
            let src = msg.word(1) as NodeId;
            let w = ctx
                .neighbors()
                .iter()
                .find(|&&(u, _, _)| u == *from)
                .map(|&(_, w, _)| w)
                .expect("sender is a neighbor");
            let nd = msg.word(2).saturating_add(w);
            let nh = msg.word(3) + 1;
            if nd > self.bound {
                continue;
            }
            let better = self.table.get(&src).map(|&(d, _)| nd < d).unwrap_or(true);
            if better {
                self.table.insert(src, (nd, Some(*from)));
                self.hops.insert(src, nh);
                updates.push((src, nd, nh));
            }
        }
        for (src, d, h) in updates {
            if h < self.hop_bound {
                ctx.send_all(Message::words(&[TAG_MRELAX, src as u64, d, h]));
            }
        }
    }

    /// One combining key per source: updates for distinct sources never
    /// merge, successive updates for the same source collapse to the
    /// dominating `(min distance, min hops)` while they share a queue.
    fn combine_key(&self, msg: &Message) -> Option<Word> {
        debug_assert_eq!(msg.word(0), TAG_MRELAX);
        Some(pack2(TAG_MRELAX, msg.word(1)))
    }

    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        debug_assert_eq!(queued.word(1), incoming.word(1), "same source");
        Message::words(&[
            TAG_MRELAX,
            queued.word(1),
            queued.word(2).min(incoming.word(2)),
            queued.word(3).min(incoming.word(3)),
        ])
    }

    fn finish(self) -> Self::Output {
        self.table
    }
}

/// Multi-source distance/hop-bounded Bellman–Ford with per-source
/// predecessor (path) reporting — the \[EN16\] hopset-exploration
/// substitute used by §7 (see DESIGN.md).
///
/// All sources explore in parallel; the per-edge bandwidth cap charges
/// the congestion of overlapping explorations honestly.
///
/// Like [`bounded_bellman_ford`], `hop_bound` is a *reach floor*, not
/// a ceiling: the per-source combiner merges co-queued updates
/// componentwise, so the returned tables are a (deterministic,
/// engine-identical) superset of an uncombined run's, with
/// pointwise-≤ distances that are all genuine path lengths ≤ `bound`.
/// With `hop_bound == u64::MAX` the tables are bit-identical to the
/// uncombined fixed point. See the clause-7 audit in DESIGN.md for why
/// the landmark SPT's exactness guarantees survive this.
pub fn multi_source_bounded(
    sim: &mut impl Executor,
    sources: &[NodeId],
    bound: Weight,
    hop_bound: u64,
) -> MultiSourceResult {
    let src_set: std::collections::HashSet<NodeId> = sources.iter().copied().collect();
    let (tables, stats) = sim.run(|v, _| MultiBellmanFord {
        source_here: src_set.contains(&v),
        bound,
        hop_bound,
        table: HashMap::new(),
        hops: HashMap::new(),
    });
    MultiSourceResult { tables, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::Simulator;
    use lightgraph::{dijkstra, generators};

    #[test]
    fn exact_bf_matches_dijkstra() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(40, 0.15, 30, seed);
            let mut sim = Simulator::new(&g);
            let r = bellman_ford(&mut sim, 0);
            let oracle = dijkstra::shortest_paths(&g, 0);
            assert_eq!(r.dist, oracle.dist);
        }
    }

    #[test]
    fn parents_form_shortest_path_tree() {
        let g = generators::grid(6, 6, 9, 1);
        let mut sim = Simulator::new(&g);
        let r = bellman_ford(&mut sim, 3);
        for v in 0..g.n() {
            if v == 3 {
                assert!(r.parent[v].is_none());
                continue;
            }
            let p = r.parent[v].expect("connected");
            let w = g
                .neighbors(v)
                .iter()
                .find(|&&(u, _, _)| u == p)
                .map(|&(_, w, _)| w)
                .unwrap();
            assert_eq!(r.dist[v], r.dist[p] + w, "tight tree edge at {v}");
        }
    }

    #[test]
    fn distance_bound_truncates() {
        let g = generators::path(6, 10);
        let mut sim = Simulator::new(&g);
        let r = bounded_bellman_ford(&mut sim, 0, 25, u64::MAX);
        assert_eq!(r.dist[0], 0);
        assert_eq!(r.dist[2], 20);
        assert_eq!(r.dist[3], INF);
    }

    #[test]
    fn hop_bound_truncates() {
        let g = generators::path(8, 1);
        let mut sim = Simulator::new(&g);
        let r = bounded_bellman_ford(&mut sim, 0, INF, 3);
        assert_eq!(r.dist[3], 3);
        assert_eq!(r.dist[4], INF, "4 hops exceeds the bound");
    }

    #[test]
    fn multi_source_matches_per_source_dijkstra() {
        let g = generators::erdos_renyi(35, 0.2, 20, 4);
        let sources = [0, 7, 19];
        let mut sim = Simulator::new(&g);
        let r = multi_source_bounded(&mut sim, &sources, INF, u64::MAX);
        for &s in &sources {
            let oracle = dijkstra::shortest_paths(&g, s);
            for v in 0..g.n() {
                assert_eq!(r.dist(s, v), Some(oracle.dist[v]), "src {s}, v {v}");
            }
        }
    }

    #[test]
    fn multi_source_bound_limits_tables() {
        let g = generators::path(10, 5);
        let mut sim = Simulator::new(&g);
        let r = multi_source_bounded(&mut sim, &[0, 9], 12, u64::MAX);
        assert_eq!(r.dist(0, 2), Some(10));
        assert_eq!(r.dist(0, 3), None, "15 > bound");
        assert_eq!(
            r.nearest(4),
            None,
            "vertex 4 is beyond the bound from both sources"
        );
        assert_eq!(r.nearest(1), Some((0, 5)));
    }

    #[test]
    fn multi_source_paths_are_real_and_shortest() {
        let g = generators::random_geometric(30, 0.4, 2);
        let sources = [1, 5];
        let mut sim = Simulator::new(&g);
        let r = multi_source_bounded(&mut sim, &sources, INF, u64::MAX);
        let oracle = dijkstra::shortest_paths(&g, 1);
        for v in 0..g.n() {
            let path = r.path_from(1, v).expect("connected");
            assert_eq!(*path.first().unwrap(), 1);
            assert_eq!(*path.last().unwrap(), v);
            // consecutive path vertices are adjacent; total = dist
            let mut total = 0;
            for pair in path.windows(2) {
                let w = g
                    .neighbors(pair[0])
                    .iter()
                    .find(|&&(u, _, _)| u == pair[1])
                    .map(|&(_, w, _)| w)
                    .expect("path uses real edges");
                total += w;
            }
            assert_eq!(total, oracle.dist[v]);
        }
    }
}
