//! Landmark-based approximate shortest-path trees — the \[BKKL17\]
//! substitute (see DESIGN.md §3).
//!
//! The paper uses the approximate SPT of Becker et al. \[BKKL17\], which
//! returns a tree `T_rt` with `d_G(rt,v) ≤ d_{T_rt}(rt,v) ≤ (1+ε)·
//! d_G(rt,v)` in `Õ(√n + D)/poly(ε)` rounds. We reproduce the same
//! interface with the classic landmark (hopset-flavoured) scheme:
//!
//! 1. sample `Θ(√n · log n)` landmarks from a broadcast seed,
//! 2. run an `O(√n)`-hop bounded multi-source Bellman–Ford from
//!    `{rt} ∪ landmarks` (per-edge congestion charged by the simulator),
//! 3. gather the landmark-pairwise bounded distances to `rt` — keyed by
//!    *unordered* landmark pair through the combiner-aware
//!    [`collective::gather_merged`], so the two endpoints' reports of
//!    one pair merge in the tree and in flight — which solves the
//!    landmark graph *locally* and broadcasts each landmark's
//!    distance-from-root and predecessor landmark,
//! 4. every vertex combines `min(direct, landmark + bounded tail)` and
//!    inherits the corresponding Bellman–Ford parent, giving a genuine
//!    tree in `G` with `d_T(rt,v) ≤ est(v)`.
//!
//! Because every `≥ √n`-hop shortest path contains a landmark in each
//! `√n`-hop window w.h.p., the estimates are *exact* w.h.p.; the
//! optional `epsilon` knob quantizes the reported estimates upward to
//! emulate the (1+ε) slack of \[BKKL17\] and exercise downstream
//! tolerance (the tree itself stays consistent).
//!
//! # The adaptive landmark cutoff
//!
//! The landmark machinery exists for the regime where shortest paths
//! have more hops than an exploration may travel. On shallow instances
//! (every geometric family we sweep) the default `2⌈√n⌉` hop budget
//! *exceeds* the hop depth of every shortest path, and the whole
//! `Θ(√n log n)`-source exploration is wasted work — it was the
//! dominant message cost of SLT sweeps (see ROADMAP).
//!
//! The keyed-relaxation subsystem reports exactly the certificate
//! needed to detect this: if the root's own bounded exploration never
//! accepted an improvement with an exhausted hop budget
//! ([`congest::relax::RelaxTable::truncated`]), the bounded run is —
//! deterministically, not w.h.p. — identical to unbounded Bellman–Ford,
//! so its distances are exact and its parents form a genuine SPT.
//! [`approx_spt`] therefore first runs a root-only probe, convergecasts
//! the truncation flag (`O(D)` rounds, one item per vertex) and
//! broadcasts the verdict; only a *truncated* probe pays for the
//! landmark scheme. An explicit [`SptConfig::landmarks`] skips the
//! probe and forces the full scheme — the deterministic ablation knob
//! exposed through `engine::scenario`.

use crate::bellman::multi_source_bounded;
use congest::collective;
use congest::obs;
use congest::tree::BfsTree;
use congest::{pack2, unpack2, Executor, RunStats};
use lightgraph::{NodeId, Weight, INF};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Configuration for [`approx_spt`].
#[derive(Debug, Clone)]
pub struct SptConfig {
    /// Seed for landmark sampling (broadcast once, 1 item).
    pub seed: u64,
    /// Upward quantization of the reported estimates: estimates are
    /// multiplied by `(1 + epsilon)` and rounded up. `0.0` reports the
    /// raw (w.h.p. exact) values.
    pub epsilon: f64,
    /// Number of landmarks. `None` (the default) is **adaptive**: a
    /// root-only probe first checks whether the hop budget truncates
    /// anything at all, and the landmark scheme runs only if it does —
    /// with `⌈√n · ln n / 2⌉` landmarks. `Some(k)` forces the full
    /// scheme with exactly `k` landmarks and no probe (the ablation
    /// knob; `Some(0)` degenerates to a bounded exploration from the
    /// root alone).
    pub landmarks: Option<usize>,
    /// Hop bound of the bounded explorations; default `2⌈√n⌉`.
    pub hop_bound: Option<u64>,
}

impl SptConfig {
    /// Default configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        SptConfig {
            seed,
            epsilon: 0.0,
            landmarks: None,
            hop_bound: None,
        }
    }
}

/// An approximate shortest-path tree rooted at `rt`.
#[derive(Debug, Clone)]
pub struct ApproxSpt {
    /// The root.
    pub root: NodeId,
    /// Distance estimates: `d_G(rt,v) ≤ dist[v]`, and w.h.p.
    /// `dist[v] ≤ (1+ε)·d_G(rt,v)` (exact — deterministically — when
    /// the adaptive probe certified the hop budget slack; see the
    /// module docs).
    pub dist: Vec<Weight>,
    /// Parent towards the root over real graph edges; the tree path
    /// from `v` has weight at most `dist[v]` (before quantization).
    pub parent: Vec<Option<NodeId>>,
    /// Rounds/messages of the construction.
    pub stats: RunStats,
}

impl ApproxSpt {
    /// The tree path `[rt, …, v]`.
    pub fn path_from_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Largest finite distance estimate — the (approximate) weighted
    /// eccentricity of the root. Headline metric for the `scenario`
    /// runner's `landmark` sweeps. See [`congest::relax::max_finite`]
    /// for the edge-case conventions (shared with
    /// [`crate::SsspResult::max_finite_dist`]).
    pub fn max_finite_dist(&self) -> Weight {
        crate::max_finite(&self.dist)
    }

    /// Edge ids of the tree (looked up in `g`), for building subgraphs.
    pub fn tree_edges(&self, g: &lightgraph::Graph) -> Vec<lightgraph::EdgeId> {
        (0..self.dist.len())
            .filter_map(|v| {
                let p = self.parent[v]?;
                g.neighbors(v)
                    .iter()
                    .find(|&&(u, _, _)| u == p)
                    .map(|&(_, _, e)| e)
            })
            .collect()
    }
}

fn quantize(d: Weight, epsilon: f64) -> Weight {
    if epsilon <= 0.0 || d == 0 || d >= INF {
        d
    } else {
        ((d as f64) * (1.0 + epsilon)).ceil() as Weight
    }
}

/// Builds an approximate SPT rooted at `rt` (see module docs).
///
/// Charged `O(hop_bound + #landmark-pairs + D)` rounds on the
/// simulator; with the default parameters this is `Õ(√n + D)` on the
/// instance families we evaluate. When the adaptive probe certifies
/// that the hop budget never truncates (module docs), the whole
/// landmark phase — the dominant message cost — is skipped and the
/// result is an exact SPT.
pub fn approx_spt(
    sim: &mut impl Executor,
    tau: &BfsTree,
    rt: NodeId,
    cfg: &SptConfig,
) -> ApproxSpt {
    let start = sim.total();
    let n = sim.graph().n();
    let sqrt_n = (n as f64).sqrt().ceil() as usize;
    let hop_bound = cfg.hop_bound.unwrap_or(2 * sqrt_n as u64).max(2);

    // (1) landmark-sampling seed broadcast (1 item, O(D) rounds).
    let (seed_recv, _) = obs::span(sim, "seed", |sim| {
        collective::broadcast(sim, tau, vec![(0, [cfg.seed, 0])])
    });
    debug_assert!(seed_recv.iter().all(|r| r.len() == 1));

    let mut dist = vec![INF; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut need_landmarks = true;

    if cfg.landmarks.is_none() {
        // (2a) adaptive probe: root-only bounded exploration, then a
        // charged census of the truncation certificate (convergecast
        // up, verdict broadcast down — O(D) rounds, one item each way
        // per vertex).
        let (probe, truncated) = obs::span(sim, "probe", |sim| {
            let probe = multi_source_bounded(sim, &[rt], INF, hop_bound);
            let flags: Vec<u64> = probe.tables.iter().map(|t| t.truncated as u64).collect();
            let flags_ref = &flags;
            let (census, _) = collective::converge_max(sim, tau, |v| vec![(0, [flags_ref[v], 0])]);
            let truncated = census[&0][0] != 0;
            let (verdict, _) = collective::broadcast(sim, tau, vec![(0, [truncated as u64, 0])]);
            debug_assert!(verdict.iter().all(|r| r.len() == 1));
            (probe, truncated)
        });
        if !truncated {
            // Certificate holds: the bounded run equals unbounded
            // Bellman–Ford, so the probe is an exact SPT already.
            for (v, table) in probe.tables.iter().enumerate() {
                if let Some(slot) = table.get(0) {
                    dist[v] = slot.dist;
                    parent[v] = slot.parent();
                }
            }
            need_landmarks = false;
        }
    }

    if need_landmarks {
        let k = cfg
            .landmarks
            .unwrap_or_else(|| ((sqrt_n as f64) * (n.max(2) as f64).ln() / 2.0).ceil() as usize)
            .min(n);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut pool: Vec<NodeId> = (0..n).filter(|&v| v != rt).collect();
        pool.shuffle(&mut rng);
        let mut sources: Vec<NodeId> = pool.into_iter().take(k).collect();
        sources.push(rt);
        sources.sort_unstable();

        // (2b) bounded multi-source exploration.
        let ms = multi_source_bounded(sim, &sources, INF, hop_bound);

        // (3) landmark graph to the root: gather the pairwise bounded
        // distances keyed by *unordered* source-index pair, min-merging
        // the two endpoints' reports in-tree and in-flight (the
        // combiner-aware gather), solve locally at rt, broadcast
        // (s, d*(rt,s), pred(s)).
        let idx: HashMap<NodeId, usize> = ms
            .sources
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let idx_ref = &idx;
        let ms_ref = &ms;
        let (pairs, _) = obs::span(sim, "gather", |sim| {
            collective::gather_merged(sim, tau, |v| {
                if let Some(&vi) = idx_ref.get(&v) {
                    ms_ref.tables[v]
                        .iter_reached()
                        .filter(|&(si, _, _)| si != vi)
                        .map(|(si, d, _)| {
                            let (a, b) = if si < vi { (si, vi) } else { (vi, si) };
                            (pack2(a as u64, b as u64), [d, 0])
                        })
                        .collect()
                } else {
                    Vec::new()
                }
            })
        });
        // local Dijkstra over the landmark graph at rt (free)
        let s_count = ms.sources.len();
        let mut ladj: Vec<Vec<(usize, Weight)>> = vec![Vec::new(); s_count];
        for (&key, &val) in &pairs {
            let (a, b) = unpack2(key);
            debug_assert!(a < b, "unordered pair keys are canonical");
            ladj[a as usize].push((b as usize, val[0]));
            ladj[b as usize].push((a as usize, val[0]));
        }
        let rt_idx = idx[&rt];
        let mut ldist = vec![INF; s_count];
        let mut lpred: Vec<Option<usize>> = vec![None; s_count];
        let mut heap = std::collections::BinaryHeap::new();
        ldist[rt_idx] = 0;
        heap.push(std::cmp::Reverse((0, rt_idx)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > ldist[u] {
                continue;
            }
            for &(v, w) in &ladj[u] {
                let nd = d.saturating_add(w);
                if nd < ldist[v] {
                    ldist[v] = nd;
                    lpred[v] = Some(u);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        let bcast: Vec<collective::Item> = (0..s_count)
            .filter(|&i| ldist[i] < INF)
            .map(|i| {
                (
                    ms.sources[i] as u64,
                    [
                        ldist[i],
                        lpred[i].map(|p| ms.sources[p] as u64).unwrap_or(u64::MAX),
                    ],
                )
            })
            .collect();
        let (recv, _) = obs::span(sim, "bcast", |sim| collective::broadcast(sim, tau, bcast));
        debug_assert!(recv.iter().all(|r| !r.is_empty()));

        // (4) local combination: every vertex picks its best estimate
        // and the corresponding Bellman–Ford parent. Landmarks
        // themselves use the predecessor landmark's exploration for
        // their parent, which keeps the parent pointers globally
        // consistent.
        let ldist_of = |s: NodeId| idx.get(&s).map(|&i| ldist[i]).unwrap_or(INF);

        for v in 0..n {
            if v == rt {
                dist[v] = 0;
                continue;
            }
            let mut best: (Weight, NodeId) = (INF, usize::MAX);
            for (s, d, _) in ms.reached(v) {
                // A landmark is its own best witness only via its
                // predecessor landmark (d = 0 would self-certify).
                if s == v {
                    continue;
                }
                let total = ldist_of(s).saturating_add(d);
                // Prefer strictly better totals; tie-break by landmark
                // id for determinism.
                if (total, s) < best {
                    best = (total, s);
                }
            }
            // Landmarks: route through the predecessor landmark.
            if let Some(&vi) = idx.get(&v) {
                if let Some(pl) = lpred[vi] {
                    let s = ms.sources[pl];
                    let via = ldist_of(s).saturating_add(ms.dist(s, v).unwrap_or(INF));
                    if (via, s) < best {
                        best = (via, s);
                    }
                }
            }
            if best.0 < INF {
                dist[v] = best.0;
                let best_key = idx[&best.1];
                parent[v] = ms.tables[v].parent(best_key);
                // the witness landmark itself is adjacent to v only
                // through the exploration parent; for v == neighbor of
                // source the parent may be the source itself (None only
                // at sources).
                if parent[v].is_none() {
                    // v *is* the witness landmark and d = 0; fall back
                    // to the predecessor-landmark exploration (handled
                    // above), or to the direct root exploration.
                    parent[v] = ms.tables[v].parent(rt_idx);
                }
            }
        }
    }

    let g = sim.graph();
    // Safety net: any vertex missed by every bounded exploration (can
    // happen on adversarially deep graphs with too few landmarks) falls
    // back to its BFS-tree parent with a pessimistic estimate, keeping
    // the output a spanning tree.
    for v in 0..n {
        if v != rt && (dist[v] >= INF || parent[v].is_none()) {
            let p = tau.parent[v].expect("tau spans the graph");
            parent[v] = Some(p);
            dist[v] = INF;
        }
    }
    // Re-propagate pessimistic estimates down tau (local).
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&v| tau.depth[v]);
    for &v in &order {
        if v == rt {
            continue;
        }
        if dist[v] >= INF {
            let p = parent[v].expect("set above");
            let w = g
                .neighbors(v)
                .iter()
                .find(|&&(u, _, _)| u == p)
                .map(|&(_, w, _)| w)
                .unwrap_or(INF);
            dist[v] = dist[p].saturating_add(w);
        }
    }

    for d in &mut dist {
        *d = quantize(*d, cfg.epsilon);
    }

    let stats = sim.total().since(start);
    ApproxSpt {
        root: rt,
        dist,
        parent,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::{dijkstra, generators, Graph};

    fn tree_path_weight(g: &Graph, spt: &ApproxSpt, v: NodeId) -> Weight {
        let path = spt.path_from_root(v);
        path.windows(2)
            .map(|p| {
                g.neighbors(p[0])
                    .iter()
                    .find(|&&(u, _, _)| u == p[1])
                    .map(|&(_, w, _)| w)
                    .expect("tree uses real edges")
            })
            .sum()
    }

    fn check(g: &Graph, rt: NodeId, seed: u64, eps: f64) {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);
        let cfg = SptConfig {
            epsilon: eps,
            ..SptConfig::new(seed)
        };
        let spt = approx_spt(&mut sim, &tau, rt, &cfg);
        let oracle = dijkstra::shortest_paths(g, rt);
        for v in 0..g.n() {
            assert!(
                spt.dist[v] >= oracle.dist[v],
                "estimate below true distance at {v}"
            );
            let slack = (1.0 + eps) * 1.0001;
            assert!(
                (spt.dist[v] as f64) <= (oracle.dist[v] as f64) * slack + 1.0,
                "estimate too large at {v}: {} vs {}",
                spt.dist[v],
                oracle.dist[v]
            );
            if v != rt {
                let pw = tree_path_weight(g, &spt, v);
                assert!(
                    pw <= spt.dist[v],
                    "tree path heavier than estimate at {v}: {pw} > {}",
                    spt.dist[v]
                );
                assert!(pw >= oracle.dist[v]);
            }
        }
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(60, 0.1, 40, seed);
            check(&g, 0, seed, 0.0);
        }
    }

    #[test]
    fn exact_on_structured_graphs() {
        check(&generators::path(50, 7), 0, 1, 0.0);
        check(&generators::grid(7, 7, 12, 2), 3, 2, 0.0);
        check(&generators::random_geometric(50, 0.3, 3), 5, 3, 0.0);
        check(&generators::caterpillar(12, 2, 4), 0, 4, 0.0);
    }

    #[test]
    fn quantized_estimates_respect_slack() {
        let g = generators::erdos_renyi(50, 0.12, 30, 5);
        check(&g, 0, 5, 0.25);
        check(&g, 0, 5, 1.0);
    }

    #[test]
    fn forced_landmark_mode_is_exact_too() {
        // `Some(k)` skips the adaptive probe and always pays for the
        // full landmark scheme — the ablation path must stay correct.
        let g = generators::erdos_renyi(60, 0.1, 40, 9);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let cfg = SptConfig {
            landmarks: Some(25),
            ..SptConfig::new(9)
        };
        let spt = approx_spt(&mut sim, &tau, 0, &cfg);
        let oracle = dijkstra::shortest_paths(&g, 0);
        for v in 0..g.n() {
            assert!(spt.dist[v] >= oracle.dist[v]);
            if v != 0 {
                assert!(tree_path_weight(&g, &spt, v) >= oracle.dist[v]);
            }
        }
    }

    #[test]
    fn adaptive_probe_skips_landmarks_on_shallow_graphs() {
        // A shallow dense-ish graph: the 2⌈√n⌉ hop budget exceeds every
        // shortest path's hop count, so the probe certificate fires and
        // the landmark phase (the message hog) is skipped — visible as
        // far fewer messages than the forced path, with exact output.
        let g = generators::erdos_renyi(80, 0.15, 20, 3);
        let run = |landmarks: Option<usize>| {
            let mut sim = Simulator::new(&g);
            let (tau, _) = build_bfs_tree(&mut sim, 0);
            let cfg = SptConfig {
                landmarks,
                ..SptConfig::new(3)
            };
            let spt = approx_spt(&mut sim, &tau, 0, &cfg);
            (spt.dist.clone(), spt.stats)
        };
        let (dist_adaptive, stats_adaptive) = run(None);
        let (dist_forced, stats_forced) = run(Some(40));
        let oracle = dijkstra::shortest_paths(&g, 0);
        assert_eq!(dist_adaptive, oracle.dist, "certificate ⇒ exact");
        assert_eq!(dist_forced, oracle.dist, "forced scheme exact w.h.p.");
        assert!(
            stats_adaptive.messages < stats_forced.messages / 2,
            "the probe must skip the multi-source exploration \
             ({} vs {} messages)",
            stats_adaptive.messages,
            stats_forced.messages
        );
    }

    #[test]
    fn few_landmarks_still_yield_valid_tree() {
        // With 0 extra landmarks the scheme degenerates to a bounded BF
        // from the root plus the BFS fallback — still a valid SPT
        // upper bound.
        let g = generators::path(40, 3);
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let cfg = SptConfig {
            landmarks: Some(0),
            hop_bound: Some(5),
            ..SptConfig::new(1)
        };
        let spt = approx_spt(&mut sim, &tau, 0, &cfg);
        let oracle = dijkstra::shortest_paths(&g, 0);
        for v in 0..g.n() {
            assert!(spt.dist[v] >= oracle.dist[v]);
            let pw = if v == 0 {
                0
            } else {
                tree_path_weight(&g, &spt, v)
            };
            assert!(pw < INF);
        }
    }

    #[test]
    fn exact_on_deep_weighted_paths_with_small_hop_diameter() {
        // The regime [BKKL17] targets: a light 200-hop path plus a hub
        // of heavy shortcuts, so D = 2 but shortest paths have ~200
        // hops. Exact BF would need ~200 rounds of *sequential* depth;
        // the landmark estimates must still be exact. The adaptive
        // probe must *not* fire here (the hop budget truncates), so
        // this also pins the full scheme end-to-end.
        let n = 201;
        let mut g = Graph::new(n + 1);
        for v in 1..n {
            g.add_edge(v - 1, v, 1).unwrap();
        }
        let hub = n;
        for v in 0..n {
            g.add_edge(hub, v, 1_000_000).unwrap();
        }
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        sim.reset_total();
        let spt = approx_spt(&mut sim, &tau, 0, &SptConfig::new(3));
        let oracle = dijkstra::shortest_paths(&g, 0);
        assert_eq!(spt.dist, oracle.dist, "landmarks must be exact w.h.p.");
        assert!(spt.stats.rounds > 0);
    }
}
